"""Textual DBCL: parsing and formatting of ``dbcl(...)`` terms.

DBCL statements are, by design, ordinary (variable-free) Prolog terms —
that is what lets the paper manipulate them in Prolog as its own
metalanguage.  This module round-trips :class:`DbclPredicate` through that
textual form using the package's Prolog reader::

    dbcl(
      [empdep, eno, nam, sal, dno, fct, mgr],
      [works_dir_for, *, t_X, *, *, *, *],
      [[empl, v_Eno1, t_X, v_Sal1, v_D, *, *],
       [dept, *, *, *, v_D, v_Fct2, v_M],
       [empl, v_M, smiley, v_Sal3, v_Eno3, *, *]],
      [[less, v_Sal1, 40000]]).

The grammar implemented is the conjunctive, metaterm-only subset of paper
Figure 2 that the rest of the paper uses: general predreferences, negation,
and disjunction inside DBCL are handled a level up (see
:mod:`repro.extensions`).
"""

from __future__ import annotations

from typing import Sequence

from ..errors import DbclSyntaxError
from ..prolog.reader import parse_term
from ..prolog.terms import Atom, Number, PString, Struct, Term, list_items
from ..schema.catalog import DatabaseSchema
from .predicate import COMPARISON_OPS, Comparison, DbclPredicate, RelRow
from .symbols import (
    STAR,
    ConstSymbol,
    JoinableSymbol,
    Star,
    Symbol,
    TargetSymbol,
    VarSymbol,
    is_star,
    parse_symbol,
)


def _symbol_from_term(term: Term) -> Symbol:
    """Convert a parsed Prolog term into a DBCL symbol."""
    if isinstance(term, Atom):
        return parse_symbol(term.name)
    if isinstance(term, Number):
        return ConstSymbol(term.value)
    if isinstance(term, PString):
        return ConstSymbol(term.value)
    raise DbclSyntaxError(f"not a DBCL symbol: {term}")


def _joinable_from_term(term: Term) -> JoinableSymbol:
    symbol = _symbol_from_term(term)
    if is_star(symbol):
        raise DbclSyntaxError("'*' cannot appear in a comparison")
    return symbol  # type: ignore[return-value]


def _atom_name(term: Term, context: str) -> str:
    if not isinstance(term, Atom):
        raise DbclSyntaxError(f"{context}: expected an atom, got {term}")
    return term.name


def parse_dbcl(text: str, schema: DatabaseSchema) -> DbclPredicate:
    """Parse textual DBCL against a known schema.

    The schema list inside the term is checked against ``schema`` — the
    textual form is self-describing, and silently accepting a mismatched
    catalog would produce wrong column mappings.
    """
    term = parse_term(text)
    if not isinstance(term, Struct) or term.functor != "dbcl" or term.arity != 4:
        raise DbclSyntaxError("expected a dbcl/4 term")

    schema_items = _parse_list(term.args[0], "schema")
    declared = [_atom_name(item, "schema entry") for item in schema_items]
    if declared != schema.schema_list():
        raise DbclSyntaxError(
            f"schema list {declared} does not match catalog {schema.schema_list()}"
        )

    target_items = _parse_list(term.args[1], "targetlist")
    if not target_items:
        raise DbclSyntaxError("targetlist must start with the predicate name")
    name = _atom_name(target_items[0], "predicate name")
    # Either the paper's full-width row ([q, *, t_X, *...]) or an explicit
    # ordered target list ([q, t_X, t_Y]); DbclPredicate disambiguates.
    targetlist = [_symbol_from_term(item) for item in target_items[1:]]

    row_terms = _parse_list(term.args[2], "relreferences")
    rows = []
    for row_term in row_terms:
        row_items = _parse_list(row_term, "relreference row")
        if not row_items:
            raise DbclSyntaxError("empty relreference row")
        tag = _atom_name(row_items[0], "row tag")
        entries = [_symbol_from_term(item) for item in row_items[1:]]
        rows.append(RelRow(tag, tuple(entries)))

    comparison_terms = _parse_list(term.args[3], "relcomparisons")
    comparisons = []
    for comparison_term in comparison_terms:
        items = _parse_list(comparison_term, "comparison")
        if len(items) != 3:
            raise DbclSyntaxError(f"comparison must be [op, left, right]: {comparison_term}")
        op = _atom_name(items[0], "comparison operator")
        if op not in COMPARISON_OPS:
            raise DbclSyntaxError(f"unknown comparison operator {op!r}")
        comparisons.append(
            Comparison(op, _joinable_from_term(items[1]), _joinable_from_term(items[2]))
        )

    return DbclPredicate(schema, name, targetlist, rows, comparisons)


def _parse_list(term: Term, context: str) -> list[Term]:
    try:
        return list_items(term)
    except ValueError:
        raise DbclSyntaxError(f"{context}: expected a list, got {term}") from None


def _format_symbol(symbol: Symbol) -> str:
    if isinstance(symbol, ConstSymbol) and isinstance(symbol.value, str):
        # Quote constants that would not re-read as the same atom.
        from ..prolog.writer import atom_to_string

        return atom_to_string(symbol.value)
    return str(symbol)


def format_dbcl(predicate: DbclPredicate, indent: str = "  ") -> str:
    """Render a predicate in the paper's textual layout."""
    schema_line = ", ".join(predicate.schema.schema_list())
    # The paper's row form is used whenever it is faithful (at most one
    # target per column); otherwise the explicit ordered list is emitted.
    row_form = predicate.targetlist
    row_targets = [e for e in row_form if not isinstance(e, Star)]
    if len(row_targets) == len(predicate.targets):
        target_cells = ", ".join(_format_symbol(e) for e in row_form)
    else:
        target_cells = ", ".join(_format_symbol(e) for e in predicate.targets)
    lines = [
        "dbcl(",
        f"{indent}[{schema_line}],",
        f"{indent}[{predicate.name}, {target_cells}],",
    ]
    if predicate.rows:
        row_texts = []
        for row in predicate.rows:
            cells = ", ".join(_format_symbol(e) for e in row.entries)
            row_texts.append(f"[{row.tag}, {cells}]")
        joined = f",\n{indent} ".join(row_texts)
        lines.append(f"{indent}[{joined}],")
    else:
        lines.append(f"{indent}[],")
    if predicate.comparisons:
        comparison_texts = [
            f"[{c.op}, {_format_symbol(c.left)}, {_format_symbol(c.right)}]"
            for c in predicate.comparisons
        ]
        joined = f",\n{indent} ".join(comparison_texts)
        lines.append(f"{indent}[{joined}]).")
    else:
        lines.append(f"{indent}[]).")
    return "\n".join(lines)
