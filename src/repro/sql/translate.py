"""DBCL → SQL translation (paper section 5).

Function-free conjunctive DBCL predicates translate into a single flat
``SELECT … FROM … WHERE`` block by six rules, quoted from the paper:

1. each Relreferences row becomes a tuple-variable definition in FROM;
2. attributes with Targetlist entries appear in SELECT, named by the first
   row where the same entry appears;
3. each constant in Relreferences becomes an equality restriction located
   by its row (variable name) and column (attribute name);
4. each pair of equal ``t_``/``v_`` symbols becomes an equijoin term;
5. each Relcomparisons row maps to a restriction or join term, locating
   variables at their first occurrence in Relreferences;
6. non-repeated variables do not appear in the SQL query.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from ..dbcl.predicate import Comparison, DbclPredicate
from ..dbcl.symbols import (
    ConstSymbol,
    JoinableSymbol,
    TargetSymbol,
    VarSymbol,
    is_param_marker,
    is_star,
    is_variable_symbol,
)
from ..errors import TranslationError
from .ast import (
    ColumnRef,
    Condition,
    InValuesCondition,
    Literal,
    Operand,
    Parameter,
    RecursiveQuery,
    SelectItem,
    SqlQuery,
    TableRef,
)


def _alias(row_index: int, alias_base: str = "v", alias_start: int = 1) -> str:
    return f"{alias_base}{row_index + alias_start}"


class SqlTranslator:
    """Translates DBCL predicates to :class:`SqlQuery` syntax trees.

    ``alias_start`` exists only to reproduce the paper's appendix traces,
    which number tuple variables from 12 (``v12``, ``v13``, …) because
    earlier variables were used elsewhere in the session.
    """

    def __init__(
        self,
        distinct: bool = False,
        alias_base: str = "v",
        alias_start: int = 1,
        parameters: Optional[Mapping[str, int]] = None,
    ):
        self.distinct = distinct
        self.alias_base = alias_base
        self.alias_start = alias_start
        #: marker value -> parameter index; constants found here translate
        #: into ``?`` placeholders instead of literals (plan-cache path).
        self.parameters = dict(parameters or {})

    # -- helpers -----------------------------------------------------------------

    def _constant(self, symbol: ConstSymbol) -> Union[Literal, Parameter]:
        if is_param_marker(symbol.value):
            index = self.parameters.get(symbol.value)
            if index is None:
                raise TranslationError(
                    f"parameter marker {symbol.value!r} has no assigned index"
                )
            return Parameter(index)
        return Literal(symbol.value)

    def _column_ref(self, predicate: DbclPredicate, symbol: JoinableSymbol) -> ColumnRef:
        """Rule 5's locator: alias.attribute of the symbol's first occurrence."""
        occurrence = predicate.first_occurrence(symbol)
        return ColumnRef(
            _alias(occurrence.row, self.alias_base, self.alias_start),
            predicate.attribute_of_column(occurrence.column),
        )

    def _operand(self, predicate: DbclPredicate, symbol: JoinableSymbol) -> Operand:
        if isinstance(symbol, ConstSymbol):
            return self._constant(symbol)
        return self._column_ref(predicate, symbol)

    # -- translation --------------------------------------------------------------

    def translate(self, predicate: DbclPredicate) -> SqlQuery:
        """Apply the six mapping rules to a conjunctive DBCL predicate."""
        if not predicate.rows:
            raise TranslationError(
                f"predicate {predicate.name} has no relation references"
            )

        # Rule 1: FROM clause.
        from_tables = tuple(
            TableRef(row.tag, _alias(index, self.alias_base, self.alias_start))
            for index, row in enumerate(predicate.rows)
        )

        # Rule 2: SELECT clause — one item per target, in goal-argument
        # order, located at the target's first row occurrence.
        select_items: list[SelectItem] = []
        for symbol in predicate.targets:
            column_ref = self._column_ref(predicate, symbol)
            select_items.append(SelectItem(column_ref, label=column_ref.attribute))

        where: list[Condition] = []

        # Rule 3: constants in Relreferences become equality restrictions.
        for row_index, row in enumerate(predicate.rows):
            alias = _alias(row_index, self.alias_base, self.alias_start)
            for column, entry in enumerate(row.entries):
                if isinstance(entry, ConstSymbol):
                    where.append(
                        Condition(
                            "eq",
                            ColumnRef(alias, predicate.attribute_of_column(column)),
                            self._constant(entry),
                        )
                    )

        # Rule 4: repeated t_/v_ symbols become equijoin terms between
        # consecutive occurrences (this yields the paper's chains such as
        # v1.dno = v2.dno AND v2.mgr = v3.eno).
        for symbol, occurrences in predicate.occurrences().items():
            if not is_variable_symbol(symbol) or len(occurrences) < 2:
                continue  # rule 6: non-repeated variables do not appear
            for previous, current in zip(occurrences, occurrences[1:]):
                where.append(
                    Condition(
                        "eq",
                        ColumnRef(
                            _alias(previous.row, self.alias_base, self.alias_start),
                            predicate.attribute_of_column(previous.column),
                        ),
                        ColumnRef(
                            _alias(current.row, self.alias_base, self.alias_start),
                            predicate.attribute_of_column(current.column),
                        ),
                    )
                )

        # Rule 5: Relcomparisons map to restriction or join terms.
        for comparison in predicate.comparisons:
            if comparison.is_ground and any(
                isinstance(side, ConstSymbol) and is_param_marker(side.value)
                for side in comparison.symbols()
            ):
                # A ground comparison over a marker is a truth value that
                # depends on the concrete constant; such plans must have
                # fallen back to exact-constant caching before translation.
                raise TranslationError(
                    f"parameter marker in ground comparison {comparison}; "
                    "constant-sensitive plans cannot be parameterized"
                )
            if comparison.is_ground:
                # A ground comparison is a constant truth value; the
                # optimizer removes these, but translation must stay total.
                if comparison.evaluate_ground():
                    continue
                return SqlQuery(
                    select=tuple(select_items),
                    from_tables=from_tables,
                    where=(),
                    distinct=self.distinct,
                    is_empty=True,
                )
            where.append(
                Condition(
                    comparison.op,
                    self._operand(predicate, comparison.left),
                    self._operand(predicate, comparison.right),
                )
            )

        return SqlQuery(
            select=tuple(select_items),
            from_tables=from_tables,
            where=tuple(where),
            distinct=self.distinct,
        )


def translate(
    predicate: DbclPredicate,
    distinct: bool = False,
    parameters: Optional[Mapping[str, int]] = None,
) -> SqlQuery:
    """Module-level convenience wrapper."""
    return SqlTranslator(distinct=distinct, parameters=parameters).translate(
        predicate
    )


# -- set-oriented batch variant (serving layer) --------------------------------------


def batch_variant(
    query: SqlQuery, open_params: Sequence[int], batch_size: int
) -> Optional[SqlQuery]:
    """The ``IN (VALUES …)`` parameter-batch form of a prepared query.

    A fully parameterized plan restricts each open parameter through one
    or more equality conditions ``col = ?``.  The batch variant executes
    the plan once for a whole batch of constant tuples by

    1. picking one *anchor* column per parameter (its first equality
       restriction ``col = ?``) and projecting it into SELECT — execution
       returns each answer row tagged with the constants it matched, so
       the caller can demultiplex rows back to individual goals;
    2. rewriting every other condition that mentions the parameter with
       the anchor column substituted for the placeholder — within one
       batch member the anchor *is* the constant, so ``v2.nam = ? AND
       v1.nam <> ?`` becomes ``v1.nam <> v2.nam`` plus the membership;
    3. replacing the per-parameter equality restrictions with a single
       membership ``(col_p1, …) IN (VALUES (?, …) × batch_size)``.

    Returns ``None`` when the query is not batchable: a parameter with
    no equality anchor at all (``sal < ?`` alone) has no column to
    demultiplex on, and parameters inside NOT-IN subqueries would change
    the complement per batch member.
    """
    if query.is_empty or query.batch_conditions:
        return None
    for extra in query.extra_conditions:
        if extra.subquery.parameter_order():
            return None

    # Pass 1: anchors — the first equality column per parameter index.
    representative: dict[int, ColumnRef] = {}
    for condition in query.where:
        if condition.op != "eq":
            continue
        sides = (condition.left, condition.right)
        params = [s for s in sides if isinstance(s, Parameter)]
        if len(params) != 1:
            continue
        column = sides[0] if isinstance(sides[1], Parameter) else sides[1]
        if isinstance(column, ColumnRef) and params[0].index not in representative:
            representative[params[0].index] = column

    if set(representative) != set(open_params):
        return None  # a parameter never reached an equality restriction

    # Pass 2: drop each parameter's anchor restriction (the membership
    # replaces it) and substitute anchors into every other occurrence.
    def substituted(side):
        if isinstance(side, Parameter):
            return representative[side.index]
        return side

    rewritten: list[Condition] = []
    anchored: set[int] = set()
    for condition in query.where:
        sides = (condition.left, condition.right)
        params = [s for s in sides if isinstance(s, Parameter)]
        if not params:
            rewritten.append(condition)
            continue
        if (
            condition.op == "eq"
            and len(params) == 1
            and substituted(params[0]) in sides
            and params[0].index not in anchored
        ):
            anchored.add(params[0].index)
            continue  # the anchor restriction itself: folded into VALUES
        left, right = substituted(sides[0]), substituted(sides[1])
        if left == right and condition.op == "eq":
            continue  # col = anchor where col *is* the anchor: tautology
        rewritten.append(Condition(condition.op, left, right))

    columns = tuple(representative[index] for index in open_params)
    membership = InValuesCondition(
        columns=columns,
        parameter_rows=tuple(tuple(open_params) for _ in range(batch_size)),
    )
    select = tuple(query.select) + tuple(
        SelectItem(column) for column in columns
    )
    return SqlQuery(
        select=select,
        from_tables=query.from_tables,
        where=tuple(rewritten),
        distinct=query.distinct,
        extra_conditions=query.extra_conditions,
        batch_conditions=(membership,),
    )


# -- recursive-CTE pushdown (the setrel fixpoint, in the backend) --------------------


def closure_cte(
    edge: SqlQuery,
    frontier: int,
    result: int,
    name: str = "reach",
    alias: str = "w0",
    batch_size: Optional[int] = None,
) -> RecursiveQuery:
    """The ``WITH RECURSIVE`` form of a transitive-closure step query.

    ``edge`` is the compiled edge view — a flat conjunctive block whose
    SELECT list contains the two endpoint columns.  ``frontier`` and
    ``result`` index that SELECT list: the frontier column is matched
    against the current closure level, the result column extends it.
    The single-seed form (``batch_size=None``) binds the seed through one
    ``?`` parameter (index 0)::

        WITH RECURSIVE reach(node) AS (
            SELECT <result> FROM <edge> WHERE <edge conds> AND <frontier> = ?
            UNION
            SELECT <result> FROM <edge>, reach w0
            WHERE <edge conds> AND <frontier> = w0.node
        )
        SELECT w0.node FROM reach w0

    The batch form seeds the CTE with ``batch_size`` constants through an
    ``IN (VALUES …)`` membership and threads a ``root`` column (the seed
    each row descends from) through every level, so one execution answers
    a whole same-shape ``ask_many`` group and rows demultiplex by root.
    ``UNION`` deduplication keys on (root, node): two roots reaching the
    same node both keep their rows.
    """
    if edge.is_empty:
        raise TranslationError("cannot build a closure over an empty edge query")
    if edge.parameter_order():
        raise TranslationError(
            "closure edge must not carry its own bind parameters"
        )
    if edge.batch_conditions:
        raise TranslationError("closure edge cannot carry batch memberships")
    if not (0 <= frontier < len(edge.select)) or not (
        0 <= result < len(edge.select)
    ):
        raise TranslationError("frontier/result must index the edge SELECT list")
    frontier_column = edge.select[frontier].column
    result_column = edge.select[result].column
    if frontier_column == result_column:
        raise TranslationError("closure endpoints must be distinct columns")
    used_aliases = {t.alias for t in edge.from_tables}
    while alias in used_aliases:
        alias = alias + "x"

    step_tables = edge.from_tables + (TableRef(name, alias),)
    step_join = Condition("eq", frontier_column, ColumnRef(alias, "node"))
    if batch_size is None:
        columns = ("node",)
        base = SqlQuery(
            select=(SelectItem(result_column, label="node"),),
            from_tables=edge.from_tables,
            where=edge.where + (Condition("eq", frontier_column, Parameter(0)),),
            extra_conditions=edge.extra_conditions,
        )
        step = SqlQuery(
            select=(SelectItem(result_column, label="node"),),
            from_tables=step_tables,
            where=edge.where + (step_join,),
            extra_conditions=edge.extra_conditions,
        )
        final = SqlQuery(
            select=(SelectItem(ColumnRef(alias, "node")),),
            from_tables=(TableRef(name, alias),),
        )
    else:
        if batch_size < 1:
            raise TranslationError("batch closure needs at least one seed")
        columns = ("root", "node")
        # Same convention as batch_variant: every VALUES row repeats the
        # goal-parameter indices (here just index 0, the seed), and row
        # ``r`` binds from batch member ``r`` — see the parameter_order
        # docstring's batch-membership caveat.
        membership = InValuesCondition(
            columns=(frontier_column,),
            parameter_rows=tuple((0,) for _ in range(batch_size)),
        )
        base = SqlQuery(
            select=(
                SelectItem(frontier_column, label="root"),
                SelectItem(result_column, label="node"),
            ),
            from_tables=edge.from_tables,
            where=edge.where,
            extra_conditions=edge.extra_conditions,
            batch_conditions=(membership,),
        )
        step = SqlQuery(
            select=(
                SelectItem(ColumnRef(alias, "root")),
                SelectItem(result_column, label="node"),
            ),
            from_tables=step_tables,
            where=edge.where + (step_join,),
            extra_conditions=edge.extra_conditions,
        )
        final = SqlQuery(
            select=(
                SelectItem(ColumnRef(alias, "root")),
                SelectItem(ColumnRef(alias, "node")),
            ),
            from_tables=(TableRef(name, alias),),
        )
    return RecursiveQuery(
        name=name, columns=columns, base=base, step=step, final=final
    )


# -- interval (nested-set) accelerator statements ------------------------------------


def interval_probe(
    table: str, bound: str, batch_size: Optional[int] = None
) -> str:
    """Prepared probe text over an interval-labeled hierarchy table.

    ``table`` holds one ``(node, pre, post, cyc)`` row per node of a
    forest, labels strictly nested (descendant ⇔ ``pre_a < pre_d AND
    post_d < post_a``).  ``bound`` names the closure probe's bound side:

    * ``"high"`` — descendants of the seed (the ``closure(X, seed)``
      shape): a single range scan over the composite ``(pre, post)``
      index, bounded on *both* sides (``s.pre > a.pre AND s.pre <
      a.post``) so the scan touches exactly the seed's cone;
    * ``"low"`` — ancestors of the seed (``closure(seed, Y)``): the
      containing intervals, at most one per tree level.

    A ``cyc = 1`` node carries a self-loop edge, which tree labels
    cannot express; a ``UNION`` branch adds the seed's own reflexive
    pair.  The single-seed form binds the seed **twice** (once per UNION
    branch); the batch form (``batch_size`` seeds) binds each seed
    exactly once through a ``VALUES`` CTE and returns ``(root, node)``
    rows that demultiplex by seed, mirroring the batch closure CTE.
    """
    if bound not in ("low", "high"):
        raise TranslationError(
            f"bound side must be 'low' or 'high', got {bound!r}"
        )
    if batch_size is None:
        if bound == "high":
            return (
                f"SELECT s.node FROM {table} a JOIN {table} s "
                "ON s.pre > a.pre AND s.pre < a.post AND s.post < a.post "
                "WHERE a.node = ? "
                f"UNION SELECT node FROM {table} WHERE node = ? AND cyc = 1"
            )
        return (
            f"SELECT a.node FROM {table} s JOIN {table} a "
            "ON a.pre < s.pre AND a.post > s.post "
            "WHERE s.node = ? "
            f"UNION SELECT node FROM {table} WHERE node = ? AND cyc = 1"
        )
    if batch_size < 1:
        raise TranslationError("interval batch probe needs at least one seed")
    values = ", ".join("(?)" for _ in range(batch_size))
    if bound == "high":
        return (
            f"WITH seeds(node) AS (VALUES {values}) "
            f"SELECT a.node AS root, s.node AS node "
            f"FROM seeds q JOIN {table} a ON a.node = q.node "
            f"JOIN {table} s ON s.pre > a.pre AND s.pre < a.post "
            "AND s.post < a.post "
            f"UNION SELECT a.node, a.node FROM seeds q "
            f"JOIN {table} a ON a.node = q.node WHERE a.cyc = 1"
        )
    return (
        f"WITH seeds(node) AS (VALUES {values}) "
        f"SELECT s.node AS root, a.node AS node "
        f"FROM seeds q JOIN {table} s ON s.node = q.node "
        f"JOIN {table} a ON a.pre < s.pre AND a.post > s.post "
        f"UNION SELECT s.node, s.node FROM seeds q "
        f"JOIN {table} s ON s.node = q.node WHERE s.cyc = 1"
    )


def interval_labeling(edge_text: str, gap: int) -> str:
    """The in-backend (window-function) labeling statement for a forest.

    Produces one ``(node, pre, post, cyc)`` row per node of the edge
    view's forest, never shipping labels across the wire: the caller
    wraps this SELECT in ``INSERT INTO ivl_… (…)``.  The walk orders
    nodes by a materialized root-to-node path string — every subtree is
    a contiguous lexicographic block, so ``ROW_NUMBER() OVER (ORDER BY
    path)`` is a preorder index — then converts (preorder index, depth,
    subtree size) into entry/exit event numbers scaled by ``gap`` so
    later leaf attaches can be absorbed locally::

        pre  = gap * (2*(idx-1) - depth + 1)
        post = pre + gap * (2*size - 1)

    Self-loop edges are excluded from the tree and surface as ``cyc=1``
    on the node's row.  The caller must have verified the tree shape
    (single parent per node, no long cycles) **before** running this —
    a multi-parent node would make the recursive walk explode — and
    should compare the inserted row count against the expected node
    count afterwards.  Only sound when node values are slash-free text
    (the path encoding); other domains use the Python labeling path.
    """
    if gap < 1:
        raise TranslationError("interval labeling gap must be positive")
    return (
        "WITH RECURSIVE "
        f"ivl_edges(lo, hi) AS ({edge_text}), "
        "ivl_tree(node, parent) AS "
        "(SELECT lo, hi FROM ivl_edges WHERE lo IS NOT hi), "
        "ivl_walk(node, path, depth) AS ("
        "SELECT node, '/' || node || '/', 0 FROM "
        "(SELECT lo AS node FROM ivl_edges "
        "UNION SELECT hi FROM ivl_edges) "
        "WHERE node NOT IN (SELECT node FROM ivl_tree) "
        "UNION ALL "
        "SELECT t.node, w.path || t.node || '/', w.depth + 1 "
        "FROM ivl_tree t JOIN ivl_walk w ON t.parent = w.node), "
        "ivl_ordered AS (SELECT node, path, depth, "
        "ROW_NUMBER() OVER (ORDER BY path) AS idx FROM ivl_walk) "
        "SELECT o.node, "
        f"{gap} * (2 * (o.idx - 1) - o.depth + 1), "
        f"{gap} * (2 * (o.idx - 1) - o.depth + 2 * "
        "(SELECT COUNT(*) FROM ivl_ordered d "
        "WHERE substr(d.path, 1, length(o.path)) = o.path)), "
        "EXISTS(SELECT 1 FROM ivl_edges e "
        "WHERE e.lo = o.node AND e.hi = o.node) "
        "FROM ivl_ordered o"
    )


# -- certain-answer rewriting (consistent query answering, ROADMAP E19) --------------


def certainty_suffix(
    predicate: DbclPredicate,
    order,
    parameters: Optional[Mapping[str, int]] = None,
    alias_base: str = "v",
    alias_start: int = 1,
) -> tuple[str, list[str]]:
    """The certainty condition appended to a plain translated query.

    ``order`` is the attack-graph peel order
    (:func:`repro.cqa.rewrite.peel_order`); the returned text is one
    boolean SQL expression stating that the answer tuple selected by the
    *outer* (plain) query survives **every** repair.  Per atom, in peel
    order::

        EXISTS (SELECT 1 FROM R c1 WHERE <key conds>
            AND NOT EXISTS (SELECT 1 FROM R c1v
                WHERE c1v.k = c1.k AND ...
                  AND NOT (<non-key pattern conds> AND <next atom>)))

    — some block of ``R`` matches the bound key values, and every tuple
    of that block matches the atom's non-key pattern *and* lets the rest
    of the chain succeed.  On a violation-free relation every block is a
    singleton and the condition is trivially true, which is what makes
    appending it sound regardless of which relations are currently
    dirty.

    Free variables of the goal reference the outer query's tuple
    variables (``v1``, ``v2``, … — the translator's aliasing); the
    chain's own aliases use the disjoint ``c``/``cv`` families.
    Parameter markers render as ``?`` and the returned list names them
    in placeholder order, to be appended after the plain query's own
    ``parameter_order()``.
    """
    parameters = dict(parameters or {})
    marker_order: list[str] = []

    def outer_ref(symbol) -> str:
        occurrence = predicate.first_occurrence(symbol)
        return (
            f"{_alias(occurrence.row, alias_base, alias_start)}"
            f".{predicate.attribute_of_column(occurrence.column)}"
        )

    def render(symbol, env: dict) -> Optional[str]:
        if isinstance(symbol, ConstSymbol):
            if is_param_marker(symbol.value):
                if symbol.value not in parameters:
                    raise TranslationError(
                        f"parameter marker {symbol.value!r} has no "
                        "assigned index"
                    )
                marker_order.append(symbol.value)
                return "?"
            return str(Literal(symbol.value))
        return env.get(symbol)

    def build(depth: int, env: dict) -> Optional[str]:
        if depth == len(order):
            return None
        atom = order[depth]
        block = f"c{depth + 1}"
        member = f"{block}v"
        env = dict(env)
        key_set = set(atom.key_positions)
        key_conds: list[str] = []
        for position in atom.key_positions:
            symbol = atom.symbols[position]
            if isinstance(symbol, tuple):
                continue  # '*' key cell: unconstrained
            attribute = atom.attributes[position]
            bound = render(symbol, env)
            if bound is not None:
                key_conds.append(f"{block}.{attribute} = {bound}")
            elif not isinstance(symbol, ConstSymbol):
                env[symbol] = f"{block}.{attribute}"
        same_key = [
            f"{member}.{atom.attributes[j]} = {block}.{atom.attributes[j]}"
            for j in atom.key_positions
        ]
        member_conds: list[str] = []
        for position, symbol in enumerate(atom.symbols):
            if position in key_set or isinstance(symbol, tuple):
                continue
            attribute = atom.attributes[position]
            bound = render(symbol, env)
            if bound is not None:
                member_conds.append(f"{member}.{attribute} = {bound}")
            elif not isinstance(symbol, ConstSymbol):
                env[symbol] = f"{member}.{attribute}"
        rest = build(depth + 1, env)
        if rest is not None:
            member_conds.append(rest)
        clauses = list(key_conds)
        if member_conds:
            universal = " AND ".join(
                same_key + [f"NOT ({' AND '.join(member_conds)})"]
            )
            clauses.append(
                f"NOT EXISTS (SELECT 1 FROM {atom.tag} {member} "
                f"WHERE {universal})"
            )
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        return f"EXISTS (SELECT 1 FROM {atom.tag} {block}{where})"

    env: dict = {}
    for target in predicate.targets:
        env[target] = outer_ref(target)
    text = build(0, env)
    if text is None:
        raise TranslationError("certainty condition needs at least one atom")
    return text, marker_order
