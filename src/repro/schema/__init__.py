"""Schema catalog, integrity constraints, and constraint inference."""

from .catalog import ATTRIBUTE_TYPES, Attribute, DatabaseSchema, Relation, make_schema
from .constraints import (
    ConstraintSet,
    FuncDep,
    RefInt,
    ValueBound,
    constraints_from_prolog,
)
from .empdep import (
    ALL_VIEWS_SOURCE,
    SAME_MANAGER_SOURCE,
    WORKS_DIR_FOR_SOURCE,
    WORKS_FOR_BOTTOM_UP_SOURCE,
    WORKS_FOR_TOP_DOWN_SOURCE,
    empdep_constraints,
    empdep_schema,
)
from .inference import (
    RefIntDerivation,
    RefIntHypothesis,
    derivable_refint,
    derive_refint,
    fd_closure,
    minimal_keys,
)

__all__ = [
    "ATTRIBUTE_TYPES",
    "Attribute",
    "DatabaseSchema",
    "Relation",
    "make_schema",
    "ConstraintSet",
    "FuncDep",
    "RefInt",
    "ValueBound",
    "constraints_from_prolog",
    "ALL_VIEWS_SOURCE",
    "SAME_MANAGER_SOURCE",
    "WORKS_DIR_FOR_SOURCE",
    "WORKS_FOR_BOTTOM_UP_SOURCE",
    "WORKS_FOR_TOP_DOWN_SOURCE",
    "empdep_constraints",
    "empdep_schema",
    "RefIntDerivation",
    "RefIntHypothesis",
    "derivable_refint",
    "derive_refint",
    "fd_closure",
    "minimal_keys",
]
