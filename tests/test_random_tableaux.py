"""Property tests over *randomly generated* DBCL tableaux.

The view-shaped queries of the other suites exercise the shapes the paper
prints; this module generates arbitrary tagged tableaux (cross-column
joins, random constants, random comparisons) and checks the pipeline's
global invariants on them:

* grammar round-trip: format → parse is the identity;
* translation is deterministic and total;
* Algorithm 2 never changes a query's answers on a live database;
* minimization alone never changes answers.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.dbcl import (
    STAR,
    Comparison,
    ConstSymbol,
    DbclPredicate,
    RelRow,
    TargetSymbol,
    VarSymbol,
    format_dbcl,
    parse_dbcl,
)
from repro.dbms import make_loaded_database
from repro.optimize import minimize, simplify
from repro.schema import empdep_constraints, empdep_schema
from repro.sql import print_sql, translate

SCHEMA = empdep_schema()
CONSTRAINTS = empdep_constraints(SCHEMA)

# A pool of shared variables; reuse across cells creates joins, including
# cross-column ones (the Johnson–Klug generality the paper requires).
_VARS = [VarSymbol("P", i) for i in range(1, 5)]
_NAME_CONSTS = [ConstSymbol("alice"), ConstSymbol("bob")]
_INT_CONSTS = [ConstSymbol(1), ConstSymbol(2), ConstSymbol(30000), ConstSymbol(70000)]

# Per-attribute symbol pools: variables everywhere, constants typed.
_INT_ATTRS = {"eno", "sal", "dno", "mgr"}


def _cell_strategy(attribute: str):
    choices = list(_VARS)
    if attribute in _INT_ATTRS:
        choices += _INT_CONSTS
    else:
        choices += _NAME_CONSTS
    return st.sampled_from(choices)


@st.composite
def tableaux(draw):
    row_specs = draw(
        st.lists(st.sampled_from(["empl", "dept"]), min_size=1, max_size=3)
    )
    rows = []
    for tag in row_specs:
        relation = SCHEMA.relation(tag)
        entries = [STAR] * SCHEMA.width
        for attribute in relation.attributes:
            entries[SCHEMA.column_of(attribute)] = draw(_cell_strategy(attribute))
        rows.append(RelRow(tag, tuple(entries)))

    # The target: replace one variable occurrence (if any) with t_X.
    target = TargetSymbol("X")
    placed = False
    new_rows = []
    for row in rows:
        entries = list(row.entries)
        if not placed:
            for index, entry in enumerate(entries):
                if isinstance(entry, VarSymbol):
                    entries[index] = target
                    placed = True
                    break
        new_rows.append(RelRow(row.tag, tuple(entries)))
    if not placed:
        # All cells were constants: force a target into row 0's first
        # covered column.
        first = new_rows[0]
        column = SCHEMA.columns_of_relation(first.tag)[0]
        entries = list(first.entries)
        entries[column] = target
        new_rows[0] = RelRow(first.tag, tuple(entries))

    present = {
        entry
        for row in new_rows
        for entry in row.entries
        if isinstance(entry, (VarSymbol, TargetSymbol))
    }
    comparisons = []
    n_comparisons = draw(st.integers(min_value=0, max_value=2))
    for _ in range(n_comparisons):
        left = draw(st.sampled_from(sorted(present, key=str)))
        op = draw(st.sampled_from(["less", "greater", "leq", "geq", "neq"]))
        right = draw(st.sampled_from(_INT_CONSTS))
        comparisons.append(Comparison(op, left, right))

    return DbclPredicate(SCHEMA, "q", [target], new_rows, comparisons)


@pytest.fixture(scope="module")
def live_db():
    database, org = make_loaded_database(
        depth=2, branching=2, staff_per_dept=3, seed=123, schema=SCHEMA
    )
    # Plant the constant names so name-constant tableaux can match rows.
    database.insert_rows(
        "empl", [(9001, "alice", 30000, 1), (9002, "bob", 70000, 2)]
    )
    yield database
    database.close()


class TestRandomTableaux:
    @given(predicate=tableaux())
    @settings(max_examples=150, deadline=None)
    def test_grammar_roundtrip(self, predicate):
        assert parse_dbcl(format_dbcl(predicate), SCHEMA) == predicate

    @given(predicate=tableaux())
    @settings(max_examples=150, deadline=None)
    def test_translation_total_and_deterministic(self, predicate):
        first = print_sql(translate(predicate))
        second = print_sql(translate(predicate))
        assert first == second
        assert "SELECT" in first

    @given(predicate=tableaux())
    @settings(
        max_examples=100,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_simplify_preserves_answers(self, live_db, predicate):
        direct = set(live_db.execute(translate(predicate, distinct=True)))
        result = simplify(predicate, CONSTRAINTS)
        if result.is_empty:
            assert direct == set()
            return
        optimized = set(
            live_db.execute(translate(result.predicate, distinct=True))
        )
        assert optimized == direct

    @given(predicate=tableaux())
    @settings(
        max_examples=100,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_minimize_alone_preserves_answers(self, live_db, predicate):
        direct = set(live_db.execute(translate(predicate, distinct=True)))
        outcome = minimize(predicate)
        reduced = set(
            live_db.execute(translate(outcome.predicate, distinct=True))
        )
        assert reduced == direct

    @given(predicate=tableaux())
    @settings(max_examples=100, deadline=None)
    def test_canonical_form_is_fixpoint(self, predicate):
        once = predicate.canonical_form()
        assert once.canonical_form() == once
