"""Conversion of collected derivation branches into DBCL predicates.

This implements the variable-free re-encoding of paper section 3: target
variables of the original goal become ``t_`` symbols, every other Prolog
variable becomes a ``v_`` symbol (named after the variable where the user
named it, or after the attribute and row number where it was anonymous),
and constants translate into themselves.

The public entry point is :class:`Metaevaluator`, whose
:meth:`~Metaevaluator.metaevaluate` mirrors the paper's
``metaevaluate(Program, Goal, Options, DBCL)`` predicate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

from ..dbcl.predicate import Comparison, DbclPredicate, RelRow
from ..dbcl.symbols import (
    STAR,
    ConstSymbol,
    JoinableSymbol,
    Symbol,
    TargetSymbol,
    VarSymbol,
)
from ..errors import MetaevaluationError, UnsupportedFeatureError
from ..prolog.knowledge_base import KnowledgeBase
from ..prolog.reader import parse_goal
from ..prolog.terms import (
    COMPARISON_PREDICATES,
    Atom,
    Number,
    PString,
    Struct,
    Term,
    Variable,
    goal_indicator,
    variables_of,
)
from ..schema.catalog import DatabaseSchema
from .collector import CollectedQuery, GoalUnfolder


def _capitalise(attribute: str) -> str:
    return attribute[:1].upper() + attribute[1:]


@dataclass
class _SymbolTable:
    """Assigns DBCL symbols to Prolog variables, paper-style.

    * target variables → ``t_<Name>``;
    * named variables → ``v_<Name>`` (numbered only on collision);
    * anonymous variables → ``v_<Attr><rownum>`` from their first position.
    """

    targets: dict[Variable, TargetSymbol]

    def __post_init__(self):
        self._assigned: dict[Variable, JoinableSymbol] = dict(self.targets)
        self._used_names: set[str] = {str(s) for s in self.targets.values()}

    def _claim(self, base: str, start: int = 0) -> VarSymbol:
        number = start
        while True:
            candidate = VarSymbol(base, number)
            if str(candidate) not in self._used_names:
                self._used_names.add(str(candidate))
                return candidate
            number += 1

    def symbol_for(
        self, variable: Variable, attribute: str, row_number: int
    ) -> JoinableSymbol:
        existing = self._assigned.get(variable)
        if existing is not None:
            return existing
        if variable.is_anonymous:
            symbol = self._claim(_capitalise(attribute), row_number)
        else:
            symbol = self._claim(variable.name)
        self._assigned[variable] = symbol
        return symbol

    def existing(self, variable: Variable) -> Optional[JoinableSymbol]:
        return self._assigned.get(variable)


def _constant_symbol(term: Term, context: str) -> ConstSymbol:
    if isinstance(term, Atom):
        return ConstSymbol(term.name)
    if isinstance(term, Number):
        return ConstSymbol(term.value)
    if isinstance(term, PString):
        return ConstSymbol(term.value)
    raise UnsupportedFeatureError(
        f"{context}: expected a constant or variable, got {term} "
        "(DBCL queries are function-free)"
    )


class Metaevaluator:
    """Translates Prolog goals over views into DBCL predicates."""

    def __init__(
        self,
        schema: DatabaseSchema,
        kb: KnowledgeBase,
        extra_relations: Optional[dict[tuple[str, int], str]] = None,
    ):
        self.schema = schema
        self.kb = kb
        self.extra_relations = dict(extra_relations or {})

    # -- public API --------------------------------------------------------------

    def metaevaluate(
        self,
        goal: Union[Term, str],
        name: Optional[str] = None,
        targets: Optional[Sequence[Variable]] = None,
    ) -> DbclPredicate:
        """Translate a conjunctive goal into a single DBCL predicate.

        ``targets`` defaults to every free variable of the goal (the
        universally quantified variables of the original goal clause, in
        the paper's terms).  Raises for goals whose view structure yields
        more than one conjunctive branch — use :meth:`metaevaluate_all`
        (or the extensions layer) for disjunctive views.
        """
        branches = self.metaevaluate_all(goal, name=name, targets=targets)
        if len(branches) != 1:
            raise MetaevaluationError(
                f"goal produced {len(branches)} conjunctive branches; "
                "disjunctive views need repro.extensions.disjunction"
            )
        return branches[0]

    def metaevaluate_all(
        self,
        goal: Union[Term, str],
        name: Optional[str] = None,
        targets: Optional[Sequence[Variable]] = None,
        recursion_budget: Optional[int] = None,
    ) -> list[DbclPredicate]:
        """Translate a goal into one DBCL predicate per derivation branch."""
        if isinstance(goal, str):
            goal = parse_goal(goal)
        if targets is None:
            targets = [v for v in variables_of(goal) if not v.is_anonymous]
        predicate_name = name if name is not None else self._default_name(goal)

        unfolder = GoalUnfolder(
            self.schema,
            self.kb,
            recursion_budget=recursion_budget,
            extra_relations=self.extra_relations,
        )
        predicates = []
        for branch in unfolder.unfold(goal):
            predicates.append(
                self.branch_to_dbcl(branch, predicate_name, targets)
            )
        return predicates

    def collect_branches(
        self,
        goal: Union[Term, str],
        recursion_budget: Optional[int] = None,
    ) -> list[CollectedQuery]:
        """Raw derivation branches (used by the recursion strategies)."""
        if isinstance(goal, str):
            goal = parse_goal(goal)
        unfolder = GoalUnfolder(
            self.schema,
            self.kb,
            recursion_budget=recursion_budget,
            extra_relations=self.extra_relations,
        )
        return list(unfolder.unfold(goal))

    # -- branch conversion -----------------------------------------------------------

    def _default_name(self, goal: Term) -> str:
        from ..prolog.terms import conjuncts

        goals = conjuncts(goal)
        first = goals[0]
        name, _arity = goal_indicator(first)
        return name

    def _relation_name_for(self, call: Struct) -> str:
        indicator = call.indicator
        if indicator in self.extra_relations:
            return self.extra_relations[indicator]
        return call.functor

    def branch_to_dbcl(
        self,
        branch: CollectedQuery,
        name: str,
        targets: Sequence[Variable],
    ) -> DbclPredicate:
        """Build the tableau for one derivation branch."""
        dbcalls = branch.resolved_dbcalls()
        comparisons = branch.resolved_comparisons()
        if not dbcalls:
            raise MetaevaluationError(
                "branch contains no database calls; nothing to translate"
            )

        # Target variables may have been unified with clause-head variables
        # (or constants) during unfolding; the t_-symbol belongs to whatever
        # variable the target resolves to under the branch substitution.
        resolved_targets: dict[Variable, TargetSymbol] = {}
        for variable in targets:
            resolved = branch.substitution.apply(variable)
            if isinstance(resolved, Variable):
                resolved_targets[resolved] = TargetSymbol(variable.name)
        table = _SymbolTable(resolved_targets)

        width = self.schema.width
        rows: list[RelRow] = []
        placed_targets: set[TargetSymbol] = set()
        row_variables: set[Variable] = set()

        for row_number, call in enumerate(dbcalls, start=1):
            relation = self.schema.relation(self._relation_name_for(call))
            if len(call.args) != relation.arity:
                raise MetaevaluationError(
                    f"database call {call.functor}/{len(call.args)} does not "
                    f"match relation {relation.name}/{relation.arity}"
                )
            entries: list[Symbol] = [STAR] * width
            for position, argument in enumerate(call.args):
                attribute = relation.attributes[position]
                column = self.schema.column_of(attribute)
                if isinstance(argument, Variable):
                    symbol = table.symbol_for(argument, attribute, row_number)
                    row_variables.add(argument)
                else:
                    symbol = _constant_symbol(argument, f"{call.functor} argument")
                entries[column] = symbol
                if isinstance(symbol, TargetSymbol):
                    placed_targets.add(symbol)
            rows.append(RelRow(relation.name, tuple(entries)))

        dbcl_comparisons: list[Comparison] = []
        for comparison in comparisons:
            operator = comparison.functor
            if operator not in COMPARISON_PREDICATES:
                raise MetaevaluationError(f"unexpected comparison {comparison}")
            sides: list[JoinableSymbol] = []
            for argument in comparison.args:
                if isinstance(argument, Variable):
                    symbol = table.existing(argument)
                    if symbol is None or argument not in row_variables:
                        raise UnsupportedFeatureError(
                            f"comparison {comparison} constrains a variable "
                            "that appears in no database call; evaluate it in "
                            "Prolog instead"
                        )
                    sides.append(symbol)
                else:
                    sides.append(_constant_symbol(argument, "comparison argument"))
            dbcl_comparisons.append(Comparison(operator, sides[0], sides[1]))

        # Targets in the caller's order; a target variable that never
        # reached a database call (e.g. bound to a constant during
        # unfolding) projects nothing — the constant restricts rows instead.
        placed = placed_targets
        ordered_targets = [
            table.existing(branch.substitution.apply(variable))
            for variable in targets
        ]
        final_targets = [
            symbol
            for symbol in ordered_targets
            if isinstance(symbol, TargetSymbol) and symbol in placed
        ]
        return DbclPredicate(
            self.schema, name, final_targets, rows, dbcl_comparisons
        )


def metaevaluate(
    schema: DatabaseSchema,
    kb: KnowledgeBase,
    goal: Union[Term, str],
    name: Optional[str] = None,
    targets: Optional[Sequence[Variable]] = None,
) -> DbclPredicate:
    """Module-level convenience wrapper around :class:`Metaevaluator`."""
    return Metaevaluator(schema, kb).metaevaluate(goal, name=name, targets=targets)
