"""Satellite coverage: ``assert_answers`` dedupe at scale.

The overhaul gave the knowledge base a ground-fact hash set so merging an
external answer batch is O(1) per row.  These tests pin both halves of
that claim: a 10k-row batch merged twice asserts exactly once, and the
second merge never rescans the stored clauses (counter hooks on the two
scan entry points prove it structurally, not by timing).
"""

import pytest

from repro.dbms.internal_db import assert_answers
from repro.prolog.knowledge_base import KnowledgeBase, Procedure
from repro.prolog.terms import Clause, struct, var

pytestmark = pytest.mark.smoke


class _Target:
    """Stands in for a DBCL target symbol (only ``.name`` is consumed)."""

    def __init__(self, name):
        self.name = name


class _StubPredicate:
    """Minimal stand-in for DbclPredicate: ordered target symbols."""

    def __init__(self, *names):
        self._targets = [_Target(name) for name in names]

    def target_symbols(self):
        return list(self._targets)


GOAL = struct("pair", var("X"), var("Y"))
PREDICATE = _StubPredicate("X", "Y")
TARGETS = [var("X"), var("Y")]


def _rows(count):
    return [(i, i + 1) for i in range(count)]


def test_10k_row_merge_twice_asserts_once():
    kb = KnowledgeBase()
    rows = _rows(10_000)
    first = assert_answers(kb, GOAL, PREDICATE, TARGETS, rows)
    second = assert_answers(kb, GOAL, PREDICATE, TARGETS, rows)
    assert first == 10_000
    assert second == 0
    assert kb.fact_count(("pair", 2)) == 10_000


def test_remerge_does_not_scan_stored_clauses(monkeypatch):
    """Counter hook: the second merge must not iterate existing clauses."""
    kb = KnowledgeBase()
    assert_answers(kb, GOAL, PREDICATE, TARGETS, _rows(10_000))

    scans = {"all_clauses": 0, "iter_clauses": 0}
    original_all = KnowledgeBase.all_clauses
    original_iter = Procedure.iter_clauses

    def counting_all(self, indicator):
        scans["all_clauses"] += 1
        return original_all(self, indicator)

    def counting_iter(self):
        scans["iter_clauses"] += 1
        return original_iter(self)

    monkeypatch.setattr(KnowledgeBase, "all_clauses", counting_all)
    monkeypatch.setattr(Procedure, "iter_clauses", counting_iter)

    added = assert_answers(kb, GOAL, PREDICATE, TARGETS, _rows(10_000))
    assert added == 0
    assert scans == {"all_clauses": 0, "iter_clauses": 0}


def test_partial_overlap_merges_only_new_rows():
    kb = KnowledgeBase()
    assert_answers(kb, GOAL, PREDICATE, TARGETS, _rows(1_000))
    added = assert_answers(kb, GOAL, PREDICATE, TARGETS, _rows(1_500))
    assert added == 500
    assert kb.fact_count(("pair", 2)) == 1_500


def test_duplicates_within_one_batch_assert_once():
    kb = KnowledgeBase()
    added = assert_answers(
        kb, GOAL, PREDICATE, TARGETS, [(1, 2), (1, 2), (3, 4)]
    )
    assert added == 2


def test_dedupe_off_keeps_duplicates():
    kb = KnowledgeBase()
    assert_answers(kb, GOAL, PREDICATE, TARGETS, [(1, 2)], dedupe=False)
    assert_answers(kb, GOAL, PREDICATE, TARGETS, [(1, 2)], dedupe=False)
    assert kb.fact_count(("pair", 2)) == 2


def test_retract_then_remerge_reasserts():
    """The ground-head set must track retract, or re-merge would skip."""
    kb = KnowledgeBase()
    assert_answers(kb, GOAL, PREDICATE, TARGETS, [(1, 2), (3, 4)])
    assert kb.retract(Clause(struct("pair", *_row_terms(1, 2))))
    added = assert_answers(kb, GOAL, PREDICATE, TARGETS, [(1, 2), (3, 4)])
    assert added == 1
    assert kb.fact_count(("pair", 2)) == 2


def _row_terms(*values):
    from repro.dbms.internal_db import value_to_term

    return tuple(value_to_term(v) for v in values)
