"""E14 — the concurrent batched serving layer.

Claims regression-gated here (and recorded in ``BENCH_serving.json`` by
``benchmarks/run_all.py``):

* **set-oriented batching** — on a rotating-constant workload over warm
  shapes, ``session.ask_many`` (one ``IN (VALUES …)`` parameter-batch
  execution per shape per batch, demultiplexed back to per-goal answers)
  sustains **>= 5x** the throughput of serial warm ``ask()`` calls (both
  sides fully warm, result caching off so every goal really executes);
* **concurrent serving** — warm pure-external asks from N threads (each
  on its own pooled read connection, under the knowledge base's read
  lock) beat single-thread throughput on multi-core hosts; on a
  single-core host the gate degrades to "no serialization collapse"
  (>= 0.7x single-thread — the lock and pool overhead must stay small);
* **correctness** — a randomized differential proves ``ask_many`` and
  concurrent answers identical to serial ``ask()``, *including under
  interleaved writes with maintained materialized views*: batched
  answers equal serial answers equal a fresh session's answers after
  every write round, and every answer observed by a concurrent reader
  equals some write-script checkpoint state (the serial-interleaving
  guarantee of the reader–writer lock).

The pytest entry points gate the relaxed quick thresholds; ``run_all.py``
applies the strict full-size gates.
"""

import os
import random
import threading
import time

import pytest

from repro.coupling import PrologDbSession
from repro.coupling.global_opt import CachePolicy
from repro.dbms import generate_org
from repro.prolog.reader import parse_goal
from repro.schema import ALL_VIEWS_SOURCE

#: (org depth, branching, staff, serial asks, batch size, min speedup)
FULL_SIZES = (4, 3, 6, 512, 64, 5.0)
QUICK_SIZES = (3, 2, 4, 128, 32, 2.5)

#: (threads, asks per thread)
FULL_THREADS = (4, 250)
QUICK_THREADS = (4, 80)

#: (write rounds, goals per round)
FULL_DIFF = (12, 48)
QUICK_DIFF = (6, 24)

#: (reader threads, asks per reader, scripted writes)
FULL_CONC = (4, 120, 30)
QUICK_CONC = (3, 50, 12)


def make_session(org, result_cache: bool = False) -> PrologDbSession:
    """A loaded session; result caching off isolates execution cost."""
    session = PrologDbSession(
        cache_policy=CachePolicy(enabled=result_cache)
    )
    session.load_org(org)
    session.consult(ALL_VIEWS_SOURCE)
    return session


def rotating_goals(org, count: int) -> list:
    """Two warm shapes, constants rotating per goal (pre-parsed terms).

    Goals are parsed once up front so both the serial and the batched
    measurement pay zero parser cost — the comparison isolates the
    serving layer (bind + execute + demux vs per-goal round trips).
    """
    names = [e.nam for e in org.employees]
    goals = []
    for i in range(count):
        name = names[(i * 13) % len(names)]
        if i % 2:
            goals.append(parse_goal(f"works_dir_for(X, {name})"))
        else:
            goals.append(parse_goal(f"same_manager(X, {name})"))
    return goals


def answer_set(answers) -> frozenset:
    return frozenset(frozenset(a.items()) for a in answers)


# -- workload 1: set-oriented ask_many --------------------------------------------


def bench_ask_many(org, total: int, batch_size: int) -> dict:
    """Serial warm asks/s vs batched ask_many asks/s on one session."""
    session = make_session(org)
    goals = rotating_goals(org, total)
    for goal in goals:  # warm every shape and prime the parameterized plans
        session.ask(goal)

    started = time.perf_counter()
    for goal in goals:
        session.ask(goal)
    serial_seconds = time.perf_counter() - started

    started = time.perf_counter()
    for i in range(0, len(goals), batch_size):
        session.ask_many(goals[i : i + batch_size])
    batched_seconds = time.perf_counter() - started

    stats = session.stats()["plan_cache"]
    serial_rate = total / serial_seconds
    batched_rate = total / batched_seconds
    record = {
        "goals": total,
        "batch_size": batch_size,
        "serial_seconds": round(serial_seconds, 4),
        "batched_seconds": round(batched_seconds, 4),
        "serial_asks_per_second": round(serial_rate, 1),
        "batched_asks_per_second": round(batched_rate, 1),
        "speedup": round(batched_rate / serial_rate, 2),
        "batched_asks": stats["batched_asks"],
        "batch_executions": stats["batch_executions"],
    }
    session.close()
    return record


# -- workload 2: multi-threaded warm serving --------------------------------------


def bench_threads(org, threads: int, per_thread: int) -> dict:
    """Warm pure-external ask throughput: 1 thread vs N threads.

    On a single-core host (CI containers) true scaling is impossible, so
    the gate becomes "the serving layer does not collapse": N threads
    must sustain at least ``SINGLE_CORE_FLOOR`` of the single-thread
    rate.  Multi-core hosts must actually scale (> 1x).
    """
    session = make_session(org)
    names = [e.nam for e in org.employees]
    goals = [
        parse_goal(f"same_manager(X, {names[(i * 37) % len(names)]})")
        for i in range(per_thread * threads)
    ]
    for goal in goals[:8]:
        session.ask(goal)

    def run(work):
        for goal in work:
            session.ask(goal)

    def throughput(nthreads: int) -> float:
        chunk = per_thread
        work = [goals[t * chunk : (t + 1) * chunk] for t in range(nthreads)]
        pool = [threading.Thread(target=run, args=(w,)) for w in work]
        started = time.perf_counter()
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        return (nthreads * chunk) / (time.perf_counter() - started)

    # Best of two runs each: one-shot thread timings are noisy.
    single = max(throughput(1), throughput(1))
    multi = max(throughput(threads), throughput(threads))
    record = {
        "threads": threads,
        "asks_per_thread": per_thread,
        "cpu_count": os.cpu_count() or 1,
        "single_thread_asks_per_second": round(single, 1),
        "multi_thread_asks_per_second": round(multi, 1),
        "speedup": round(multi / single, 3),
        "pooled_read_connections": session.database.pool_peak,
    }
    session.close()
    return record


SINGLE_CORE_FLOOR = 0.7


def thread_gate(record: dict) -> tuple[float, bool]:
    """The applicable thread gate and whether the record passes it."""
    gate = 1.0 if record["cpu_count"] > 1 else SINGLE_CORE_FLOOR
    return gate, record["speedup"] > gate and record["pooled_read_connections"] > 1


# -- workload 3: randomized batched differential ----------------------------------


def differential_check(org, rounds: int, goals_per_round: int, seed: int) -> dict:
    """ask_many == serial ask == fresh session, under interleaved writes.

    One serving session keeps two maintained materialized views while a
    random script asserts and retracts ``empl`` facts between rounds;
    every round a mixed batch (maintained-view goals, batchable warm
    shapes, recursive closures) is answered three ways and must agree.
    """
    rng = random.Random(seed)
    session = make_session(org, result_cache=True)
    session.materialize.view("works_dir_for(X, Y)")
    session.materialize.view("works_for(X, Y)")
    names = [e.nam for e in org.employees]
    boss = org.root_manager_name()
    eno_counter = iter(range(max(e.eno for e in org.employees) + 1, 10**9))
    synthetic: list[tuple] = []
    mismatches: list[str] = []
    checked = 0

    def random_goal() -> str:
        kind = rng.randrange(4)
        name = rng.choice(names)
        if kind == 0:
            return f"works_dir_for(X, {name})"
        if kind == 1:
            return f"same_manager(X, {name})"
        if kind == 2:
            return f"works_dir_for(X, {boss})"
        return f"works_for(X, {boss})"

    for _ in range(rounds):
        # interleaved writes: grow or shrink the synthetic staff
        for _ in range(rng.randrange(1, 4)):
            if synthetic and rng.random() < 0.45:
                row = synthetic.pop(rng.randrange(len(synthetic)))
                session.retract_fact("empl", *row)
            else:
                eno = next(eno_counter)
                dno = rng.choice([d.dno for d in org.departments])
                row = (eno, f"syn{eno}", 30_000, dno)
                session.assert_fact("empl", *row)
                synthetic.append(row)

        batch = [random_goal() for _ in range(goals_per_round)]
        batched = session.ask_many(batch)
        serial = [session.ask(goal) for goal in batch]
        # A cold session over a copy of the visible data (maintained
        # relations are eagerly externalized, so the external store holds
        # the whole union).
        fresh = PrologDbSession()
        fresh.database.insert_rows(
            "empl", session.database.fetch_relation("empl")
        )
        fresh.database.insert_rows(
            "dept", session.database.fetch_relation("dept")
        )
        fresh.consult(ALL_VIEWS_SOURCE)
        for goal, batched_answers, serial_answers in zip(batch, batched, serial):
            checked += 1
            want = answer_set(fresh.ask(goal))
            if answer_set(batched_answers) != want:
                mismatches.append(f"batched {goal}")
            if answer_set(serial_answers) != want:
                mismatches.append(f"serial {goal}")
        fresh.close()

    stats = session.stats()
    record = {
        "rounds": rounds,
        "goals_checked": checked,
        "writes_applied": stats["materialize"]["deltas_applied"],
        "batch_executions": stats["plan_cache"]["batch_executions"],
        "mismatches": mismatches[:8],
        "identical": not mismatches,
    }
    session.close()
    return record


# -- workload 4: concurrent readers vs a scripted writer --------------------------


def concurrent_differential(
    org, readers: int, asks_per_reader: int, writes: int, seed: int
) -> dict:
    """Every concurrently-observed answer equals a serial checkpoint state.

    A twin session replays the write script serially and records the
    probe goal's answer set after every step; the serving session then
    runs the same script from a writer thread while reader threads ask
    the probe goal under the read lock.  The reader–writer lock's
    guarantee is exactly "each observed answer is one of those states".
    """
    rng = random.Random(seed)
    probe_dept = rng.choice([d.dno for d in org.departments])
    manager = next(
        e.nam
        for d in org.departments
        if d.dno == probe_dept
        for e in org.employees
        if e.eno == d.mgr
    )
    probe = f"works_dir_for(X, {manager})"
    next_eno = max(e.eno for e in org.employees) + 1
    script = []
    alive: list[tuple] = []
    for i in range(writes):
        if alive and rng.random() < 0.5:
            script.append(("retract", alive.pop(rng.randrange(len(alive)))))
        else:
            row = (next_eno + i, f"conc{next_eno + i}", 41_000, probe_dept)
            script.append(("assert", row))
            alive.append(row)

    # Serial replay: the set of valid checkpoint answer states.
    twin = make_session(org, result_cache=True)
    twin.materialize.view("works_dir_for(X, Y)")
    states = {answer_set(twin.ask(probe))}
    for action, row in script:
        if action == "assert":
            twin.assert_fact("empl", *row)
        else:
            twin.retract_fact("empl", *row)

        states.add(answer_set(twin.ask(probe)))
    twin.close()

    session = make_session(org, result_cache=True)
    session.materialize.view("works_dir_for(X, Y)")
    session.ask(probe)
    observed: list[frozenset] = []
    observed_lock = threading.Lock()
    errors: list[str] = []

    def reader():
        try:
            local = []
            for _ in range(asks_per_reader):
                local.append(answer_set(session.ask(probe)))
            with observed_lock:
                observed.extend(local)
        except Exception as error:  # pragma: no cover - the gate reports it
            errors.append(repr(error))

    def writer():
        try:
            for action, row in script:
                if action == "assert":
                    session.assert_fact("empl", *row)
                else:
                    session.retract_fact("empl", *row)
        except Exception as error:  # pragma: no cover
            errors.append(repr(error))

    pool = [threading.Thread(target=reader) for _ in range(readers)]
    pool.append(threading.Thread(target=writer))
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()

    stray = sum(1 for state in observed if state not in states)
    record = {
        "readers": readers,
        "asks_per_reader": asks_per_reader,
        "writes": writes,
        "checkpoint_states": len(states),
        "answers_observed": len(observed),
        "stray_answers": stray,
        "errors": errors[:4],
        "identical": stray == 0 and not errors,
    }
    session.close()
    return record


# -- pytest entry points (quick gates; run_all.py applies the strict ones) ------


@pytest.fixture(scope="module")
def org():
    depth, branching, staff, _, _, _ = QUICK_SIZES
    return generate_org(
        depth=depth, branching=branching, staff_per_dept=staff, seed=5
    )


def test_e14_ask_many_speedup(org):
    _, _, _, total, batch_size, gate = QUICK_SIZES
    result = bench_ask_many(org, total, batch_size)
    print(
        f"\n[E14] ask_many: batched={result['batched_asks_per_second']}/s "
        f"serial={result['serial_asks_per_second']}/s "
        f"speedup={result['speedup']}x"
    )
    assert result["batch_executions"] > 0
    assert result["speedup"] >= gate


def test_e14_thread_throughput(org):
    threads, per_thread = QUICK_THREADS
    result = bench_threads(org, threads, per_thread)
    gate, passed = thread_gate(result)
    print(
        f"\n[E14] threads: single={result['single_thread_asks_per_second']}/s "
        f"multi={result['multi_thread_asks_per_second']}/s "
        f"speedup={result['speedup']}x (gate {gate}, "
        f"{result['cpu_count']} cpus)"
    )
    assert passed


def test_e14_batched_differential(org):
    rounds, per_round = QUICK_DIFF
    result = differential_check(org, rounds, per_round, seed=5)
    assert result["identical"], result["mismatches"]
    assert result["batch_executions"] > 0


def test_e14_concurrent_differential(org):
    readers, asks, writes = QUICK_CONC
    result = concurrent_differential(org, readers, asks, writes, seed=5)
    assert result["identical"], (result["stray_answers"], result["errors"])
