"""Bridging external query answers into the internal Prolog database.

The paper's mechanism stores query answers "in the internal database
system in the logic language" (section 2): after a DBCL query executes,
its answer tuples are asserted as ground facts so ordinary tuple-at-a-time
resolution can combine them with purely internal knowledge (the
``partner`` scenario of Example 4-1).

:func:`assert_answers` instantiates the *original goal term* with each
answer row, producing ground facts under the view's own name — exactly the
"instantiated same_manager predicates" the paper describes.  Because
target variables are, by construction, the goal's free variables, the
instantiated goal is ground.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

from ..dbcl.predicate import DbclPredicate
from ..dbcl.symbols import TargetSymbol
from ..errors import CouplingError
from ..prolog.knowledge_base import KnowledgeBase
from ..prolog.terms import (
    Atom,
    Clause,
    Number,
    Struct,
    Term,
    Variable,
    goal_indicator,
    is_ground,
)
from ..prolog.unify import EMPTY_SUBSTITUTION, Substitution

Value = Union[int, float, str, None]


def value_to_term(value: Value) -> Term:
    """Convert a database value to a Prolog constant term."""
    if isinstance(value, bool):  # bool before int: True is an int in Python
        return Atom("true" if value else "false")
    if isinstance(value, (int, float)):
        return Number(value)
    if isinstance(value, str):
        return Atom(value)
    if value is None:
        return Atom("null")
    raise CouplingError(f"cannot convert database value {value!r} to a term")


def term_to_value(term: Term) -> Value:
    """Convert a ground Prolog constant back to a database value."""
    if isinstance(term, Number):
        return term.value
    if isinstance(term, Atom):
        return term.name
    raise CouplingError(f"cannot convert term {term} to a database value")


def answer_substitutions(
    predicate: DbclPredicate,
    target_vars: Sequence[Variable],
    rows: Iterable[tuple],
) -> list[Substitution]:
    """Substitutions binding each target variable per answer row.

    Rows follow the SQL SELECT order, which is the targetlist's schema-
    column order; target variables are matched to targets by name.
    """
    targets_in_order = predicate.target_symbols()
    by_name = {variable.name: variable for variable in target_vars}
    positions: list[Variable] = []
    for symbol in targets_in_order:
        variable = by_name.get(symbol.name)
        if variable is None:
            raise CouplingError(
                f"target symbol {symbol} has no matching query variable"
            )
        positions.append(variable)

    substitutions = []
    for row in rows:
        if len(row) != len(positions):
            raise CouplingError(
                f"answer row has {len(row)} values for {len(positions)} targets"
            )
        subst = EMPTY_SUBSTITUTION
        for variable, value in zip(positions, row):
            subst = subst.bind(variable, value_to_term(value))
        substitutions.append(subst)
    return substitutions


def assert_answers(
    kb: KnowledgeBase,
    goal: Term,
    predicate: DbclPredicate,
    target_vars: Sequence[Variable],
    rows: Iterable[tuple],
    dedupe: bool = True,
) -> int:
    """Assert one ground instance of ``goal`` per answer row.

    Only single-predicate goals can be asserted (a conjunction has no
    single functor to store facts under).  Returns the number of *new*
    facts added; with ``dedupe`` (default) rows already present are
    skipped, implementing the answer-merge the paper requires between
    internal and external segments.

    Duplicate detection is O(1) per row against the knowledge base's
    ground-fact hash set (:meth:`KnowledgeBase.has_ground_fact`) — a
    re-merge of an already-asserted batch never rescans the stored
    clauses, so merging stays linear in the batch size however large the
    procedure has grown.
    """
    if not isinstance(goal, (Struct, Atom)):
        raise CouplingError(f"cannot assert answers for goal {goal}")
    if isinstance(goal, Struct) and goal.functor == ",":
        raise CouplingError(
            "cannot assert answers for a conjunction; wrap it in a view"
        )

    # Fallback path for the (documented-impossible) case of a row leaving
    # the instantiated goal non-ground: scan once, lazily.
    nonground_seen: Optional[set[Term]] = None

    added = 0
    for subst in answer_substitutions(predicate, target_vars, rows):
        fact = subst.apply(goal)
        if dedupe:
            if is_ground(fact):
                if kb.has_ground_fact(fact):
                    continue
            else:
                if nonground_seen is None:
                    nonground_seen = {
                        clause.head
                        for clause in kb.all_clauses(goal_indicator(goal))
                        if clause.is_fact
                    }
                if fact in nonground_seen:
                    continue
                nonground_seen.add(fact)
        kb.assertz(Clause(fact))
        added += 1
    return added
