"""Unification and substitutions.

A substitution is an immutable mapping from :class:`Variable` to
:class:`Term`.  The engine threads substitutions through resolution instead
of mutating terms, which makes backtracking trivially correct (drop the
extended substitution).

Representation
--------------

Substitutions are a *persistent parent-pointer chain*: each :meth:`bind`
allocates one small node pointing at its parent, so extending is O(1)
amortized and all prefixes stay live for backtracking without any copying
(the previous implementation duplicated the whole binding dict on every
bind, making a proof with *n* bindings do O(n²) dict-copy work).
:meth:`walk` resolves a variable by walking the chain newest-to-oldest —
the newest binding wins, matching dict-overwrite semantics.  To bound
lookup cost on long chains, every ``_CHECKPOINT_INTERVAL``-th node
materialises a flattened dict of the whole chain, so a lookup inspects at
most that many nodes before hitting a dict.

Cost model: a non-checkpoint bind is O(1); a checkpoint bind copies the
chain's effective dict, so over *n* binds the total flattening work is
O(n²/interval) — an interval-fold constant reduction over the legacy
O(n)-copy-on-*every*-bind, with lookups bounded by the interval.  In this
engine lookups (``walk`` inside :func:`unify`) vastly outnumber binds and
proof chains stay short (the step budget bounds them), so the bounded
lookup is the right side of the trade: a geometric checkpoint spacing
would make binds truly amortized O(1) but was measured ~7x slower on the
E7 recursion benchmark because deep-chain walks dominate.

:meth:`apply` (deep substitution) is **iterative** — an explicit frame
stack instead of recursion per struct depth, so deeply nested list terms
cannot blow the Python stack — and **memoized** per substitution node:
repeated application to shared subterms (or repeated calls, as the
metaevaluation translator does per target variable) hit an id-keyed cache.
Unchanged subterms are returned as the *same* object, preserving sharing
and keeping the cache effective.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional

from .terms import Struct, Term, Variable

#: Chain length between flattened-dict checkpoints: the longest walk any
#: single lookup can take before it reaches a dict (see the module
#: docstring for the bind/lookup cost trade).
_CHECKPOINT_INTERVAL = 32

#: Safety bound on the per-node ``apply`` memo cache (entries, not bytes);
#: the cache is cleared wholesale when it outgrows this.
_APPLY_CACHE_LIMIT = 1 << 16


class Substitution:
    """An immutable variable binding environment (persistent chain).

    Bindings may be chains (``X -> Y -> smiley``); :meth:`resolve` follows
    them.  ``walk`` resolves just the top; :meth:`apply` resolves deeply.
    """

    __slots__ = ("_variable", "_term", "_parent", "_size", "_flat", "_apply_cache")

    def __init__(self, bindings: Optional[Mapping[Variable, Term]] = None):
        # A directly-constructed substitution is a checkpoint root.
        self._variable: Optional[Variable] = None
        self._term: Optional[Term] = None
        self._parent: Optional["Substitution"] = None
        self._flat: Optional[dict[Variable, Term]] = dict(bindings) if bindings else {}
        self._size: int = len(self._flat)
        self._apply_cache: Optional[dict[int, tuple[Term, Term]]] = None

    # -- basic protocol ----------------------------------------------------

    def _as_dict(self) -> dict[Variable, Term]:
        """Materialise the effective mapping (newest binding wins)."""
        nodes: list["Substitution"] = []
        node: Optional["Substitution"] = self
        base: dict[Variable, Term] = {}
        while node is not None:
            if node._flat is not None:
                base = node._flat
                break
            nodes.append(node)
            node = node._parent
        result = dict(base)
        for entry in reversed(nodes):  # oldest first, so newer overwrite
            result[entry._variable] = entry._term  # type: ignore[index]
        return result

    def __len__(self) -> int:
        return len(self._as_dict())

    def __contains__(self, variable: Variable) -> bool:
        return self._lookup(variable) is not None

    def __iter__(self):
        return iter(self._as_dict())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Substitution):
            return NotImplemented
        return self._as_dict() == other._as_dict()

    def __repr__(self) -> str:
        inner = ", ".join(f"{var}={term}" for var, term in self._as_dict().items())
        return f"Substitution({{{inner}}})"

    def items(self):
        return self._as_dict().items()

    # -- operations ---------------------------------------------------------

    def bind(self, variable: Variable, term: Term) -> "Substitution":
        """Return a new substitution extended with ``variable -> term``.

        O(1) off checkpoints: allocates one chain node; the receiver is
        untouched (and shared as the parent).  Every
        ``_CHECKPOINT_INTERVAL``-th node additionally materialises the
        flattened dict that keeps lookups bounded (see the module
        docstring for why lookup cost wins this trade).
        """
        node = Substitution.__new__(Substitution)
        node._variable = variable
        node._term = term
        node._parent = self
        node._size = self._size + 1
        node._apply_cache = None
        node._flat = None
        if node._size % _CHECKPOINT_INTERVAL == 0:
            node._flat = node._as_dict()
        return node

    def _lookup(self, variable: Variable) -> Optional[Term]:
        """The binding of ``variable``, or None; newest binding wins."""
        node: Optional["Substitution"] = self
        while node is not None:
            flat = node._flat
            if flat is not None:
                return flat.get(variable)
            if node._variable == variable:
                return node._term
            node = node._parent
        return None

    def walk(self, term: Term) -> Term:
        """Follow binding chains until a non-variable or unbound variable."""
        while type(term) is Variable:
            node = self
            bound = None
            while node is not None:
                flat = node._flat
                if flat is not None:
                    bound = flat.get(term)
                    break
                if node._variable == term:
                    bound = node._term
                    break
                node = node._parent
            if bound is None:
                return term
            term = bound
        return term

    def apply(self, term: Term) -> Term:
        """Deeply substitute, resolving every bound variable in ``term``.

        Iterative (explicit frame stack; safe on arbitrarily deep list
        terms) and memoized per substitution node.  Subterms that contain
        no bound variables are returned unchanged, identical by ``is``.
        """
        if not self._size:
            return term  # no bindings: identity (and no cache retained)
        term = self.walk(term)
        if not isinstance(term, Struct):
            return term
        cache = self._apply_cache
        if cache is None:
            cache = {}
            self._apply_cache = cache
        elif len(cache) > _APPLY_CACHE_LIMIT:
            cache.clear()
        hit = cache.get(id(term))
        if hit is not None and hit[0] is term:
            return hit[1]

        # Each frame: [struct, next-arg-index, rebuilt-args accumulator].
        frames: list[list] = [[term, 0, []]]
        result: Term = term
        while frames:
            frame = frames[-1]
            node, index, acc = frame
            args = node.args
            if index == len(args):
                frames.pop()
                if all(new is old for new, old in zip(acc, args)):
                    result = node  # fully ground under this substitution
                else:
                    result = Struct(node.functor, tuple(acc))
                cache[id(node)] = (node, result)
                if frames:
                    frames[-1][2].append(result)
                continue
            frame[1] = index + 1
            arg = self.walk(args[index])
            if isinstance(arg, Struct):
                hit = cache.get(id(arg))
                if hit is not None and hit[0] is arg:
                    acc.append(hit[1])
                else:
                    frames.append([arg, 0, []])
            else:
                acc.append(arg)
        return result

    def restrict(self, variables: Iterable[Variable]) -> dict[Variable, Term]:
        """Fully-resolved bindings for the given variables (the query answer)."""
        return {v: self.apply(v) for v in variables}


EMPTY_SUBSTITUTION = Substitution()


def occurs_in(variable: Variable, term: Term, subst: Substitution) -> bool:
    """Occurs check: does ``variable`` appear in ``term`` under ``subst``?"""
    stack = [term]
    while stack:
        current = subst.walk(stack.pop())
        if isinstance(current, Variable):
            if current == variable:
                return True
        elif isinstance(current, Struct):
            stack.extend(current.args)
    return False


def unify(
    left: Term,
    right: Term,
    subst: Substitution = EMPTY_SUBSTITUTION,
    occurs_check: bool = False,
):
    """Unify two terms under a substitution.

    Returns the extended substitution, or ``None`` if the terms do not
    unify.  The occurs check is off by default (as in most Prologs); the
    metaevaluator never builds cyclic terms, and tests exercise both modes.

    Works with any object implementing the substitution protocol
    (``walk``/``bind``), which is how the pinned legacy implementation in
    :mod:`repro.prolog.legacy` shares this code.
    """
    stack = [(left, right)]
    while stack:
        a, b = stack.pop()
        a = subst.walk(a)
        b = subst.walk(b)
        if a == b:
            continue
        if isinstance(a, Variable):
            if occurs_check and occurs_in(a, b, subst):
                return None
            subst = subst.bind(a, b)
            continue
        if isinstance(b, Variable):
            if occurs_check and occurs_in(b, a, subst):
                return None
            subst = subst.bind(b, a)
            continue
        if isinstance(a, Struct) and isinstance(b, Struct):
            if a.functor != b.functor or a.arity != b.arity:
                return None
            stack.extend(zip(a.args, b.args))
            continue
        # Distinct constants (or constant vs struct): clash.
        return None
    return subst


def unifiable(left: Term, right: Term) -> bool:
    """Convenience predicate: do the terms unify under the empty substitution?"""
    return unify(left, right) is not None


def match(pattern: Term, instance: Term, subst: Substitution = EMPTY_SUBSTITUTION) -> Optional[Substitution]:
    """One-way matching: bind variables of ``pattern`` only.

    Used where the paper requires *containment mappings* rather than full
    unification (tableau minimization): symbols of ``instance`` must be left
    untouched.
    """
    stack = [(pattern, instance)]
    while stack:
        a, b = stack.pop()
        a = subst.walk(a)
        if isinstance(a, Variable):
            subst = subst.bind(a, b)
            continue
        if isinstance(a, Struct) and isinstance(b, Struct):
            if a.functor != b.functor or a.arity != b.arity:
                return None
            stack.extend(zip(a.args, b.args))
            continue
        if a != b:
            return None
    return subst
