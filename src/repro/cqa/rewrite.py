"""FO-rewritability of certain-answer queries (Koutris–Wijsen attack graph).

For a self-join-free conjunctive query over relations with (possibly
violated) primary keys, consistent query answering is first-order
rewritable exactly when the query's *attack graph* is acyclic
(Koutris & Wijsen, arXiv:1810.03386).  This module implements the test
as iterative **peeling**: repeatedly find an atom no other atom attacks,
emit it, treat its variables as bound, and recompute on the residue.
Success yields the nesting order the SQL certainty condition follows
(:func:`repro.sql.translate.certainty_suffix`); getting stuck certifies
an attack cycle, and the caller falls back to repair enumeration.

The attack relation, relative to a bound-variable set ``B`` (free
variables of the goal plus anything already peeled):

* ``F⁺`` is the closure of ``key(F) \\ B`` under the dependencies
  ``{key(G) \\ B → vars(G) \\ B : G ≠ F}`` contributed by the other
  remaining atoms;
* ``F`` attacks ``G`` when a path of atoms pairwise sharing a variable
  outside ``F⁺ ∪ B`` connects ``F`` to ``G``.

Everything here is *instance-independent*: rewritability is a property
of the goal shape and the schema's keys alone, never of which relations
currently hold violations — which is what lets the session cache the
decision (and the compiled rewriting) in the plan cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..dbcl.predicate import DbclPredicate
from ..dbcl.symbols import TargetSymbol, VarSymbol, is_star

#: A ``*`` cell acts as a fresh variable occurring exactly once; it can
#: never carry an attack, but the closure bookkeeping still needs a
#: hashable identity per occurrence (the shared ``STAR`` singleton would
#: otherwise alias every anonymous cell of the query together).
_StarToken = tuple


@dataclass(frozen=True)
class CqaAtom:
    """One relation atom of the goal, in relation-column coordinates."""

    row_index: int
    tag: str
    attributes: tuple[str, ...]
    symbols: tuple
    key_positions: tuple[int, ...]

    def variables(self) -> frozenset:
        return frozenset(
            s
            for s in self.symbols
            if isinstance(s, (TargetSymbol, VarSymbol, _StarToken))
        )

    def key_variables(self) -> frozenset:
        out = []
        for position in self.key_positions:
            symbol = self.symbols[position]
            if isinstance(symbol, (TargetSymbol, VarSymbol, _StarToken)):
                out.append(symbol)
        return frozenset(out)


def atoms_of(
    predicate: DbclPredicate, keys_of: dict[str, tuple[str, ...]]
) -> list[CqaAtom]:
    """Project the predicate's global-width rows onto per-relation atoms."""
    schema = predicate.schema
    atoms = []
    for row_index, row in enumerate(predicate.rows):
        columns = schema.columns_of_relation(row.tag)
        attributes = tuple(
            predicate.attribute_of_column(column) for column in columns
        )
        symbols = tuple(
            ("*", row_index, position) if is_star(row.entries[column])
            else row.entries[column]
            for position, column in enumerate(columns)
        )
        key = keys_of[row.tag]
        key_positions = tuple(attributes.index(a) for a in key)
        atoms.append(
            CqaAtom(row_index, row.tag, attributes, symbols, key_positions)
        )
    return atoms


def peel_order(
    predicate: DbclPredicate, keys_of: dict[str, tuple[str, ...]]
) -> Optional[list[CqaAtom]]:
    """The certainty-condition nesting order, or ``None`` if not rewritable.

    Conservative guards first: the dichotomy only covers self-join-free
    queries, and comparisons are handled by leaving them to the outer
    (plain) query — sound only while they mention no existential
    variable, whose witness could differ between repairs.
    """
    atoms = atoms_of(predicate, keys_of)
    if len({atom.tag for atom in atoms}) != len(atoms):
        return None  # self-join: outside the dichotomy's query class
    for comparison in predicate.comparisons:
        for side in (comparison.left, comparison.right):
            if isinstance(side, VarSymbol):
                return None
    bound = set(predicate.targets)
    order: list[CqaAtom] = []
    remaining = list(atoms)
    while remaining:
        pick = None
        for candidate in remaining:
            if not _attacked(candidate, remaining, bound):
                pick = candidate
                break
        if pick is None:
            return None  # every residual atom is attacked: cycle
        order.append(pick)
        bound |= pick.variables()
        remaining = [atom for atom in remaining if atom is not pick]
    return order


def _attacked(target: CqaAtom, atoms: Sequence[CqaAtom], bound: set) -> bool:
    return any(
        attacker is not target and _attacks(attacker, target, atoms, bound)
        for attacker in atoms
    )


def _attacks(
    attacker: CqaAtom, target: CqaAtom, atoms: Sequence[CqaAtom], bound: set
) -> bool:
    dependencies = [
        (atom.key_variables() - bound, atom.variables() - bound)
        for atom in atoms
        if atom is not attacker
    ]
    closure = set(attacker.key_variables() - bound)
    changed = True
    while changed:
        changed = False
        for lhs, rhs in dependencies:
            if lhs <= closure and not rhs <= closure:
                closure |= rhs
                changed = True
    blocked = closure | bound
    frontier = attacker.variables() - blocked
    visited_vars = set(frontier)
    seen = {id(attacker)}
    while frontier:
        reached = [
            atom
            for atom in atoms
            if id(atom) not in seen and (atom.variables() - blocked) & frontier
        ]
        if any(atom is target for atom in reached):
            return True
        if not reached:
            return False
        new_vars: set = set()
        for atom in reached:
            seen.add(id(atom))
            new_vars |= atom.variables() - blocked
        frontier = new_vars - visited_vars
        visited_vars |= new_vars
    return False
