"""E20 — the query tracing and metrics layer.

Claims regression-gated here (and recorded in ``BENCH_observe.json`` by
``benchmarks/run_all.py``):

* **tracing overhead** — a tracer *enabled* at the default ring size
  costs **<= 5%** on the warm-ask hot path (the E12 workload: two view
  shapes asked as *strings*, constants rotating per ask) and on batched
  ``ask_many`` throughput (the E14 workload: the same shapes pre-parsed,
  executed as parameter batches), measured against an identical session
  constructed with ``tracing=False``;
* **trace completeness** — under the same workload, the enabled session
  commits exactly one span per ask (batched groups expand to one record
  per member goal), each span names its plan-cache outcome, and the
  whole trace surface round-trips through ``json.dumps``.

The disabled side is the true kill-switch path: no span allocation, no
backend execute observer, no clock reads — the gate therefore measures
everything tracing adds.  The pytest entry points gate the relaxed
quick thresholds; ``run_all.py`` applies the strict full gates.
"""

import json
import time

import pytest

from repro.coupling import PrologDbSession
from repro.coupling.global_opt import CachePolicy
from repro.dbms import generate_org
from repro.prolog.reader import parse_goal
from repro.schema import ALL_VIEWS_SOURCE

#: (org depth, branching, staff, warm asks, batch size, max overhead pct)
FULL_SIZES = (4, 3, 6, 512, 64, 5.0)
QUICK_SIZES = (3, 2, 4, 128, 32, 20.0)

#: timing repeats per side; the minimum is reported (noise rejection).
#: A batched round is ~100x cheaper than a serial one, so the batched
#: mode affords (and, with only asks/batch_size ops to pair, needs)
#: proportionally more rounds for the same noise rejection.
REPEATS = 5
BATCHED_REPEATS = 20


def make_observed_session(tracing: bool) -> PrologDbSession:
    """A session differing from its twin only in the tracing switch."""
    return PrologDbSession(
        cache_policy=CachePolicy(enabled=False),
        tracing=tracing,
    )


def load_org_into(session, org):
    session.load_org(org)
    session.consult(ALL_VIEWS_SOURCE)
    return session


def warm_goal_strings(org, count):
    """The E12 warm-ask workload: two view shapes, constants rotating,
    asked as strings (parsing is part of the served path being gated)."""
    names = [e.nam for e in org.employees]
    goals = []
    for i in range(count):
        name = names[i % len(names)]
        if i % 2:
            goals.append(f"same_manager(X, {name})")
        else:
            goals.append(f"works_dir_for(X, {name})")
    return goals


def batched_goals(org, count):
    """The E14 batched workload: the same two shapes, pre-parsed."""
    names = [e.nam for e in org.employees]
    goals = []
    for i in range(count):
        name = names[(i * 13) % len(names)]
        if i % 2:
            goals.append(parse_goal(f"same_manager(X, {name})"))
        else:
            goals.append(parse_goal(f"works_dir_for(X, {name})"))
    return goals


def _paired_best_seconds(ops_by_side, repeats=REPEATS):
    """Per-operation paired timing: sum of per-op minima per side.

    The tracing overhead being measured is a few µs per ask, while the
    host's clock speed drifts by double-digit percentages on a seconds
    timescale — timing whole sides (or even whole rounds) one after the
    other buries the signal in drift.  Instead each operation (one ask,
    or one ``ask_many`` batch) is timed for *both* sides back to back,
    so a pair shares the same host-speed regime; the per-op minimum
    over ``REPEATS`` rounds then rejects residual jitter.  The same
    estimator applies to both sides, so the overhead ratio is unbiased.
    """
    labels = list(ops_by_side)
    count = len(ops_by_side[labels[0]])
    best = {label: [float("inf")] * count for label in labels}
    for label in labels:
        for op in ops_by_side[label]:
            op()  # untimed warm pass per side
    clock = time.perf_counter
    for rep in range(repeats):
        order = labels if rep % 2 == 0 else labels[::-1]
        for index in range(count):
            for label in order:
                op = ops_by_side[label][index]
                started = clock()
                op()
                elapsed = clock() - started
                if elapsed < best[label][index]:
                    best[label][index] = elapsed
    return {label: sum(minima) for label, minima in best.items()}


def bench_overhead(org, asks, batch_size):
    """Warm-ask and batched throughput: tracing enabled vs disabled.

    Result caching is off so every goal really executes — the comparison
    isolates the serving path, where every span touchpoint lives.
    """
    warm_goals = warm_goal_strings(org, asks)
    batch_terms = batched_goals(org, asks)
    sessions = {}
    for label, tracing in (("enabled", True), ("disabled", False)):
        session = load_org_into(make_observed_session(tracing), org)
        for goal in warm_goals[: min(8, len(warm_goals))]:
            session.ask(goal)  # warm both shapes' plans
        sessions[label] = session
    try:
        result = {"warm_asks": asks, "batch_size": batch_size}

        def ask_ops(session):
            return [
                lambda goal=goal, session=session: session.ask(goal)
                for goal in warm_goals
            ]

        def batch_ops(session):
            return [
                lambda chunk=batch_terms[start : start + batch_size],
                session=session: session.ask_many(chunk)
                for start in range(0, len(batch_terms), batch_size)
            ]

        for mode, make_ops, repeats in (
            ("warm", ask_ops, REPEATS),
            ("batched", batch_ops, BATCHED_REPEATS),
        ):
            timed = _paired_best_seconds(
                {label: make_ops(session)
                 for label, session in sessions.items()},
                repeats=repeats,
            )
            for label, seconds in timed.items():
                result[f"{label}_{mode}_asks_per_second"] = round(
                    asks / seconds, 1
                )
                result[f"{label}_{mode}_seconds"] = round(seconds, 4)
        for mode in ("warm", "batched"):
            enabled = result[f"enabled_{mode}_seconds"]
            disabled = result[f"disabled_{mode}_seconds"]
            result[f"{mode}_overhead_pct"] = round(
                (enabled / disabled - 1.0) * 100.0, 2
            )
        # completeness, measured on the session that did all the work:
        # 8 plan warm-ups, then per mode one warm-up round plus that
        # mode's timed rounds of ``asks`` goals each.
        enabled_session = sessions["enabled"]
        expected = 8 + (REPEATS + 1) * asks + (BATCHED_REPEATS + 1) * asks
        observe = enabled_session.stats()["observe"]
        traces = enabled_session.traces()
        result["spans_committed"] = observe["spans"]
        result["spans_expected"] = expected
        result["trace_complete"] = observe["spans"] == expected
        result["resident_records"] = len(traces)
        result["traces_json_serializable"] = bool(json.dumps(traces))
        result["disabled_spans"] = sessions["disabled"].stats()["observe"][
            "spans"
        ]
        return result
    finally:
        for session in sessions.values():
            session.close()


# -- pytest entry points (quick thresholds; run_all.py applies full gates) -----


@pytest.fixture(scope="module")
def org():
    depth, branching, staff, _asks, _batch, _gate = QUICK_SIZES
    return generate_org(
        depth=depth, branching=branching, staff_per_dept=staff, seed=5
    )


def test_e20_tracing_overhead(org):
    _d, _b, _s, asks, batch_size, max_pct = QUICK_SIZES
    result = bench_overhead(org, asks, batch_size)
    assert result["warm_overhead_pct"] <= max_pct
    assert result["batched_overhead_pct"] <= max_pct
    assert result["trace_complete"]
    assert result["disabled_spans"] == 0
