"""Negation through complement computation / NOT IN (paper section 7).

The paper observes that negating a multi-relation view is ambiguous
("should ``not(manager(jones, M))`` return managers who do not manage
Jones, or also employees who are not managers at all?") and that, once a
reading is fixed, evaluation "involves first computing the positive
result, and then its complement in the appropriate set — instead of set
difference, SQL's nested expressions (NOT IN (...)) can also be used".

We implement the *safe, range-restricted* reading: every variable of the
negated call must also occur in the positive part, whose result supplies
the universe; the negated view contributes a ``NOT IN`` subquery over the
shared variables.  Unsafe negations are rejected with the paper's
ambiguity in the error message.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

from ..dbcl.predicate import DbclPredicate
from ..dbcl.symbols import TargetSymbol
from ..errors import UnsupportedFeatureError
from ..metaevaluate.translator import Metaevaluator
from ..optimize.pipeline import SimplifyOptions, simplify
from ..prolog.reader import parse_goal
from ..prolog.terms import Struct, Term, Variable, conjoin, conjuncts, variables_of
from ..schema.constraints import ConstraintSet
from ..sql.ast import ColumnRef, NotInCondition, SqlQuery
from ..sql.translate import SqlTranslator, translate


@dataclass
class NegationTranslation:
    """Positive block, negated block, and the combined query."""

    positive: DbclPredicate
    negated: DbclPredicate
    query: SqlQuery


def split_negation(goal: Union[Term, str]) -> tuple[list[Term], list[Term]]:
    """Separate positive conjuncts from ``not(...)`` conjuncts."""
    if isinstance(goal, str):
        goal = parse_goal(goal)
    positive: list[Term] = []
    negated: list[Term] = []
    for subgoal in conjuncts(goal):
        if isinstance(subgoal, Struct) and subgoal.functor == "not" and subgoal.arity == 1:
            negated.append(subgoal.args[0])
        else:
            positive.append(subgoal)
    return positive, negated


def translate_with_negation(
    metaevaluator: Metaevaluator,
    goal: Union[Term, str],
    constraints: ConstraintSet,
    targets: Optional[Sequence[Variable]] = None,
    options: SimplifyOptions = SimplifyOptions(),
) -> NegationTranslation:
    """Compile ``positive, not(view(...))`` into one query with NOT IN.

    Restrictions (all checked):

    * exactly one negated conjunct;
    * the negated call's variables all occur in the positive part
      (range restriction — this pins down the paper's ambiguity to the
      "complement within the positive result" reading);
    * both parts are conjunctive and database-translatable.
    """
    if isinstance(goal, str):
        goal = parse_goal(goal)
    positive_goals, negated_goals = split_negation(goal)
    if len(negated_goals) != 1:
        raise UnsupportedFeatureError(
            f"expected exactly one negated conjunct, found {len(negated_goals)}"
        )
    if not positive_goals:
        raise UnsupportedFeatureError(
            "negation needs a positive part to complement against — "
            "an unrestricted not(view(...)) is ambiguous (paper section 7)"
        )
    negated_goal = negated_goals[0]
    positive_goal = conjoin(positive_goals)

    positive_vars = {
        v for v in variables_of(positive_goal) if not v.is_anonymous
    }
    negated_vars = [
        v for v in variables_of(negated_goal) if not v.is_anonymous
    ]
    unsafe = [v for v in negated_vars if v not in positive_vars]
    if unsafe:
        raise UnsupportedFeatureError(
            f"negated variables {sorted(map(str, unsafe))} do not occur "
            "positively; the complement set is ambiguous (paper section 7)"
        )

    if targets is None:
        targets = [v for v in variables_of(goal) if not v.is_anonymous]

    # The positive query must expose the shared variables so the NOT IN
    # columns can refer to them: add them to its targets.
    fetch_targets = list(targets)
    for variable in negated_vars:
        if variable not in fetch_targets:
            fetch_targets.append(variable)

    positive_predicate = metaevaluator.metaevaluate(
        positive_goal, targets=fetch_targets
    )
    positive_result = simplify(positive_predicate, constraints, options)
    if positive_result.is_empty:
        from ..sql.ast import empty_query

        return NegationTranslation(
            positive=positive_predicate,
            negated=positive_predicate,
            query=empty_query(),
        )
    positive_final = positive_result.predicate

    negated_predicate = metaevaluator.metaevaluate(
        negated_goal, targets=negated_vars
    )
    negated_result = simplify(negated_predicate, constraints, options)
    negated_final = (
        negated_result.predicate
        if not negated_result.is_empty
        else None
    )

    translator = SqlTranslator(distinct=True)
    base_query = translator.translate(positive_final)
    if negated_final is None:
        # The negated side is provably empty: nothing to exclude.
        return NegationTranslation(
            positive=positive_final,
            negated=negated_predicate,
            query=base_query,
        )

    # Columns of the positive query corresponding to the shared variables,
    # in the order the subquery SELECTs them.
    subquery = SqlTranslator(distinct=True, alias_base="n").translate(
        negated_final
    )
    shared_names = [t.name for t in negated_final.target_symbols()]
    columns = []
    for name in shared_names:
        symbol = TargetSymbol(name)
        occurrence = positive_final.first_occurrence(symbol)
        columns.append(
            ColumnRef(
                f"v{occurrence.row + 1}",
                positive_final.attribute_of_column(occurrence.column),
            )
        )

    combined = SqlQuery(
        select=base_query.select,
        from_tables=base_query.from_tables,
        where=base_query.where,
        distinct=base_query.distinct,
        extra_conditions=(
            NotInCondition(tuple(columns), subquery),
        ),
    )
    # Project the final SELECT back to the caller's targets only.
    wanted = [t.name for t in targets]
    projected_select = tuple(
        item
        for item, symbol in zip(combined.select, positive_final.targets)
        if symbol.name in wanted
    )
    combined = SqlQuery(
        select=projected_select,
        from_tables=combined.from_tables,
        where=combined.where,
        distinct=combined.distinct,
        extra_conditions=combined.extra_conditions,
    )
    return NegationTranslation(
        positive=positive_final, negated=negated_final, query=combined
    )
