"""E11 — resolution hot-path overhaul: measured speedups vs the baseline.

Claims regression-gated here (and recorded in ``BENCH_engine.json`` by
``benchmarks/run_all.py``):

* a three-way join proof over a 10k-fact relation runs **>= 5x** faster
  than the pinned pre-overhaul engine (measured ~3 orders of magnitude:
  resolved-goal index probes replace full scans + ``rename_apart`` of
  every fact per join step);
* the E7-shaped transitive-closure proof runs **>= 3x** faster;
* both engines perform the *same inference steps* and produce the same
  answers — the speedup is pure hot-path mechanics, not pruning;
* ``KnowledgeBase.snapshot`` is copy-on-write: snapshotting a 10k-fact
  store must not degrade with clause count the way re-asserting does.
"""

import time

import pytest

from engine_workloads import (
    JOIN_GOAL,
    RECURSION_GOAL,
    build_join_kb,
    build_recursion_kb,
    compare_engines,
    run_goal,
)
from repro.prolog.engine import Engine


def test_e11_join_proof_speedup(benchmark):
    kb = build_join_kb(10_000)
    result = compare_engines(kb, JOIN_GOAL, iterations=5)
    print(f"\n[E11] 10k-fact join proof: legacy={result['legacy_seconds']:.3f}s "
          f"optimized={result['optimized_seconds']:.4f}s "
          f"speedup={result['speedup']:.0f}x")
    assert result["legacy_steps"] == result["optimized_steps"]
    assert result["speedup"] >= 5.0
    benchmark(lambda: run_goal(Engine, kb, JOIN_GOAL, iterations=5))


def test_e11_recursion_proof_speedup(benchmark):
    kb = build_recursion_kb(300)
    result = compare_engines(kb, RECURSION_GOAL)
    print(f"\n[E11] E7-shaped recursion proof: "
          f"legacy={result['legacy_seconds']:.3f}s "
          f"optimized={result['optimized_seconds']:.4f}s "
          f"speedup={result['speedup']:.0f}x")
    assert result["legacy_steps"] == result["optimized_steps"]
    assert result["speedup"] >= 3.0
    benchmark(lambda: run_goal(Engine, kb, RECURSION_GOAL))


def test_e11_snapshot_is_copy_on_write(benchmark):
    kb = build_join_kb(10_000)
    started = time.perf_counter()
    snapshots = [kb.snapshot() for _ in range(100)]
    elapsed = time.perf_counter() - started
    print(f"\n[E11] 100 snapshots of a 10k-fact store: {elapsed * 1000:.2f}ms")
    # Shared until written: the copy aliases the original procedure.
    assert snapshots[0]._procedures[("edge", 2)] is kb._procedures[("edge", 2)]
    snapshots[0].assert_fact("edge", "x", "y")
    assert kb.fact_count(("edge", 2)) == 10_000
    # Re-asserting 10k clauses (the old implementation) takes ~100ms; a
    # hundred copy-on-write snapshots must come in far under one.
    assert elapsed < 1.0
    benchmark(lambda: kb.snapshot())


def test_e11_assert_answers_merge_linear(benchmark):
    """Re-merging a large answer batch must not rescan stored clauses."""
    from repro.dbms.internal_db import assert_answers
    from repro.prolog.knowledge_base import KnowledgeBase
    from repro.prolog.terms import struct, var

    class _Target:
        def __init__(self, name):
            self.name = name

    class _Stub:
        def target_symbols(self):
            return [_Target("X"), _Target("Y")]

    goal = struct("pair", var("X"), var("Y"))
    rows = [(i, i + 1) for i in range(10_000)]
    kb = KnowledgeBase()
    assert assert_answers(kb, goal, _Stub(), [var("X"), var("Y")], rows) == 10_000

    def remerge():
        assert assert_answers(kb, goal, _Stub(), [var("X"), var("Y")], rows) == 0

    benchmark(remerge)
