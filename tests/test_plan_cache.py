"""Plan-cache correctness: parameterized plans, invalidation, differentials.

The compile-once ask path must be *observationally identical* to fresh
compilation: for every goal shape and constant choice, a warm (plan-cache
hit) ask returns the same answer set as a cold session that compiles from
scratch.  These tests exercise the cache's hit/miss accounting, its
invalidation on program changes, the per-relation result-cache
invalidation, the stable interface-predicate naming, and a randomized
warm-vs-cold differential across shapes and constants.
"""

import random

import pytest

from repro.coupling import PlanCache, PrologDbSession, goal_shape
from repro.coupling.global_opt import CachePolicy, marker_for
from repro.dbms import generate_org
from repro.metaevaluate import Metaevaluator
from repro.prolog import KnowledgeBase, parse_goal, var
from repro.schema import (
    ALL_VIEWS_SOURCE,
    SAME_MANAGER_SOURCE,
    WORKS_DIR_FOR_SOURCE,
    empdep_schema,
)

pytestmark = pytest.mark.smoke


def answer_set(answers):
    return {frozenset(a.items()) for a in answers}


@pytest.fixture
def org():
    return generate_org(depth=3, branching=2, staff_per_dept=4, seed=23)


@pytest.fixture
def session(org):
    session = PrologDbSession()
    session.load_org(org)
    session.consult(WORKS_DIR_FOR_SOURCE)
    session.consult(SAME_MANAGER_SOURCE)
    return session


def fresh_session(org, **kwargs):
    session = PrologDbSession(plan_cache=False, **kwargs)
    session.load_org(org)
    session.consult(WORKS_DIR_FOR_SOURCE)
    session.consult(SAME_MANAGER_SOURCE)
    return session


class TestGoalShape:
    def test_constants_abstracted(self):
        first = goal_shape(parse_goal("works_dir_for(X, 'emp00001')"))
        second = goal_shape(parse_goal("works_dir_for(X, 'emp00042')"))
        assert first.key == second.key
        assert first.constants != second.constants

    def test_variable_names_matter(self):
        first = goal_shape(parse_goal("works_dir_for(X, boss)"))
        second = goal_shape(parse_goal("works_dir_for(Y, boss)"))
        assert first.key != second.key

    def test_numbers_and_atoms_recorded(self):
        shape = goal_shape(parse_goal("empl(E, N, S, D), less(S, 40000)"))
        assert shape.constants == (40000,)

    def test_nested_structures_unshapeable(self):
        assert goal_shape(parse_goal("p(f(X))")) is None


class TestPlanReuse:
    def test_shape_hit_across_constants(self, session, org):
        names = [e.nam for e in org.employees[:6]]
        for name in names:
            session.ask(f"works_dir_for(X, {name})")
        # Lazy compilation: the first miss stores the cold result as an
        # exact plan, the second parameterizes the shape, everything after
        # is a hit.
        assert session.plans.stats.compiled == 2
        assert session.plans.stats.hits >= len(names) - 2

    def test_parameterized_sql_has_placeholder(self, session, org):
        names = [e.nam for e in org.employees[:2]]
        for name in names:  # second ask of the shape parameterizes it
            session.ask(f"works_dir_for(X, {name})")
        entry = next(iter(session.plans._entries.values()))
        plan = next(iter(entry.variants.values()))
        assert entry.material == ()
        assert "?" in plan.sql_text
        assert plan.bind_order and plan.open_params == (0,)

    def test_first_miss_does_not_pay_marker_compile(self, session, org):
        """One-off shapes store the cold artifact, nothing more."""
        boss = org.root_manager_name()
        session.ask(f"works_dir_for(X, {boss})")
        entry = next(iter(session.plans._entries.values()))
        assert not entry.attempted  # marker analysis deferred
        plan = next(iter(entry.variants.values()))
        assert plan.open_params == ()  # exact-constant replay of the cold run
        # The exact plan still answers repeats of the same constants.
        before = session.plans.stats.hits
        session.ask(f"works_dir_for(X, {boss})")
        assert session.plans.stats.hits == before + 1

    def test_warm_uses_prepared_statements(self, session, org):
        names = [e.nam for e in org.employees[:5]]
        for name in names[:2]:  # prime: exact store, then parameterize
            session.ask(f"works_dir_for(X, {name})")
        session.database.stats.reset()
        for name in names[2:]:
            session.ask(f"works_dir_for(X, {name})")
        # Warm asks never re-print SQL; they execute the prepared text.
        assert session.database.stats.sql_prints == 0
        assert session.database.stats.prepared_executions == len(names) - 2

    def test_comparison_constants_fall_back_to_variants(self, session, org):
        """Constants consulted by Algorithm 2 pin exact-constant plans."""
        for threshold in (30000, 50000, 30000):
            session.ask(f"empl(E, N, S, D), less(S, {threshold})")
        entry = session.plans._entries[
            goal_shape(parse_goal("empl(E, N, S, D), less(S, 30000)")).key
        ]
        assert entry.material == (0,)
        assert len(entry.variants) == 2  # one per distinct threshold
        assert session.plans.stats.hits >= 1  # the repeated 30000

    def test_marker_never_leaks_into_answers(self, session, org):
        boss = org.root_manager_name()
        session.ask(f"works_dir_for(X, {boss})")
        answers = session.ask(f"works_dir_for(X, {boss})")
        marker = str(marker_for(0))
        assert all(marker not in str(a) for a in answers)


class TestInvalidation:
    def test_consult_clears_plans(self, session, org):
        boss = org.root_manager_name()
        session.ask(f"works_dir_for(X, {boss})")
        assert len(session.plans) > 0
        session.consult("extra_rule(X) :- specialist(X, anything).")
        session.plans.sync(session.kb)
        assert len(session.plans) == 0

    def test_assert_fact_clears_plans_via_generation(self, session, org):
        boss = org.root_manager_name()
        session.ask(f"works_dir_for(X, {boss})")
        assert len(session.plans) > 0
        session.assert_fact("specialist", "jones", "guns")
        session.plans.sync(session.kb)
        assert len(session.plans) == 0

    def test_retract_all_clears_plans(self, session, org):
        boss = org.root_manager_name()
        session.ask(f"works_dir_for(X, {boss})")
        session.kb.retract_all(("works_dir_for", 2))
        session.plans.sync(session.kb)
        assert len(session.plans) == 0

    def test_answers_correct_after_reconsult(self, session, org):
        """A recompiled plan sees the new program, not the cached one."""
        boss = org.root_manager_name()
        before = answer_set(session.ask(f"works_dir_for(X, {boss})"))
        session.kb.retract_all(("works_dir_for", 2))
        session.consult(
            "works_dir_for(Decider, Boss) :- "
            "empl(E1, Decider, S1, D1), dept(D1, F, M), empl(M, Boss, S2, D2), "
            "less(S1, 45000)."
        )
        after = answer_set(session.ask(f"works_dir_for(X, {boss})"))
        assert after <= before
        fresh = fresh_session(org)
        fresh.kb.retract_all(("works_dir_for", 2))
        fresh.consult(
            "works_dir_for(Decider, Boss) :- "
            "empl(E1, Decider, S1, D1), dept(D1, F, M), empl(M, Boss, S2, D2), "
            "less(S1, 45000)."
        )
        assert after == answer_set(fresh.ask(f"works_dir_for(X, {boss})"))

    def test_result_cache_per_relation(self, session, org):
        boss = org.root_manager_name()
        session.ask(f"works_dir_for(X, {boss})")  # reads empl+dept
        assert len(session.cache) == 1
        # A fact on an unrelated (non-base) predicate leaves it alone.
        session.assert_fact("specialist", "someone", "thinking")
        assert len(session.cache) == 1
        # A base-relation fact invalidates entries reading that relation.
        session.assert_fact("empl", 9999, "newhire", 30000, 1)
        assert len(session.cache) == 0

    def test_result_cache_keeps_unrelated_relations(self, session, org):
        schema = empdep_schema()
        kb = KnowledgeBase()
        kb.consult(WORKS_DIR_FOR_SOURCE)
        evaluator = Metaevaluator(schema, kb)
        empl_only = evaluator.metaevaluate(
            "empl(E, N, S, D)", targets=[var("N")]
        )
        dept_only = evaluator.metaevaluate(
            "dept(D, F, M)", targets=[var("F")]
        )
        cache = session.cache.__class__()
        cache.store(empl_only, [("a",)])
        cache.store(dept_only, [("x",)])
        cache.invalidate_relation("empl")
        assert cache.lookup(empl_only) is None
        assert cache.lookup(dept_only) == [("x",)]

    def test_plan_cache_generation_isolated_from_interface_facts(
        self, session, org
    ):
        """Mixed asks stage interface facts without invalidating plans."""
        boss = org.root_manager_name()
        session.assert_fact("specialist", org.employees[0].nam, "driving")
        goal = f"works_dir_for(X, {boss}), specialist(X, driving)"
        session.ask(goal)  # first miss: exact plan
        session.ask(goal)  # exact hit (same constants)
        compiled = session.plans.stats.compiled
        session.ask(goal)
        session.ask(goal)
        assert session.plans.stats.compiled == compiled  # no recompiles
        assert session.plans.stats.hits >= 3


class TestInterfaceName:
    def test_stable_digest_name(self, session, org):
        schema = empdep_schema()
        kb = KnowledgeBase()
        kb.consult(WORKS_DIR_FOR_SOURCE)
        evaluator = Metaevaluator(schema, kb)
        predicate = evaluator.metaevaluate(
            "works_dir_for(X, smiley)", targets=[var("X")]
        )
        name = PrologDbSession._interface_name(predicate)
        assert name.startswith("$ext_") and len(name) == len("$ext_") + 12
        # Deterministic: derived from the canonical key, not Python hash().
        assert name == PrologDbSession._interface_name(predicate)

    def test_distinct_predicates_distinct_names(self, session, org):
        schema = empdep_schema()
        kb = KnowledgeBase()
        kb.consult(WORKS_DIR_FOR_SOURCE)
        evaluator = Metaevaluator(schema, kb)
        first = evaluator.metaevaluate(
            "works_dir_for(X, smiley)", targets=[var("X")]
        )
        second = evaluator.metaevaluate(
            "works_dir_for(X, grumpy)", targets=[var("X")]
        )
        assert PrologDbSession._interface_name(
            first
        ) != PrologDbSession._interface_name(second)

    def test_mixed_ask_uses_digest_interface(self, session, org):
        boss = org.root_manager_name()
        session.assert_fact("specialist", org.employees[0].nam, "driving")
        session.ask(f"works_dir_for(X, {boss}), specialist(X, driving)")
        interface = [
            indicator
            for indicator in session.kb.indicators()
            if indicator[0].startswith("$ext_")
        ]
        assert interface, "interface predicate was asserted"
        assert all(len(name) == len("$ext_") + 12 for name, _ in interface)


class TestDifferential:
    """Randomized warm-vs-cold equivalence across shapes and constants."""

    def test_repeated_shapes_match_fresh_compile(self, org):
        rng = random.Random(7)
        warm = PrologDbSession()
        warm.load_org(org)
        warm.consult(WORKS_DIR_FOR_SOURCE)
        warm.consult(SAME_MANAGER_SOURCE)

        names = [e.nam for e in org.employees]
        salaries = [25000, 40000, 55000, 70000, 90000]
        shapes = [
            lambda n=None, s=None: f"works_dir_for(X, {n})",
            lambda n=None, s=None: f"works_dir_for({n}, Y)",
            lambda n=None, s=None: "works_dir_for(X, Y)",
            lambda n=None, s=None: f"same_manager(X, {n})",
            lambda n=None, s=None: f"empl(E, N, S, D), less(S, {s})",
            lambda n=None, s=None: f"empl(E, {n}, S, D)",
            lambda n=None, s=None: f"empl(E, N, S, D), less(S, {s}), greater(S, 20000)",
        ]
        goals = [
            shape(n=rng.choice(names), s=rng.choice(salaries))
            for _ in range(40)
            for shape in [rng.choice(shapes)]
        ]
        # Ask twice warm (second pass is all plan-cache hits), once fresh.
        for goal in goals:
            warm.ask(goal)
        for goal in goals:
            got = answer_set(warm.ask(goal))
            fresh = fresh_session(org)
            expected = answer_set(fresh.ask(goal))
            assert got == expected, goal
            fresh.close()
        assert warm.plans.stats.hits > 0

    def test_recursive_and_engine_shapes(self, org):
        warm = PrologDbSession()
        warm.load_org(org)
        warm.consult(ALL_VIEWS_SOURCE)
        warm.assert_fact("specialist", org.employees[0].nam, "driving")
        boss = org.root_manager_name()
        leaf = org.leaf_employee_name()
        goals = [
            f"works_for(People, {boss})",
            f"works_for({leaf}, Superior)",
            "specialist(X, driving)",
        ]
        for _ in range(2):
            results = [answer_set(warm.ask(g)) for g in goals]
        fresh = PrologDbSession(plan_cache=False)
        fresh.load_org(org)
        fresh.consult(ALL_VIEWS_SOURCE)
        fresh.assert_fact("specialist", org.employees[0].nam, "driving")
        for goal, got in zip(goals, results):
            assert got == answer_set(fresh.ask(goal)), goal

    def test_constant_discriminating_heads_not_parameterized(self, org):
        """Clause heads that pattern-match constants defeat markers.

        ``works_dir_for_boss/1`` only applies when the second argument
        unifies with the root manager's name; a marker would fail that
        unification for every constant, so the shape must fall back to
        exact-constant plans — and stay answer-identical either way.
        """
        boss = org.root_manager_name()
        warm = PrologDbSession()
        warm.load_org(org)
        warm.consult(WORKS_DIR_FOR_SOURCE)
        warm.consult(
            f"boss_view(X, {boss}) :- works_dir_for(X, {boss})."
        )
        other = org.employees[0].nam
        goals = [f"boss_view(X, {boss})", f"boss_view(X, {other})"]
        for goal in goals:  # compile
            warm.ask(goal)
        for goal in goals:  # warm
            got = answer_set(warm.ask(goal))
            fresh = fresh_session(org)
            fresh.consult(f"boss_view(X, {boss}) :- works_dir_for(X, {boss}).")
            assert got == answer_set(fresh.ask(goal)), goal
            fresh.close()
        entry = warm.plans._entries[
            goal_shape(parse_goal(goals[0])).key
        ]
        assert entry.material == (0,)  # per-constant variants, not markers

    def test_two_parameter_shape_stays_correct(self, session, org):
        """Both arguments constant: the view's ``neq`` becomes ground.

        A ground comparison between two parameters is value-dependent
        (equal constants make the goal empty), so the shape must pin
        *both* positions material — and remain answer-identical.
        """
        pairs = [
            (e.nam, f.nam) for e, f in zip(org.employees[:3], org.employees[3:6])
        ]
        for low, high in pairs:
            got = answer_set(session.ask(f"same_manager({low}, {high})"))
            fresh = fresh_session(org)
            expected = answer_set(fresh.ask(f"same_manager({low}, {high})"))
            fresh.close()
            assert got == expected, (low, high)
        low, high = pairs[0]
        entry = session.plans._entries[
            goal_shape(parse_goal(f"same_manager({low}, {high})")).key
        ]
        assert entry.material == (0, 1)
        # Repeating an exact pair is still a hit on its variant.
        before = session.plans.stats.hits
        session.ask(f"same_manager({low}, {high})")
        assert session.plans.stats.hits == before + 1

    def test_out_of_bound_constant_empty_warm_and_cold(self, session, org):
        """Bind-time valuebound checks reproduce fresh empties."""
        goal_template = "empl(E, N, S, {dno})"
        session.ask(goal_template.format(dno=1))
        # dno 99999 violates the declared department-number bounds; the
        # warm path must prove it empty without querying, like a fresh one.
        warm = session.ask(goal_template.format(dno=99999))
        fresh = fresh_session(org)
        cold = fresh.ask(goal_template.format(dno=99999))
        assert warm == cold == []


class TestUnsimplifiedEmptyQueries:
    """A false ground comparison surviving into translation answers []."""

    def test_optimize_off_ground_contradiction(self, org):
        session = PrologDbSession(optimize=False)
        session.load_org(org)
        session.consult(WORKS_DIR_FOR_SOURCE)
        for _ in range(3):  # cold, lazy-compiled, warm
            assert session.ask("empl(E, X, S, D), 5 > 7") == []

    def test_no_optim_metaevaluate_ground_contradiction(self, session, org):
        session.consult("v(X) :- empl(E, X, S, D), greater(5, 7).")
        results = []
        for _ in range(3):  # cold, lazy-compiled, warm — must not crash
            results.append(
                session.ask("metaevaluate(prog, [v(X)], no_optim, Q)")
            )
        # The fetch proves the view empty (X unbound) but still reports
        # the DBCL trace, identically on every path.
        assert results[0] == results[1] == results[2]
        assert results[0][0]["X"] is None
        assert "dbcl(" in results[0][0]["Q"]


class TestUncacheableShapes:
    def test_lookup_short_circuits_and_marking_is_idempotent(self):
        from repro.coupling.global_opt import UNCACHEABLE

        cache = PlanCache()
        shape = goal_shape(parse_goal("works_dir_for(X, smiley)"))
        assert cache.lookup(shape) is None
        cache.mark_uncacheable(shape)
        cache.mark_uncacheable(shape)
        cache.mark_uncacheable(shape)
        assert cache.stats.uncacheable == 1  # per shape, not per ask
        assert cache.lookup(shape) is UNCACHEABLE
        # The sentinel is not a miss: callers skip recompilation entirely.
        assert cache.stats.misses == 1


class TestFetchViewPlans:
    def test_partner_scenario_reuses_fetch_plan(self, session, org):
        """metaevaluate/4 fetches compile once despite engine renaming.

        The goal inside the partner rule reaches ``_fetch_view`` with
        renamed-apart variables (fresh ordinals per resolution); the shape
        key must abstract the ordinals or the plan would never be reused.
        """
        boss = org.root_manager_name()
        team = sorted(l for l, h in org.works_dir_for_pairs() if h == boss)
        helper, asker = team[0], team[1]
        session.assert_fact("specialist", helper, "driving")
        session.consult(
            """
            partner(W, X, Skill) :-
                metaevaluate(pr5, [same_manager(X, W)], no_optim, DBCL), !,
                same_manager(X, W), specialist(X, Skill).
            """
        )
        for _ in range(4):
            answers = session.ask(f"partner({asker}, X, driving)")
        assert {a["X"] for a in answers} == {helper}
        # One engine plan for the partner shape + one fetch plan for the
        # inner view; repeats are hits, not compiles.
        assert session.plans.stats.compiled <= 3
        assert session.plans.stats.hits >= 4

    def test_warm_fetch_survives_its_own_answer_asserts(self, session, org):
        """Rotating constants through a fetch view keeps its plan warm.

        Each fetch asserts new answer facts (a generation bump); the
        executed shape's plan must be retained across its own bump, as
        the cold path retains it by compiling after the assert.
        """
        from repro.prolog.reader import parse_goal as pg

        names = [e.nam for e in org.employees[:5]]
        for name in names:
            session._fetch_view(pg(f"same_manager(X, {name})"))
        # Call one stored the exact plan, call two parameterized the
        # shape; the remaining three were plan-cache hits even though
        # every call asserted fresh answer facts.
        assert session.plans.stats.compiled == 2
        assert session.plans.stats.hits == len(names) - 2


class TestRecursionPreparedPath:
    def test_setrel_levels_do_not_reprint_sql(self, org):
        session = PrologDbSession()
        session.load_org(org)
        session.consult(ALL_VIEWS_SOURCE)
        leaf = org.leaf_employee_name()
        closure = session.closure_for("works_for")
        closure.step_queries()  # force preparation (prints exactly twice)
        session.database.stats.reset()
        run = session.solve_recursive("works_for", low=leaf, strategy="bottomup")
        assert run.stats.levels >= 2
        assert session.database.stats.sql_prints == 0
        assert session.database.stats.prepared_executions == run.stats.levels

    def test_level_swap_commits_once(self, org):
        session = PrologDbSession()
        session.load_org(org)
        session.consult(ALL_VIEWS_SOURCE)
        leaf = org.leaf_employee_name()
        closure = session.closure_for("works_for")
        closure.step_queries()
        session.database.stats.reset()
        run = session.solve_recursive("works_for", low=leaf, strategy="bottomup")
        # One commit per frontier level (swap + step inside a transaction),
        # not two per swap as before.
        assert session.database.stats.commits <= run.stats.levels + 1
