"""Unit tests for the schema catalog, constraints, and inference."""

import pytest

from repro.errors import SchemaError
from repro.schema import (
    ConstraintSet,
    DatabaseSchema,
    FuncDep,
    RefInt,
    RefIntHypothesis,
    Relation,
    ValueBound,
    constraints_from_prolog,
    derivable_refint,
    derive_refint,
    empdep_constraints,
    empdep_schema,
    fd_closure,
    make_schema,
    minimal_keys,
)


@pytest.fixture
def schema():
    return empdep_schema()


@pytest.fixture
def constraints(schema):
    return empdep_constraints(schema)


class TestCatalog:
    def test_schema_list_matches_paper(self, schema):
        assert schema.schema_list() == [
            "empdep", "eno", "nam", "sal", "dno", "fct", "mgr",
        ]

    def test_shared_attribute_single_column(self, schema):
        # empl.dno and dept.dno occupy the same tableau column.
        assert schema.column_of("dno") == 3
        assert schema.columns_of_relation("empl") == [0, 1, 2, 3]
        assert schema.columns_of_relation("dept") == [3, 4, 5]

    def test_attribute_numbers_one_based(self, schema):
        assert schema.attribute_number("eno") == 1
        assert schema.attribute_number("mgr") == 6

    def test_relation_lookup(self, schema):
        empl = schema.relation("empl")
        assert empl.arity == 4
        assert empl.position_of("sal") == 2
        with pytest.raises(SchemaError):
            schema.relation("nosuch")
        with pytest.raises(SchemaError):
            empl.position_of("fct")

    def test_attribute_types(self, schema):
        assert schema.attribute("sal").is_numeric
        assert schema.attribute("nam").type == "text"
        assert schema.attribute("eno").sql_type == "INTEGER"

    def test_relations_with_attribute(self, schema):
        names = {r.name for r in schema.relations_with_attribute("dno")}
        assert names == {"empl", "dept"}

    def test_make_schema_helper(self):
        schema = make_schema("db", {"r": ["a", "b"], "s": ["b", "c"]})
        assert schema.attribute_names == ("a", "b", "c")

    def test_duplicate_relation_rejected(self):
        with pytest.raises(SchemaError):
            DatabaseSchema("db", [Relation("r", ("a",)), Relation("r", ("b",))])

    def test_duplicate_attribute_in_relation_rejected(self):
        with pytest.raises(SchemaError):
            Relation("r", ("a", "a"))

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            DatabaseSchema("db", [])

    def test_unknown_attribute_type_rejected(self):
        with pytest.raises(SchemaError):
            make_schema("db", {"r": ["a"]}, attribute_types={"a": "blob"})

    def test_explicit_attribute_order(self):
        schema = DatabaseSchema(
            "db",
            [Relation("r", ("a", "b"))],
            attribute_order=["b", "a"],
        )
        assert schema.attribute_names == ("b", "a")

    def test_bad_attribute_order_rejected(self):
        with pytest.raises(SchemaError):
            DatabaseSchema(
                "db", [Relation("r", ("a", "b"))], attribute_order=["a", "zzz"]
            )


class TestConstraints:
    def test_paper_constraints_validate(self, constraints):
        assert len(constraints.value_bounds) == 1
        assert len(constraints.funcdeps) == 4
        assert len(constraints.refints) == 2

    def test_value_bound_contains(self):
        bound = ValueBound("empl", "sal", 10000, 90000)
        assert bound.contains(40000)
        assert not bound.contains(2000)
        assert not bound.contains(200000)
        assert not bound.contains("abc")

    def test_empty_interval_rejected(self):
        with pytest.raises(SchemaError):
            ValueBound("empl", "sal", 90000, 10000)

    def test_mixed_bound_types_rejected(self):
        with pytest.raises(SchemaError):
            ValueBound("empl", "sal", 10000, "zzz")

    def test_funcdep_trivial(self):
        assert FuncDep("r", ("a", "b"), ("a",)).is_trivial
        assert not FuncDep("r", ("a",), ("b",)).is_trivial

    def test_refint_arity_mismatch_rejected(self):
        with pytest.raises(SchemaError):
            RefInt("empl", ("dno",), "dept", ("dno", "fct"))

    def test_refint_rhs_must_be_key(self, schema):
        with pytest.raises(SchemaError):
            ConstraintSet(
                schema,
                funcdeps=[FuncDep("dept", ("dno",), ("fct", "mgr"))],
                # fct is not a key of dept
                refints=[RefInt("empl", ("dno",), "dept", ("fct",))],
            )

    def test_refint_lhs_uniqueness_enforced(self, schema):
        funcdeps = [
            FuncDep("dept", ("dno",), ("fct", "mgr")),
            FuncDep("dept", ("mgr",), ("dno",)),
            FuncDep("empl", ("eno",), ("nam", "sal", "dno")),
        ]
        with pytest.raises(SchemaError):
            ConstraintSet(
                schema,
                funcdeps=funcdeps,
                refints=[
                    RefInt("empl", ("dno",), "dept", ("dno",)),
                    RefInt("empl", ("dno",), "dept", ("mgr",)),
                ],
            )

    def test_bound_lookup(self, constraints):
        assert constraints.bound_for("empl", "sal") is not None
        assert constraints.bound_for("empl", "nam") is None

    def test_unknown_relation_in_constraint(self, schema):
        with pytest.raises(SchemaError):
            ConstraintSet(schema, value_bounds=[ValueBound("nosuch", "x", 0, 1)])

    def test_refint_on_exact_lhs(self, constraints):
        ri = constraints.refint_on("empl", ("dno",))
        assert ri is not None and ri.to_relation == "dept"
        assert constraints.refint_on("empl", ("sal",)) is None

    def test_to_prolog_roundtrip(self, schema, constraints):
        text = constraints.to_prolog()
        parsed = constraints_from_prolog(schema, text)
        assert parsed.value_bounds == constraints.value_bounds
        assert parsed.funcdeps == constraints.funcdeps
        assert parsed.refints == constraints.refints


class TestPrologNotation:
    def test_paper_example_3_2(self, schema):
        constraints = constraints_from_prolog(
            schema,
            """
            valuebound(empl, sal, 10000, 90000).
            funcdep(empl, [nam], [eno]).
            funcdep(empl, [eno], [nam, sal, dno]).
            funcdep(dept, [dno], [fct, mgr]).
            funcdep(dept, [mgr], [dno]).
            refint(empl, [dno], dept, [dno]).
            refint(dept, [mgr], empl, [eno]).
            """,
        )
        assert len(constraints.funcdeps) == 4
        assert constraints.bound_for("empl", "sal").low == 10000

    def test_rejects_rules(self, schema):
        with pytest.raises(SchemaError):
            constraints_from_prolog(schema, "funcdep(R, X, X) :- true.")

    def test_rejects_unknown_form(self, schema):
        with pytest.raises(SchemaError):
            constraints_from_prolog(schema, "inclusion(empl, dept).")


class TestFdClosure:
    def test_empdep_keys(self, constraints):
        # eno and nam are both keys of empl.
        assert constraints.is_key("empl", ("eno",))
        assert constraints.is_key("empl", ("nam",))
        assert not constraints.is_key("empl", ("sal",))
        # dno and mgr are both keys of dept.
        assert constraints.is_key("dept", ("dno",))
        assert constraints.is_key("dept", ("mgr",))

    def test_closure_computation(self):
        fds = [FuncDep("r", ("a",), ("b",)), FuncDep("r", ("b",), ("c",))]
        assert fd_closure({"a"}, fds) == {"a", "b", "c"}
        assert fd_closure({"b"}, fds) == {"b", "c"}
        assert fd_closure({"c"}, fds) == {"c"}

    def test_implies_funcdep_transitivity(self, constraints):
        # nam -> eno -> sal gives nam -> sal by transitivity.
        assert constraints.implies_funcdep(FuncDep("empl", ("nam",), ("sal",)))
        assert not constraints.implies_funcdep(FuncDep("empl", ("sal",), ("nam",)))

    def test_implies_reflexive(self, constraints):
        assert constraints.implies_funcdep(FuncDep("empl", ("sal", "dno"), ("sal",)))

    def test_minimal_keys(self):
        fds = [
            FuncDep("r", ("a",), ("b", "c")),
            FuncDep("r", ("b", "c"), ("a",)),
        ]
        keys = minimal_keys(["a", "b", "c"], fds)
        assert ("a",) in keys
        assert ("b", "c") in keys
        assert ("a", "b") not in keys  # not minimal


class TestAlgorithmOne:
    def test_directly_applicable_rule(self, schema, constraints):
        assert derivable_refint(
            schema, "empl", ["dno"], "dept", ["dno"], constraints.refints
        )

    def test_underivable(self, schema, constraints):
        assert not derivable_refint(
            schema, "empl", ["sal"], "dept", ["dno"], constraints.refints
        )

    def test_two_step_chain(self, schema, constraints):
        # dept.mgr ⊆ empl.eno and then? empl.eno is not a refint LHS, so a
        # two-step chain needs a custom rule set.
        schema3 = make_schema(
            "db3",
            {"a": ["x"], "b": ["y"], "c": ["z"]},
        )
        rules = [
            RefInt("a", ("x",), "b", ("y",)),
            RefInt("b", ("y",), "c", ("z",)),
        ]
        # Without key validation (no FDs declared), test derivation only.
        assert derivable_refint(schema3, "a", ["x"], "c", ["z"], rules)
        result = derive_refint(
            schema3,
            RefIntHypothesis("a", ("x",), "c", ("z",)),
            rules,
        )
        assert result.success
        assert len(result.chain) == 2

    def test_long_chain(self):
        n = 16
        relations = {f"r{i}": [f"a{i}"] for i in range(n)}
        schema_n = make_schema("chain", relations)
        rules = [
            RefInt(f"r{i}", (f"a{i}",), f"r{i+1}", (f"a{i+1}",))
            for i in range(n - 1)
        ]
        assert derivable_refint(
            schema_n, "r0", ["a0"], f"r{n-1}", [f"a{n-1}"], rules
        )
        assert not derivable_refint(
            schema_n, f"r{n-1}", [f"a{n-1}"], "r0", ["a0"], rules
        )

    def test_trivial_hypothesis(self, schema, constraints):
        assert derivable_refint(
            schema, "empl", ["eno"], "empl", ["eno"], constraints.refints
        )

    def test_multi_attribute_subsequence(self):
        schema2 = make_schema(
            "db2", {"orders": ["custid", "region"], "customers": ["cid", "creg"]}
        )
        rules = [
            RefInt("orders", ("custid", "region"), "customers", ("cid", "creg")),
        ]
        # A sub-list of a composite refint LHS is applicable per step 3.
        assert derivable_refint(
            schema2, "orders", ["custid"], "customers", ["cid"], rules
        )
        assert not derivable_refint(
            schema2, "orders", ["custid"], "customers", ["creg"], rules
        )

    def test_each_rule_used_at_most_once(self):
        # A cyclic rule set must terminate (rule marking).
        schema_c = make_schema("dbc", {"a": ["x"], "b": ["y"]})
        rules = [
            RefInt("a", ("x",), "b", ("y",)),
            RefInt("b", ("y",), "a", ("x",)),
        ]
        assert not derivable_refint(schema_c, "a", ["x"], "a", ["y"], rules)
