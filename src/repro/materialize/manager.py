"""Orchestration of incremental view maintenance for one session.

The manager owns every registered materialized view, subscribes to
knowledge-base mutation events, and keeps three invariants:

1. **Eager externalization** — base relations that back at least one
   registered view are kept physically current in the external DBMS: an
   asserted fact is pushed out immediately (instead of waiting for the
   next query's segment merge), a retracted one is deleted.  Delta
   queries therefore always see the visible union.
2. **Set semantics of the union** — merge semantics deduplicate internal
   against external segments, so the manager tracks the visible rows per
   relation as a set; re-asserting an existing tuple or retracting a
   missing one is a no-op delta.
3. **Order of application** — insert deltas evaluate against the
   *post*-insert state, delete deltas against the *pre*-delete state;
   the inclusion–exclusion rules in :mod:`repro.materialize.views` are
   derived for exactly those states.

Anything the delta path cannot handle exactly (a ``retract_all`` sweep,
a maintenance error, a wholesale ``load_org``) marks affected views
*stale*; a stale view recomputes once on its next ask — never worse than
the invalidate-and-recompute behaviour this subsystem replaces.
"""

from __future__ import annotations

import re
from typing import Optional, Sequence, Union

from ..errors import CouplingError
from ..metaevaluate.recursion import recursive_indicators
from ..optimize.pipeline import SimplifyOptions, simplify
from ..prolog.reader import parse_goal
from ..prolog.terms import Struct, Term, Variable, conjoin, conjuncts
from .delta import DELETE, INSERT, Delta, MaintenanceStats, fact_row
from .policy import BACKEND, INVALIDATE, MEMORY, StoragePolicy
from .recursive import RecursiveMaterializedView
from .views import MaterializedView

MaintainedView = Union[MaterializedView, RecursiveMaterializedView]


class MaterializeManager:
    """Registers, maintains, and serves materialized views."""

    def __init__(
        self,
        kb,
        schema,
        database,
        constraints,
        metaevaluator,
        merger,
        plans=None,
        result_cache=None,
        policy: Optional[StoragePolicy] = None,
        optimize: bool = True,
    ):
        self.kb = kb
        self.schema = schema
        self.database = database
        self.constraints = constraints
        self.metaevaluator = metaevaluator
        self.merger = merger
        self.plans = plans
        self.result_cache = result_cache
        self.policy = policy if policy is not None else StoragePolicy()
        self.optimize = optimize
        self.stats = MaintenanceStats()
        #: Shared resilience ledger (lives on the backend) — quarantine,
        #: heal, and torn-maintenance events report to both stats objects.
        self.resilience = getattr(database, "resilience", None)
        self._views: dict[tuple[str, int], MaintainedView] = {}
        self._storage_request: dict[tuple[str, int], str] = {}
        self._by_relation: dict[str, list[MaintainedView]] = {}
        self._union: dict[str, set[tuple]] = {}
        kb.add_listener(self._on_kb_event)

    # -- registration -------------------------------------------------------

    def view(
        self,
        goal: Union[str, Term],
        storage: str = "auto",
        name: Optional[str] = None,
    ) -> MaintainedView:
        """Register a view goal for incremental maintenance.

        ``goal`` must be a single view call whose arguments are distinct
        variables (the "materialize the whole view" shape; constants in
        later *asks* restrict the maintained rows).  ``storage`` is
        ``auto`` (ask the :class:`StoragePolicy`), ``memory``,
        ``backend``, or ``invalidate``.
        """
        StoragePolicy.validate(storage)
        if isinstance(goal, str):
            goal = parse_goal(goal)
        call = self._registrable_call(goal)
        indicator = call.indicator
        view_name = name if name is not None else indicator[0]
        args = list(call.args)

        # Re-registration replaces the old view wholesale: unsubscribe it
        # so writes are not maintained twice (and its backend table, keyed
        # by the view name, is not double-updated).
        self._unregister(indicator)

        recursive = indicator in self._recursive_indicators()
        if recursive:
            view: MaintainedView = self._build_recursive(view_name, call, args)
        else:
            view = self._build_flat(view_name, call, args)

        chosen = storage
        if storage == "auto":
            chosen = self.policy.choose(view.row_count, self._observed_demand())
        if chosen == BACKEND and not view.recursive:
            view.promote_to_backend(self._table_name(view_name))
        elif chosen == INVALIDATE:
            view.storage = INVALIDATE
        # recursive views maintain their closure in memory; a BACKEND
        # request degrades gracefully to memory counts + closure.

        self._views[indicator] = view
        self._storage_request[indicator] = storage
        for relation in view.relations:
            self._by_relation.setdefault(relation, []).append(view)
            if relation not in self._union:
                self._union[relation] = set(
                    self.database.fetch_relation(relation)
                )
        self.stats.views = len(self._views)
        self.stats.per_view[view_name] = view.stats
        return view

    def _unregister(self, indicator: tuple) -> None:
        old = self._views.pop(indicator, None)
        if old is None:
            return
        self._storage_request.pop(indicator, None)
        self.stats.per_view.pop(old.name, None)
        if getattr(old, "backend_table", None):
            self.database.drop_materialized(old.backend_table)
        for relation in old.relations:
            dependents = self._by_relation.get(relation)
            if dependents is None:
                continue
            dependents[:] = [view for view in dependents if view is not old]
            if not dependents:
                del self._by_relation[relation]
                self._union.pop(relation, None)
        self.stats.views = len(self._views)

    def _registrable_call(self, goal: Term) -> Struct:
        parts = conjuncts(goal)
        if len(parts) != 1 or not isinstance(parts[0], Struct):
            raise CouplingError(
                "materialized views are registered per view call; "
                "conjunctions are answered by asking over maintained views"
            )
        call = parts[0]
        names = set()
        for argument in call.args:
            if not isinstance(argument, Variable) or argument.is_anonymous:
                raise CouplingError(
                    "register the open view shape (distinct variables); "
                    "constants belong in asks, which filter maintained rows"
                )
            if argument.name in names:
                raise CouplingError(
                    "registration arguments must be distinct variables"
                )
            names.add(argument.name)
        return call

    def _build_flat(
        self, view_name: str, call: Struct, args: Sequence[Variable]
    ) -> MaterializedView:
        options = SimplifyOptions() if self.optimize else SimplifyOptions.none()
        raw = self.metaevaluator.metaevaluate(call, targets=list(args))
        result = simplify(raw, self.constraints, options)
        if result.is_empty:
            raise CouplingError(
                f"view {view_name} is provably empty under the constraints; "
                "nothing to maintain"
            )
        self._merge_segments(frozenset(row.tag for row in result.predicate.rows))
        view = MaterializedView(
            view_name,
            call,
            args,
            result.predicate,
            result.original,
            self.database,
            self.constraints,
        )
        view.refresh()
        return view

    def _build_recursive(
        self, view_name: str, call: Struct, args: Sequence[Variable]
    ) -> RecursiveMaterializedView:
        from ..coupling.recursion_exec import find_base_clause

        indicator = call.indicator
        if indicator[1] != 2:
            raise CouplingError(
                "recursive materialized views support binary views only"
            )
        head, body = find_base_clause(self.kb, indicator)
        low_var, high_var = head.args  # find_base_clause guarantees Variables
        edge_view = self._build_flat(
            f"{view_name}__edge", conjoin(body), [low_var, high_var]
        )
        if any(column is None for column in edge_view.position_column):
            raise CouplingError(
                f"view {view_name}: base clause does not project both edge ends"
            )
        return RecursiveMaterializedView(view_name, call, args, edge_view)

    def _merge_segments(self, relations: frozenset) -> None:
        """Push pending internal facts external before the initial load."""
        for relation_name in relations:
            if not self.schema.has_relation(relation_name):
                continue
            arity = self.schema.relation(relation_name).arity
            if self.kb.fact_count((relation_name, arity)):
                self.merger.materialise_internal(relation_name)

    def _recursive_indicators(self) -> set:
        if self.plans is not None:
            return self.plans.recursive_indicators(self.kb, self.schema)
        return recursive_indicators(self.kb, self.schema)

    def _observed_demand(self) -> int:
        demand = 0
        if self.plans is not None:
            demand += self.plans.stats.hits
        if self.result_cache is not None:
            demand += self.result_cache.stats.hits
        return demand

    @staticmethod
    def _table_name(view_name: str) -> str:
        from ..dbms.sqlite_backend import ExternalDatabase

        safe = re.sub(r"[^A-Za-z0-9_]", "_", view_name)
        return f"{ExternalDatabase.MATERIALIZED_PREFIX}{safe}"

    # -- delta capture ------------------------------------------------------

    def _on_kb_event(self, kind: str, indicator, clauses) -> None:
        name, arity = indicator
        dependents = self._by_relation.get(name)
        if not dependents:
            return
        if not self.schema.has_relation(name):
            return
        if self.schema.relation(name).arity != arity:
            return
        if kind == "clear":
            # A retract_all sweep mixes removals with rows that survive
            # externally; recompute instead of guessing.
            for view in dependents:
                view.stale = True
            return
        for clause in clauses:
            row = fact_row(clause)
            if row is None:
                continue  # non-tuple fact: invisible to the merged union
            if kind == "insert":
                self._apply_insert(name, row)
            elif kind == "delete":
                self._apply_delete(name, row)

    def _apply_insert(self, relation: str, row: tuple) -> None:
        union = self._union[relation]
        if row in union:
            return  # merge semantics: duplicate of a visible tuple
        self.database.insert_rows(relation, [row])
        union.add(row)
        self._dispatch(Delta(relation, INSERT, row))
        self._heal_pass(relation)

    def _apply_delete(self, relation: str, row: tuple) -> None:
        union = self._union[relation]
        if row not in union:
            return
        # Delete deltas evaluate against the pre-delete state.
        self._dispatch(Delta(relation, DELETE, row))
        self.database.delete_row(relation, row)
        union.discard(row)
        self._heal_pass(relation)

    def external_delete(self, relation: str, row: tuple) -> bool:
        """Remove a tuple that exists only externally (no internal fact).

        The session's ``retract_fact`` calls this when ``kb.retract``
        found nothing to remove; returns True only when a tuple was
        actually removed (a maintained relation knows its visible union,
        so an absent row is a definite no-op).
        """
        if relation not in self._by_relation:
            return False
        if row not in self._union[relation]:
            return False
        self._apply_delete(relation, row)
        return True

    def _dispatch(self, delta: Delta) -> None:
        for view in self._by_relation.get(delta.relation, ()):
            if view.quarantined:
                continue  # rebuilt wholesale by the heal pass, not patched
            if view.storage == INVALIDATE or view.stale:
                view.stale = True
                continue
            try:
                view.apply_delta(delta)
                self.stats.incr("deltas_applied")
            except Exception:
                self._quarantine(view)

    # -- quarantine and self-healing ----------------------------------------

    def _resilience_incr(self, counter: str) -> None:
        if self.resilience is not None:
            self.resilience.incr(counter)

    def _quarantine(self, view: MaintainedView) -> None:
        """A maintenance delta failed: stop trusting the view's counts.

        The backend half of the delta is transactional (rolled back with
        its generation stamp), so normally both stores still agree at
        the old generation — a stamp mismatch here is *torn* maintenance
        and is counted separately.  Either way the view leaves serving:
        asks fall through to cold recompute until the next write-side
        opportunity rebuilds it.
        """
        try:
            torn = not view.verify_generation()
        except Exception:
            torn = False  # verification needs the backend too; stay humble
        if torn:
            self.stats.incr("torn_detected")
            self._resilience_incr("torn_detected")
        view.quarantined = True
        view.stale = True
        self.stats.incr("quarantines")
        self.stats.incr("fallbacks")
        self._resilience_incr("quarantines")

    def _heal_pass(self, relation: str) -> None:
        """The write-side self-healing opportunity after a mutation."""
        for view in self._by_relation.get(relation, ()):
            if view.quarantined:
                self._try_heal(view)

    def _try_heal(self, view: MaintainedView) -> bool:
        """Rebuild one quarantined view; False when the rebuild failed too.

        A failed heal leaves the view quarantined — the next write-side
        opportunity (or explicit :meth:`heal_all`) retries, so on any
        eventually-healing fault schedule every view converges back to
        serving condition.
        """
        try:
            view.refresh()
        except Exception:
            return False
        self.stats.incr("refreshes")
        self.stats.incr("heals")
        self._resilience_incr("heals")
        return True

    def heal_all(self) -> int:
        """Attempt to heal every quarantined view; returns how many remain."""
        remaining = 0
        for view in self._views.values():
            if view.quarantined and not self._try_heal(view):
                remaining += 1
        return remaining

    def quarantined_views(self) -> list[MaintainedView]:
        return [view for view in self._views.values() if view.quarantined]

    # -- serving ------------------------------------------------------------

    def answer(
        self, goal: Term, max_solutions: Optional[int] = None
    ) -> Optional[list[dict]]:
        """Maintained answers for ``goal``, or None to fall to the cold path."""
        status, answers = self.try_answer(goal, max_solutions)
        if status == "hit":
            return answers
        if status != "stale":
            return None
        # A stale view (or a due promotion) needs mutating work; callers
        # on the concurrent read path never reach here — the session
        # restarts them on the write side first.
        parts = conjuncts(goal)
        view = self._views.get(parts[0].indicator)
        if view.quarantined:
            if not self._try_heal(view):
                return None  # degraded: cold recompute serves this ask
        elif view.stale:
            view.refresh()
            self.stats.incr("refreshes")
        answers = view.answers(parts[0])
        if answers is None:
            return None
        self.stats.incr("maintained_asks")
        if not view.recursive:
            self._maybe_promote(view)
            if max_solutions is not None:
                return answers[:max_solutions]
        return answers

    def try_answer(
        self, goal: Term, max_solutions: Optional[int] = None
    ) -> tuple[str, Optional[list[dict]]]:
        """The read-only half of :meth:`answer`, safe under a read lock.

        Returns ``("hit", answers)`` when a fresh maintained view served
        the goal, ``("stale", None)`` when answering needs mutating work
        (a stale view must refresh, or a backend promotion is due) so the
        caller must retry holding the write lock, and ``("miss", None)``
        when no maintained view covers the goal.
        """
        parts = conjuncts(goal)
        if len(parts) != 1 or not isinstance(parts[0], Struct):
            return "miss", None
        call = parts[0]
        view = self._views.get(call.indicator)
        if view is None:
            return "miss", None
        if view.quarantined or view.stale:
            return "stale", None  # healing/refreshing mutates: write side
        if (
            not view.recursive
            and view.backend_table is None
            and self._storage_request.get(view.goal.indicator) in ("auto", None)
            and self.policy.promotion_due(
                view.storage, view.row_count, view.stats.maintained_asks
            )
        ):
            return "stale", None  # promotion mutates: defer to the write side
        answers = view.answers(call)
        if answers is None:
            return "miss", None
        self.stats.incr("maintained_asks")
        if not view.recursive and max_solutions is not None:
            return "hit", answers[:max_solutions]
        # The batch recursive path ignores max_solutions; mirror it.
        return "hit", answers

    def _maybe_promote(self, view: MaterializedView) -> None:
        if view.backend_table is not None:
            return
        if self._storage_request.get(view.goal.indicator) not in ("auto", None):
            return
        if self.policy.promotion_due(
            view.storage, view.row_count, view.stats.maintained_asks
        ):
            view.promote_to_backend(self._table_name(view.name))
            self.stats.incr("promotions")

    # -- lifecycle ----------------------------------------------------------

    def on_load(self, relations: Sequence[str]) -> None:
        """A wholesale load replaced base relations: resync and go stale.

        Refreshes happen lazily on the next ask of each affected view.
        """
        for relation in relations:
            if relation in self._union:
                self._union[relation] = set(
                    self.database.fetch_relation(relation)
                )
            for view in self._by_relation.get(relation, ()):
                view.stale = True

    def on_consult(self, indicators: Sequence[tuple]) -> None:
        """Program clauses changed: rebuild views whose rules may differ.

        Pure base-relation facts arrive as ordinary insert deltas and
        need no rebuild; anything else (view rules, rules for a base
        relation) conservatively re-registers every view.
        """
        def is_base_fact(indicator: tuple) -> bool:
            name, arity = indicator
            return (
                self.schema.has_relation(name)
                and self.schema.relation(name).arity == arity
            )

        if all(is_base_fact(indicator) for indicator in indicators):
            return
        if not self._views:
            return
        registered = [
            (view.goal, self._storage_request[indicator], view.name)
            for indicator, view in self._views.items()
        ]
        self._teardown()
        for goal, storage, view_name in registered:
            self.view(goal, storage=storage, name=view_name)

    def _teardown(self) -> None:
        for view in self._views.values():
            if getattr(view, "backend_table", None):
                self.database.drop_materialized(view.backend_table)
        self._views.clear()
        self._storage_request.clear()
        self._by_relation.clear()
        self._union.clear()
        self.stats.views = 0

    # -- inspection ---------------------------------------------------------

    def views(self) -> list[MaintainedView]:
        return list(self._views.values())

    def is_maintained(self, relation: str) -> bool:
        return relation in self._by_relation

    def has_view(self, indicator: tuple) -> bool:
        """Is a maintained view registered under this indicator?

        The serving layer consults this before diverting a recursive
        goal group into the batch-seeded CTE: maintained views must keep
        answering from their :class:`IncrementalClosure`.
        """
        return indicator in self._views

    def stats_dict(self) -> dict:
        """The maintenance counters as one plain JSON-serializable dict.

        Delegates to the uniform ``snapshot()`` contract every stats
        section now follows (``session.stats()`` is ``json.dumps``-able
        end to end).
        """
        return self.stats.snapshot()
