"""Syntactic tableau minimization (paper sections 6.0 and 6.4 step 6).

Join minimization "corresponds to the minimization of the number of rows"
(Aho–Sagiv–Ullman); the algorithms follow Sagiv 1983, extended — as the
paper requires — to the multi-relation setting where a symbol may appear
in more than one tableau column (Johnson–Klug).

A row is redundant when the full tableau has a containment mapping onto
the tableau without that row, fixing target symbols, constants, and every
symbol used in Relcomparisons (the conservative treatment of inequalities;
see :mod:`repro.dbcl.containment`).  Rows are removed greedily until no
row is removable; for conjunctive queries this reaches the unique core.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dbcl.containment import find_homomorphism
from ..dbcl.predicate import DbclPredicate
from ..dbcl.symbols import JoinableSymbol, is_variable_symbol


@dataclass
class MinimizeOutcome:
    """Result of the syntactic minimization."""

    predicate: DbclPredicate
    removed_rows: int = 0

    @property
    def changed(self) -> bool:
        return self.removed_rows > 0


def _row_removable(predicate: DbclPredicate, row_index: int) -> bool:
    """Can ``row_index`` be dropped without changing the answer?"""
    reduced = predicate.drop_rows([row_index], validate=False)
    # Symbols that the reduced predicate must still bind: comparisons refer
    # to them, so they must survive in some row (and be mapped identically).
    frozen = {
        symbol
        for symbol in predicate.comparison_symbols()
        if is_variable_symbol(symbol)
    }
    if any(not reduced.occurs_in_rows(symbol) for symbol in frozen):
        return False
    # Targets must also keep at least one occurrence.
    if any(
        not reduced.occurs_in_rows(target) for target in predicate.target_symbols()
    ):
        return False
    return find_homomorphism(predicate, reduced, frozen=frozen) is not None


def minimize(predicate: DbclPredicate) -> MinimizeOutcome:
    """Remove redundant rows until none is removable."""
    current = predicate.dedupe_rows()
    removed = len(predicate.rows) - len(current.rows)
    progress = True
    while progress and len(current.rows) > 1:
        progress = False
        for row_index in range(len(current.rows)):
            if _row_removable(current, row_index):
                current = current.drop_rows([row_index])
                removed += 1
                progress = True
                break
    return MinimizeOutcome(current, removed)
