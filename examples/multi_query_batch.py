"""Multiple-query optimization: common subexpression isolation (paper §7).

A business-system scenario: a reporting job asks the same headcount view
at many salary thresholds.  Executed independently, each query re-runs
the same join; the batch executor recognises the shared core, runs one
widened scan, and answers every threshold from the stored intermediate
result — the paper's "processing multiple database queries simultaneously
by recognizing common subexpressions [Jarke 1984]".

Run with::

    python examples/multi_query_batch.py
"""

import time

from repro import BatchExecutor, PrologDbSession, generate_org
from repro.prolog import var
from repro.schema import WORKS_DIR_FOR_SOURCE


def main() -> None:
    session = PrologDbSession()
    org = generate_org(depth=4, branching=3, staff_per_dept=5, seed=9)
    session.load_org(org)
    session.consult(WORKS_DIR_FOR_SOURCE)
    print(f"Org: {org.employee_count} employees\n")

    thresholds = list(range(15000, 90000, 5000))
    predicates = [
        session.metaevaluator.metaevaluate(
            f"empl(E, N, S, D), less(S, {t})", targets=[var("N")]
        )
        for t in thresholds
    ]
    print(f"Batch: headcount below each of {len(thresholds)} salary thresholds")

    for label, share in (("independent", False), ("shared", True)):
        executor = BatchExecutor(
            session.database, session.constraints, share=share
        )
        session.database.stats.reset()
        start = time.perf_counter()
        answers, report = executor.execute(predicates)
        elapsed = (time.perf_counter() - start) * 1000
        print(f"\n  {label:<12} queries issued: {report.queries_issued:>3}  "
              f"(saved {report.queries_saved}), wall: {elapsed:7.2f} ms")
        for threshold, rows in list(zip(thresholds, answers))[:3]:
            print(f"    sal < {threshold}: {len(rows)} employees")
        print("    ...")

    # Sanity: both modes agree everywhere.
    shared_answers, _ = BatchExecutor(
        session.database, session.constraints, share=True
    ).execute(predicates)
    unshared_answers, _ = BatchExecutor(
        session.database, session.constraints, share=False
    ).execute(predicates)
    assert all(
        set(a) == set(b) for a, b in zip(shared_answers, unshared_answers)
    )
    print("\nBoth modes return identical answers for every threshold.")
    session.close()


if __name__ == "__main__":
    main()
