"""The DBCL predicate: a tagged tableau with comparisons (paper section 3).

A DBCL predicate for conjunctive queries has four components::

    dbcl(Schema, Targetlist, Relreferences, Relcomparisons)

* ``Schema`` — the database name plus the global attribute list;
* ``Targetlist`` — the schema of the result relation: the view name plus
  one entry per column (``t_`` symbols where the query projects, ``*``
  elsewhere);
* ``Relreferences`` — the tableau rows; each row carries a relation *tag*
  and one symbol per schema column (``*`` for attributes the relation does
  not have).  A symbol repeated across cells denotes an equijoin;
* ``Relcomparisons`` — inequality restrictions/joins such as
  ``[less, v_Sal1, 40000]``.

The class is immutable; optimizer stages derive new predicates through
:meth:`rename`, :meth:`drop_rows`, and :meth:`replace`.  This keeps
Algorithm 2 a pure pipeline and makes property tests (idempotence,
answer preservation) straightforward.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace as dc_replace
from typing import Callable, Iterable, Iterator, Mapping, Optional, Sequence

from ..errors import DbclError
from ..schema.catalog import DatabaseSchema
from .symbols import (
    STAR,
    ConstSymbol,
    JoinableSymbol,
    Star,
    Symbol,
    TargetSymbol,
    VarSymbol,
    is_constant_symbol,
    is_star,
    is_variable_symbol,
)

#: Comparison operator names allowed in Relcomparisons, with SQL spellings.
COMPARISON_OPS: dict[str, str] = {
    "eq": "=",
    "neq": "<>",
    "less": "<",
    "greater": ">",
    "leq": "<=",
    "geq": ">=",
}

#: op -> op with sides swapped (used for normalisation).
MIRRORED_OPS: dict[str, str] = {
    "eq": "eq",
    "neq": "neq",
    "less": "greater",
    "greater": "less",
    "leq": "geq",
    "geq": "leq",
}

#: op -> logical negation (used by the extensions layer).
NEGATED_OPS: dict[str, str] = {
    "eq": "neq",
    "neq": "eq",
    "less": "geq",
    "greater": "leq",
    "leq": "greater",
    "geq": "less",
}


@dataclass(frozen=True, slots=True)
class RelRow:
    """One tagged tableau row: a relation name plus a cell per column."""

    tag: str
    entries: tuple[Symbol, ...]

    def __str__(self) -> str:
        cells = ", ".join(str(entry) for entry in self.entries)
        return f"[{self.tag}, {cells}]"

    def cell(self, column: int) -> Symbol:
        return self.entries[column]

    def with_entries(self, entries: Sequence[Symbol]) -> "RelRow":
        return RelRow(self.tag, tuple(entries))


@dataclass(frozen=True, slots=True)
class Comparison:
    """One Relcomparisons element: ``[op, left, right]``."""

    op: str
    left: JoinableSymbol
    right: JoinableSymbol

    def __post_init__(self):
        if self.op not in COMPARISON_OPS:
            raise DbclError(f"unknown comparison operator {self.op!r}")
        if is_star(self.left) or is_star(self.right):
            raise DbclError("comparisons cannot involve '*'")

    def __str__(self) -> str:
        return f"[{self.op}, {self.left}, {self.right}]"

    def mirrored(self) -> "Comparison":
        """The same constraint with operands swapped."""
        return Comparison(MIRRORED_OPS[self.op], self.right, self.left)

    def negated(self) -> "Comparison":
        """The logical negation (for the extensions layer)."""
        return Comparison(NEGATED_OPS[self.op], self.left, self.right)

    def symbols(self) -> tuple[JoinableSymbol, JoinableSymbol]:
        return (self.left, self.right)

    @property
    def is_ground(self) -> bool:
        return is_constant_symbol(self.left) and is_constant_symbol(self.right)

    def evaluate_ground(self) -> bool:
        """Truth value when both sides are constants.

        Cross-type orderings follow SQLite's semantics (numbers before
        strings) via :func:`repro.dbcl.symbols.compare_values`, so the
        optimizer and the execution substrate always agree.
        """
        if not self.is_ground:
            raise DbclError(f"comparison {self} is not ground")
        from .symbols import compare_values

        ordering = compare_values(
            self.left.value, self.right.value  # type: ignore[union-attr]
        )
        return {
            "eq": ordering == 0,
            "neq": ordering != 0,
            "less": ordering < 0,
            "greater": ordering > 0,
            "leq": ordering <= 0,
            "geq": ordering >= 0,
        }[self.op]


@dataclass(frozen=True)
class Occurrence:
    """Where a symbol occurs: row index and schema column."""

    row: int
    column: int


class DbclPredicate:
    """An immutable DBCL predicate over a fixed database schema.

    ``targets`` is the authoritative, *ordered* list of output symbols
    (matching the argument order of the original Prolog goal).  The
    paper's flat Targetlist row is available as the derived
    :attr:`targetlist` — it is purely presentational, because two targets
    may legitimately address the same schema column (both arguments of
    ``works_dir_for(X, Y)`` are names) and a one-cell-per-column row
    cannot carry that.
    """

    __slots__ = ("schema", "name", "targets", "rows", "comparisons", "_occurrences")

    def __init__(
        self,
        schema: DatabaseSchema,
        name: str,
        targets: Sequence[Symbol],
        rows: Sequence[RelRow],
        comparisons: Sequence[Comparison] = (),
        validate: bool = True,
    ):
        self.schema = schema
        self.name = name
        self.targets: tuple[TargetSymbol, ...] = self._coerce_targets(targets)
        self.rows: tuple[RelRow, ...] = tuple(rows)
        self.comparisons: tuple[Comparison, ...] = tuple(comparisons)
        self._occurrences: Optional[dict[JoinableSymbol, list[Occurrence]]] = None
        if validate:
            self._validate()

    def _coerce_targets(self, targets: Sequence[Symbol]) -> tuple[TargetSymbol, ...]:
        """Accept either an explicit target list or a paper-style row.

        A sequence of exactly schema-width entries containing at least one
        ``*`` is interpreted as the paper's Targetlist row; anything else
        must be a plain sequence of target symbols.
        """
        entries = tuple(targets)
        if len(entries) == self.schema.width and any(is_star(e) for e in entries):
            collected = []
            for entry in entries:
                if is_star(entry):
                    continue
                if not isinstance(entry, TargetSymbol):
                    raise DbclError(
                        f"targetlist row: expected '*' or t_-symbol, got {entry}"
                    )
                collected.append(entry)
            return tuple(collected)
        for entry in entries:
            if not isinstance(entry, TargetSymbol):
                raise DbclError(f"targets: expected t_-symbols, got {entry}")
        return entries  # type: ignore[return-value]

    @property
    def targetlist(self) -> tuple[Symbol, ...]:
        """The paper's Targetlist row (first target per column; display only)."""
        row: list[Symbol] = [STAR] * self.schema.width
        for target in self.targets:
            column = self.first_occurrence(target).column
            if is_star(row[column]):
                row[column] = target
        return tuple(row)

    # -- validation -----------------------------------------------------------

    def _validate(self) -> None:
        width = self.schema.width
        if len(set(self.targets)) != len(self.targets):
            raise DbclError("duplicate target symbol in targets")
        for row_index, row in enumerate(self.rows):
            if not self.schema.has_relation(row.tag):
                raise DbclError(f"row {row_index}: unknown relation {row.tag!r}")
            if len(row.entries) != width:
                raise DbclError(
                    f"row {row_index}: width {len(row.entries)} != schema width {width}"
                )
            covered = set(self.schema.columns_of_relation(row.tag))
            for column, entry in enumerate(row.entries):
                if column in covered:
                    if is_star(entry):
                        raise DbclError(
                            f"row {row_index} ({row.tag}): column "
                            f"{self.schema.attribute_names[column]} must be filled"
                        )
                else:
                    if not is_star(entry):
                        raise DbclError(
                            f"row {row_index} ({row.tag}): column "
                            f"{self.schema.attribute_names[column]} does not apply; "
                            f"found {entry}"
                        )
        row_symbols = self._row_symbol_set()
        for target in self.target_symbols():
            if target not in row_symbols:
                raise DbclError(f"target {target} does not occur in any row")
        for comparison in self.comparisons:
            for side in comparison.symbols():
                if is_variable_symbol(side) and side not in row_symbols:
                    raise DbclError(
                        f"comparison {comparison}: {side} does not occur in any row"
                    )

    def _row_symbol_set(self) -> set[JoinableSymbol]:
        symbols: set[JoinableSymbol] = set()
        for row in self.rows:
            for entry in row.entries:
                if not is_star(entry):
                    symbols.add(entry)  # type: ignore[arg-type]
        return symbols

    # -- inspection -------------------------------------------------------------

    def target_symbols(self) -> list[TargetSymbol]:
        """The output symbols, in goal-argument order."""
        return list(self.targets)

    def target_columns(self) -> list[int]:
        """Schema column of each target's first occurrence, in target order."""
        return [self.first_occurrence(target).column for target in self.targets]

    @property
    def arity(self) -> int:
        """Number of output columns of the query."""
        return len(self.targets)

    def occurrences(self) -> dict[JoinableSymbol, list[Occurrence]]:
        """Map each non-star symbol to its cells, in row-major order."""
        if self._occurrences is None:
            table: dict[JoinableSymbol, list[Occurrence]] = {}
            for row_index, row in enumerate(self.rows):
                for column, entry in enumerate(row.entries):
                    if not is_star(entry):
                        table.setdefault(entry, []).append(  # type: ignore[arg-type]
                            Occurrence(row_index, column)
                        )
            self._occurrences = table
        return self._occurrences

    def first_occurrence(self, symbol: JoinableSymbol) -> Occurrence:
        """First cell containing ``symbol`` (SQL rules 2, 4, 5 need this)."""
        cells = self.occurrences().get(symbol)
        if not cells:
            raise DbclError(f"symbol {symbol} does not occur in Relreferences")
        return cells[0]

    def occurs_in_rows(self, symbol: JoinableSymbol) -> bool:
        return symbol in self.occurrences()

    def occurrence_count(self, symbol: JoinableSymbol) -> int:
        """Number of cells containing ``symbol``."""
        return len(self.occurrences().get(symbol, ()))

    def comparison_symbols(self) -> set[JoinableSymbol]:
        """All symbols mentioned in Relcomparisons."""
        symbols: set[JoinableSymbol] = set()
        for comparison in self.comparisons:
            symbols.update(comparison.symbols())
        return symbols

    def variable_symbols(self) -> list[JoinableSymbol]:
        """All distinct ``t_``/``v_`` symbols, in first-occurrence order."""
        return [s for s in self.occurrences() if is_variable_symbol(s)]

    def var_symbols(self) -> list[VarSymbol]:
        """All distinct ``v_`` symbols, in first-occurrence order."""
        return [s for s in self.occurrences() if isinstance(s, VarSymbol)]

    def attribute_of_column(self, column: int) -> str:
        return self.schema.attribute_names[column]

    def join_count(self) -> int:
        """Number of equijoin terms the SQL translation will contain.

        Each symbol occurring in k cells yields k-1 equijoin terms
        (SQL translation rule 4), plus inequality joins from comparisons
        whose both sides are row variables.
        """
        equijoins = sum(
            len(cells) - 1
            for symbol, cells in self.occurrences().items()
            if is_variable_symbol(symbol)
        )
        inequality_joins = sum(
            1
            for comparison in self.comparisons
            if is_variable_symbol(comparison.left)
            and is_variable_symbol(comparison.right)
        )
        return equijoins + inequality_joins

    def fresh_var(self, base: str) -> VarSymbol:
        """A ``v_`` symbol on ``base`` not yet used in this predicate."""
        used = {
            s.number
            for s in self.occurrences()
            if isinstance(s, VarSymbol) and s.base == base
        }
        number = 0
        while number in used:
            number += 1
        return VarSymbol(base, number)

    # -- functional updates -------------------------------------------------------

    def replace(
        self,
        name: Optional[str] = None,
        targets: Optional[Sequence[Symbol]] = None,
        rows: Optional[Sequence[RelRow]] = None,
        comparisons: Optional[Sequence[Comparison]] = None,
        validate: bool = True,
    ) -> "DbclPredicate":
        """A copy with the given components replaced."""
        return DbclPredicate(
            self.schema,
            self.name if name is None else name,
            self.targets if targets is None else targets,
            self.rows if rows is None else rows,
            self.comparisons if comparisons is None else comparisons,
            validate=validate,
        )

    def rename(self, mapping: Mapping[JoinableSymbol, JoinableSymbol]) -> "DbclPredicate":
        """Apply a symbol substitution to rows and comparisons.

        The targetlist is *not* renamed: target symbols name output columns
        and must be preserved (renaming a target symbol would change the
        query's interface).  Mapping a target symbol raises.
        """
        for source in mapping:
            if isinstance(source, TargetSymbol):
                raise DbclError(f"cannot rename target symbol {source}")

        def rewrite(symbol: Symbol) -> Symbol:
            if is_star(symbol):
                return symbol
            return mapping.get(symbol, symbol)  # type: ignore[arg-type]

        new_rows = [
            row.with_entries([rewrite(entry) for entry in row.entries])
            for row in self.rows
        ]
        new_comparisons = [
            Comparison(c.op, rewrite(c.left), rewrite(c.right))  # type: ignore[arg-type]
            for c in self.comparisons
        ]
        return self.replace(rows=new_rows, comparisons=new_comparisons)

    def drop_rows(self, indices: Iterable[int], validate: bool = True) -> "DbclPredicate":
        """A copy without the rows at ``indices``.

        ``validate=False`` allows building candidate sub-tableaux that may
        dangle a comparison or target symbol — the minimizer probes such
        candidates and discards invalid ones itself.
        """
        dropped = set(indices)
        remaining = [row for i, row in enumerate(self.rows) if i not in dropped]
        return self.replace(rows=remaining, validate=validate)

    def drop_comparisons(self, indices: Iterable[int]) -> "DbclPredicate":
        """A copy without the comparisons at ``indices``."""
        dropped = set(indices)
        remaining = [
            c for i, c in enumerate(self.comparisons) if i not in dropped
        ]
        return self.replace(comparisons=remaining)

    def dedupe_rows(self) -> "DbclPredicate":
        """Remove exactly-identical rows (the ``A AND A <=> A`` rule)."""
        seen: set[tuple] = set()
        keep: list[RelRow] = []
        for row in self.rows:
            key = (row.tag, row.entries)
            if key not in seen:
                seen.add(key)
                keep.append(row)
        if len(keep) == len(self.rows):
            return self
        return self.replace(rows=keep)

    def dedupe_comparisons(self) -> "DbclPredicate":
        """Remove duplicate comparisons (including mirrored duplicates)."""
        seen: set[tuple] = set()
        keep: list[Comparison] = []
        for comparison in self.comparisons:
            key = (comparison.op, comparison.left, comparison.right)
            mirrored = comparison.mirrored()
            mirror_key = (mirrored.op, mirrored.left, mirrored.right)
            if key in seen or mirror_key in seen:
                continue
            seen.add(key)
            keep.append(comparison)
        if len(keep) == len(self.comparisons):
            return self
        return self.replace(comparisons=keep)

    # -- canonical form ------------------------------------------------------------

    def canonical_key(self) -> tuple:
        """A hashable key invariant under consistent ``v_`` renaming.

        Rows are sorted by a rename-independent signature, then variables
        are numbered in first-occurrence order over the sorted rows.  Equal
        keys imply isomorphic predicates (the rename is a bijection); some
        isomorphic pairs may produce different keys when row signatures tie,
        which is acceptable for its use in caching and common-subexpression
        detection (false negatives only).
        """
        def cell_signature(entry: Symbol) -> tuple:
            if is_star(entry):
                return (0,)
            if isinstance(entry, ConstSymbol):
                return (1, str(entry.value))
            if isinstance(entry, TargetSymbol):
                return (2, entry.name)
            return (3,)

        indexed = sorted(
            range(len(self.rows)),
            key=lambda i: (
                self.rows[i].tag,
                tuple(cell_signature(e) for e in self.rows[i].entries),
            ),
        )
        numbering: dict[JoinableSymbol, int] = {}

        def encode(entry: Symbol) -> tuple:
            if is_star(entry):
                return ("*",)
            if isinstance(entry, ConstSymbol):
                return ("c", entry.value)
            if isinstance(entry, TargetSymbol):
                return ("t", entry.name)
            assert isinstance(entry, VarSymbol)
            if entry not in numbering:
                numbering[entry] = len(numbering)
            return ("v", numbering[entry])

        encoded_rows = tuple(
            (self.rows[i].tag, tuple(encode(e) for e in self.rows[i].entries))
            for i in indexed
        )
        encoded_targets = tuple(encode(e) for e in self.targets)
        encoded_comparisons = tuple(
            sorted(
                (c.op, encode(c.left), encode(c.right)) for c in self.comparisons
            )
        )
        return (self.schema.name, encoded_targets, encoded_rows, encoded_comparisons)

    def canonical_form(self) -> "DbclPredicate":
        """A copy with ``v_`` symbols renamed to a canonical numbering.

        Two predicates with equal :meth:`canonical_key` have *identical*
        canonical forms, which lets the multiple-query optimizer align
        symbols across queries from different origins.
        """
        def cell_signature(entry: Symbol) -> tuple:
            if is_star(entry):
                return (0,)
            if isinstance(entry, ConstSymbol):
                return (1, str(entry.value))
            if isinstance(entry, TargetSymbol):
                return (2, entry.name)
            return (3,)

        indexed = sorted(
            range(len(self.rows)),
            key=lambda i: (
                self.rows[i].tag,
                tuple(cell_signature(e) for e in self.rows[i].entries),
            ),
        )
        mapping: dict[JoinableSymbol, JoinableSymbol] = {}
        for i in indexed:
            for entry in self.rows[i].entries:
                if isinstance(entry, VarSymbol) and entry not in mapping:
                    mapping[entry] = VarSymbol("C", len(mapping) + 1)
        renamed = self.rename(mapping)
        # Reorder rows into the canonical order as well.
        ordered_rows = [renamed.rows[i] for i in indexed]
        ordered_comparisons = sorted(
            renamed.comparisons, key=lambda c: (c.op, str(c.left), str(c.right))
        )
        return renamed.replace(rows=ordered_rows, comparisons=ordered_comparisons)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DbclPredicate):
            return NotImplemented
        return (
            self.schema.name == other.schema.name
            and self.name == other.name
            and self.targets == other.targets
            and self.rows == other.rows
            and self.comparisons == other.comparisons
        )

    def __hash__(self) -> int:
        return hash((self.name, self.targets, self.rows, self.comparisons))

    def __repr__(self) -> str:
        return (
            f"DbclPredicate({self.name!r}, rows={len(self.rows)}, "
            f"comparisons={len(self.comparisons)})"
        )

    def __str__(self) -> str:
        from .grammar import format_dbcl

        return format_dbcl(self)
