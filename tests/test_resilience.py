"""Tests for the fault-tolerant execution layer.

Covers the error taxonomy (per-code and per-message classification),
the retry/backoff policy and circuit breaker, seeded fault schedules and
the injecting backend, deadline budgets and their typed expiry, read-pool
capacity limits, the exception-safety of the write mutex under failing
transactions, the session-level degradation ladder (plan invalidation,
recursion rungs, batch→serial fallback), materialized-view quarantine /
self-healing / torn-stamp detection, and the randomized fault-schedule
differential (a Hypothesis property: any eventually-healing schedule
yields answers identical to a fault-free run).
"""

import gc
import sqlite3
import threading
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.coupling import PrologDbSession
from repro.dbms import generate_org
from repro.dbms.sqlite_backend import ExternalDatabase
from repro.errors import (
    BackendPoisonedError,
    DeadlineExceeded,
    ExecutionError,
    PoolExhaustedError,
    TransientBackendError,
    classify_sqlite_error,
)
from repro.resilience import CircuitBreaker, FaultPolicy, ResilienceStats
from repro.resilience.faults import (
    FAULT_KINDS,
    FaultEvent,
    FaultInjectingBackend,
    FaultSchedule,
)
from repro.schema import ALL_VIEWS_SOURCE
from repro.schema.empdep import empdep_constraints, empdep_schema


def answer_set(answers):
    return {frozenset(a.items()) for a in answers}


def make_backend(schedule=None, policy=None, **kwargs):
    schema = empdep_schema()
    constraints = empdep_constraints(schema)
    if schedule is None:
        return ExternalDatabase(
            schema, constraints=constraints, policy=policy, **kwargs
        )
    return FaultInjectingBackend(
        schema, constraints=constraints, policy=policy, schedule=schedule,
        **kwargs,
    )


def make_session(schedule=None, policy=None):
    database = make_backend(schedule=schedule, policy=policy)
    session = PrologDbSession(
        schema=database.schema,
        constraints=empdep_constraints(database.schema),
        database=database,
    )
    session.load_org(generate_org(depth=2, branching=2, staff_per_dept=3, seed=13))
    session.consult(ALL_VIEWS_SOURCE)
    return session


EMPL_ROWS = [
    (1, "emp00001", 90000, 1),
    (2, "emp00002", 50000, 1),
    (3, "emp00003", 40000, 2),
    (4, "emp00004", 30000, 2),
]


def coded(error_class, message, code):
    error = error_class(message)
    error.sqlite_errorcode = code
    return error


# -- error taxonomy (satellite: transient vs permanent per sqlite3 code) -------


@pytest.mark.smoke
class TestErrorTaxonomy:
    @pytest.mark.parametrize("code", [5, 6, 9, 10, 15])
    def test_transient_primary_codes(self, code):
        error = coded(sqlite3.OperationalError, "synthetic", code)
        assert classify_sqlite_error(error) == "transient"

    def test_extended_codes_mask_to_primary(self):
        # SQLITE_IOERR_READ = 10 | (1 << 8): extended bits must not hide
        # the transient primary code.
        error = coded(sqlite3.OperationalError, "disk failure", 10 | (1 << 8))
        assert classify_sqlite_error(error) == "transient"

    @pytest.mark.parametrize(
        ("code", "message"),
        [
            (1, "no such table: gone"),  # SQLITE_ERROR
            (19, "NOT NULL constraint failed"),  # SQLITE_CONSTRAINT
            (13, "database or disk is full"),  # SQLITE_FULL
        ],
    )
    def test_permanent_codes(self, code, message):
        error = coded(sqlite3.OperationalError, message, code)
        assert classify_sqlite_error(error) == "permanent"

    @pytest.mark.parametrize(
        "message",
        [
            "database is locked",
            "database table is locked: empl",
            "interrupted",
            "disk I/O error",
        ],
    )
    def test_transient_messages_without_codes(self, message):
        assert classify_sqlite_error(
            sqlite3.OperationalError(message)
        ) == "transient"

    @pytest.mark.parametrize(
        "message",
        [
            "Cannot operate on a closed database.",
            "database disk image is malformed",
        ],
    )
    def test_poisoned_messages(self, message):
        assert classify_sqlite_error(
            sqlite3.ProgrammingError(message)
        ) == "poisoned"

    def test_unknown_error_is_permanent(self):
        assert classify_sqlite_error(
            sqlite3.OperationalError("near SELEC: syntax error")
        ) == "permanent"

    def test_taxonomy_hierarchy(self):
        assert issubclass(TransientBackendError, ExecutionError)
        assert issubclass(BackendPoisonedError, TransientBackendError)
        assert issubclass(PoolExhaustedError, TransientBackendError)
        # A deadline is a caller-imposed budget, not a backend fault:
        # neither the retry loop nor the ladder may swallow it.
        assert not issubclass(DeadlineExceeded, ExecutionError)


# -- policy and breaker --------------------------------------------------------


@pytest.mark.smoke
class TestFaultPolicy:
    def test_backoff_grows_exponentially_to_cap(self):
        policy = FaultPolicy(jitter=0.0)
        pauses = [policy.backoff(attempt) for attempt in range(10)]
        assert pauses[0] == pytest.approx(policy.base_backoff)
        assert all(b >= a for a, b in zip(pauses, pauses[1:]))
        assert pauses[-1] == policy.max_backoff

    def test_jitter_stays_within_band(self):
        policy = FaultPolicy(jitter=0.25)
        base = FaultPolicy(jitter=0.0).backoff(3)
        for _ in range(200):
            pause = policy.backoff(3)
            assert base * 0.75 <= pause <= base * 1.25

    def test_disabled_policy_is_single_attempt(self):
        policy = FaultPolicy.disabled()
        assert not policy.enabled
        assert policy.max_attempts == 1


class TestCircuitBreaker:
    def test_state_machine_and_counters(self):
        stats = ResilienceStats()
        breaker = CircuitBreaker(threshold=3, cooldown=0.02, stats=stats)
        assert breaker.state == "closed"
        assert breaker.allow()
        for _ in range(3):
            breaker.failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.retry_after() > 0
        time.sleep(0.03)
        assert breaker.allow()  # cooldown elapsed: half-open probe
        assert breaker.state == "half-open"
        breaker.failure()  # failed probe re-opens immediately
        assert breaker.state == "open"
        time.sleep(0.03)
        assert breaker.allow()
        breaker.success()
        assert breaker.state == "closed"
        snapshot = stats.snapshot()
        assert snapshot["breaker_opens"] == 2
        assert snapshot["breaker_half_opens"] == 2
        assert snapshot["breaker_closes"] == 1

    def test_success_resets_failure_streak(self):
        breaker = CircuitBreaker(threshold=3, cooldown=0.01)
        breaker.failure()
        breaker.failure()
        breaker.success()
        breaker.failure()
        breaker.failure()
        assert breaker.state == "closed"  # streak broken: never tripped


# -- fault schedules -----------------------------------------------------------


@pytest.mark.smoke
class TestFaultSchedule:
    def test_same_seed_same_schedule(self):
        a = FaultSchedule.random(seed=42)
        b = FaultSchedule.random(seed=42)
        assert a.events == b.events

    def test_draw_fires_at_ordinal_with_burst(self):
        schedule = FaultSchedule([FaultEvent(at=1, kind="locked", burst=2)])
        assert schedule.draw("read") is None  # ordinal 0
        assert schedule.draw("read").kind == "locked"  # 1: burst tick 1
        assert schedule.draw("read").kind == "locked"  # 2: burst tick 2
        assert schedule.draw("read") is None
        assert schedule.exhausted
        assert schedule.injected == 2

    def test_classes_count_independently(self):
        schedule = FaultSchedule(
            [FaultEvent(at=0, kind="write_locked"), FaultEvent(at=2, kind="locked")]
        )
        assert schedule.draw("write").kind == "write_locked"
        for _ in range(2):
            assert schedule.draw("read") is None
        assert schedule.draw("read").kind == "locked"
        assert schedule.exhausted

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent(at=0, kind="earthquake")


# -- backend retry ladder ------------------------------------------------------


class TestBackendRetries:
    def test_locked_burst_rides_out_within_budget(self):
        schedule = FaultSchedule([FaultEvent(at=0, kind="locked", burst=3)])
        with make_backend(schedule=schedule) as database:
            database.insert_rows("empl", EMPL_ROWS)
            assert database.row_count("empl") == 4
            snapshot = database.resilience.snapshot()
            assert snapshot["retries"] >= 3
            assert snapshot["faults_injected"] == 3
            assert schedule.exhausted

    def test_io_error_burst_exceeding_budget_is_typed(self):
        policy = FaultPolicy(max_attempts=2, lock_patience=0.0, jitter=0.0)
        schedule = FaultSchedule([FaultEvent(at=0, kind="io_error", burst=8)])
        with make_backend(schedule=schedule, policy=policy) as database:
            database.insert_rows("empl", EMPL_ROWS)
            with pytest.raises(TransientBackendError):
                database.row_count("empl")
            # the schedule eventually drains; later calls recover
            for _ in range(12):
                try:
                    assert database.row_count("empl") == 4
                    break
                except TransientBackendError:
                    continue
            else:
                pytest.fail("backend never recovered after schedule drained")
            assert schedule.exhausted

    def test_poisoned_reader_is_retired_and_replaced(self):
        schedule = FaultSchedule([FaultEvent(at=1, kind="poison")])
        with make_backend(schedule=schedule) as database:
            database.insert_rows("empl", EMPL_ROWS)
            assert database.row_count("empl") == 4  # read 0: healthy
            # read 1 draws the poison (its own reader is closed in place),
            # fails, retires the connection, and retries on a fresh one.
            assert database.row_count("empl") == 4
            assert database.resilience.snapshot()["poisoned_retired"] >= 1

    def test_write_locked_fault_is_retried(self):
        schedule = FaultSchedule([FaultEvent(at=0, kind="write_locked")])
        with make_backend(schedule=schedule) as database:
            database.insert_rows("empl", EMPL_ROWS)
            assert database.row_count("empl") == 4
            assert database.resilience.snapshot()["retries"] >= 1

    def test_disabled_policy_bypasses_injection_and_retries(self):
        # FaultPolicy.disabled() is the pre-resilience overhead baseline:
        # the fault point is never consulted and nothing is retried.
        schedule = FaultSchedule([FaultEvent(at=0, kind="io_error")])
        database = make_backend(
            schedule=schedule, policy=FaultPolicy.disabled()
        )
        with database:
            database.insert_rows("empl", EMPL_ROWS)
            assert database.row_count("empl") == 4
            snapshot = database.resilience.snapshot()
            assert snapshot["faults_injected"] == 0
            assert snapshot["retries"] == 0
            assert not schedule.exhausted  # never drawn from

    def test_breaker_states_exposed(self):
        with make_backend() as database:
            assert database.breaker_states() == {
                "read": "closed",
                "write": "closed",
            }


# -- deadlines (satellite: typed expiry with partial-work counters) ------------


class TestDeadlines:
    def test_expired_scope_raises_typed_error_with_partial_work(self):
        with make_backend() as database:
            database.insert_rows("empl", EMPL_ROWS)
            # some counted work before the budget dies
            database.execute("SELECT nam FROM empl")
            with database.deadline(0.0):
                with pytest.raises(DeadlineExceeded) as caught:
                    database.row_count("empl")
            partial = caught.value.partial
            assert partial["queries_executed"] >= 1
            assert set(partial) >= {
                "queries_executed",
                "rows_fetched",
                "retries",
                "backoff_seconds",
            }
            assert database.resilience.snapshot()["deadline_exceeded"] >= 1

    def test_nested_scopes_only_shrink(self):
        with make_backend() as database:
            with database.deadline(10.0):
                outer = database.current_deadline()
                with database.deadline(60.0):  # cannot extend the outer budget
                    assert database.current_deadline() is outer
                with database.deadline(0.001):
                    inner = database.current_deadline()
                    assert inner is not outer
                    assert inner.until <= outer.until
                assert database.current_deadline() is outer
            assert database.current_deadline() is None

    def test_ask_deadline_surfaces_from_session(self):
        session = make_session()
        try:
            with pytest.raises(DeadlineExceeded) as caught:
                session.ask("works_dir_for(X, Y)", deadline=0.0)
            assert "queries_executed" in caught.value.partial
        finally:
            session.close()

    def test_ask_without_deadline_unaffected(self):
        session = make_session()
        try:
            assert session.ask("works_dir_for(X, Y)")
        finally:
            session.close()


# -- pool capacity (satellite: clean timeout, not a hang) ----------------------


class TestPoolExhaustion:
    def test_exhausted_pool_times_out_cleanly(self):
        with make_backend(max_readers=1, pool_wait_timeout=0.15) as database:
            database.insert_rows("empl", EMPL_ROWS)
            claimed = threading.Event()
            release = threading.Event()

            def holder():
                database.row_count("empl")  # claims the only reader slot
                claimed.set()
                release.wait(10.0)

            thread = threading.Thread(target=holder)
            thread.start()
            try:
                assert claimed.wait(5.0)
                started = time.monotonic()
                with pytest.raises(PoolExhaustedError):
                    database.row_count("empl")
                elapsed = time.monotonic() - started
                assert elapsed < 2.0  # timed out, did not hang
                assert database.resilience.snapshot()["pool_timeouts"] >= 1
            finally:
                release.set()
                thread.join(timeout=5.0)
            assert not thread.is_alive()

    def test_capacity_frees_when_reader_retires(self):
        with make_backend(max_readers=1, pool_wait_timeout=1.0) as database:
            database.insert_rows("empl", EMPL_ROWS)
            done = threading.Event()

            def transient_reader():
                database.row_count("empl")
                done.set()

            thread = threading.Thread(target=transient_reader)
            thread.start()
            assert done.wait(5.0)
            thread.join(timeout=5.0)
            # Retirement is keyed on the Thread object's finalizer: drop
            # our reference and collect so the slot frees deterministically.
            thread = None
            gc.collect()
            assert database.row_count("empl") == 4


# -- write-mutex exception safety (satellite: failing-txn hammer) --------------


class TestWriteExceptionSafety:
    def test_failed_statement_stages_nothing(self):
        with make_backend() as database:

            def attempt():
                with database._mutate():
                    database._connection.execute(
                        "INSERT INTO empl VALUES (7, 'ghost', 1, 1)"
                    )
                    raise sqlite3.OperationalError("no such table: synthetic")

            with pytest.raises(sqlite3.OperationalError):
                database._run_write("hammer", attempt)
            # The staged row was rolled back on the spot: a later commit
            # by an unrelated write must not resurrect it.
            database.insert_rows("dept", [(50, "d50", 1)])
            assert database.row_count("empl") == 0

    def test_concurrent_failing_transactions_leave_no_debris(self):
        with make_backend() as database:
            errors = []

            def worker(base):
                for i in range(12):
                    eno = base + i
                    row = (eno, f"emp{eno}", 100 + i, 1)
                    try:
                        if i % 3 == 2:
                            try:
                                with database.transaction():
                                    database.insert_rows("empl", [row])
                                    raise RuntimeError("abort this unit")
                            except RuntimeError:
                                pass  # the bracket rolled the insert back
                        else:
                            database.insert_rows("empl", [row])
                            database.row_count("empl")
                    except Exception as error:  # noqa: BLE001 - collected
                        errors.append(error)

            threads = [
                threading.Thread(target=worker, args=(1000 * (n + 1),))
                for n in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30.0)
            assert not any(thread.is_alive() for thread in threads)
            assert errors == []
            # 12 per thread, every third aborted: 8 survive per thread.
            assert database.row_count("empl") == 4 * 8
            # The write mutex is free: one more write goes straight through.
            database.insert_rows("empl", [(9999, "after", 1, 1)])
            assert database.row_count("empl") == 4 * 8 + 1


# -- session degradation ladder ------------------------------------------------


class TestSessionLadder:
    def test_session_retries_through_statement_budget_exhaustion(self):
        policy = FaultPolicy(
            max_attempts=2, lock_patience=0.0, ask_retry_pause=0.001, jitter=0.0
        )
        schedule = FaultSchedule([FaultEvent(at=2, kind="io_error", burst=6)])
        session = make_session(schedule=schedule, policy=policy)
        try:
            baseline_session = make_session()
            expected = answer_set(baseline_session.ask("works_dir_for(X, Y)"))
            baseline_session.close()
            answers = session.ask("works_dir_for(X, Y)")
            assert answer_set(answers) == expected
            assert session.stats()["resilience"]["ask_retries"] >= 1
        finally:
            session.close()

    def test_permanent_warm_plan_failure_invalidates_and_recompiles(self):
        session = make_session()
        try:
            baseline = make_session()
            expected = answer_set(baseline.ask("works_dir_for(X, 'emp00004')"))
            baseline.close()
            # Warm the parameterized plan with two other constants.
            session.ask("works_dir_for(X, 'emp00002')")
            session.ask("works_dir_for(X, 'emp00003')")
            # Corrupt every cached plan: the prepared text now references
            # a table the backend never had (a permanent failure).  The
            # next ask must use a THIRD constant so the result cache
            # cannot answer without executing the corrupted plan.
            for entry in session.plans._entries.values():
                for plan in entry.variants.values():
                    object.__setattr__(
                        plan, "sql_text", "SELECT nam FROM vanished_table"
                    )
            answers = session.ask("works_dir_for(X, 'emp00004')")
            assert answer_set(answers) == expected
            resilience = session.stats()["resilience"]
            assert resilience["plan_invalidations"] >= 1
            # The cold recompile re-stored a working plan: the next warm
            # ask executes without another invalidation.
            before = resilience["plan_invalidations"]
            session.ask("works_dir_for(X, 'emp00004')")
            assert (
                session.stats()["resilience"]["plan_invalidations"] == before
            )
        finally:
            session.close()

    def test_recursive_ladder_steps_down_to_memory(self):
        session = make_session()
        try:
            expected = answer_set(session.ask("works_for(X, 'emp00001')"))
            closure = session.closure_for("works_for")
            original = closure.solve

            def failing_upper_rungs(
                low=None, high=None, strategy="auto", max_levels=64
            ):
                if strategy in ("plan", "auto"):
                    raise TransientBackendError("substrate rung down")
                return original(
                    low=low, high=high, strategy=strategy, max_levels=max_levels
                )

            closure.solve = failing_upper_rungs
            degraded = session.ask("works_for(X, 'emp00001')")
            assert answer_set(degraded) == expected
            assert session.stats()["resilience"]["degraded_answers"] >= 1
        finally:
            session.close()

    def test_memory_strategy_matches_other_rungs(self):
        session = make_session()
        try:
            memory = session.solve_recursive(
                "works_for", high="emp00001", strategy="memory"
            )
            cte = session.solve_recursive(
                "works_for", high="emp00001", strategy="cte"
            )
            frontier = session.solve_recursive(
                "works_for", high="emp00001", strategy="auto"
            )
            assert memory.pairs == cte.pairs == frontier.pairs
            assert memory.stats.strategy == "memory"
            upward = session.solve_recursive(
                "works_for", low="emp00004", strategy="memory"
            )
            assert upward.pairs == session.solve_recursive(
                "works_for", low="emp00004", strategy="cte"
            ).pairs
        finally:
            session.close()

    def test_batch_failure_degrades_to_serial(self):
        session = make_session()
        try:
            goals = [
                "works_dir_for(X, 'emp00002')",
                "works_dir_for(X, 'emp00003')",
                "works_dir_for(X, 'emp00002')",
            ]
            expected = [answer_set(session.ask(goal)) for goal in goals]
            original = session._ask_group

            def failing_group(*args, **kwargs):
                raise TransientBackendError("batched statement failed")

            session._ask_group = failing_group
            try:
                batched = session.ask_many(goals)
            finally:
                session._ask_group = original
            assert [answer_set(a) for a in batched] == expected
            assert session.stats()["resilience"]["degraded_answers"] >= 1
        finally:
            session.close()

    def test_stats_exposes_resilience_block(self):
        session = make_session()
        try:
            resilience = session.stats()["resilience"]
            for counter in (
                "retries",
                "backoff_seconds",
                "breaker_opens",
                "degraded_answers",
                "plan_invalidations",
                "deadline_exceeded",
                "poisoned_retired",
                "pool_timeouts",
                "quarantines",
                "heals",
                "torn_detected",
                "ask_retries",
                "faults_injected",
            ):
                assert counter in resilience
            assert resilience["breakers"] == {
                "read": "closed",
                "write": "closed",
            }
        finally:
            session.close()


# -- quarantine and self-healing views -----------------------------------------


class TestQuarantineAndHealing:
    def test_failed_delta_quarantines_then_heals_at_next_write(self):
        schedule = FaultSchedule([FaultEvent(at=0, kind="delta_fail")])
        session = make_session(schedule=schedule)
        try:
            view = session.materialize.view(
                "works_dir_for(X, Y)", storage="backend"
            )
            session.ask("works_dir_for(X, Y)")
            # The first maintained delta draws the fault mid-transaction:
            # the backend rolls the whole delta back, the view is pulled
            # from serving, and the same write event heals it (refresh).
            session.assert_fact("empl", 901, "emp00901", 10000, 1)
            stats = session.materialize.stats
            assert stats.quarantines >= 1
            assert stats.heals >= 1
            assert not view.quarantined
            assert view.verify_generation()
            answers = session.ask("works_dir_for(X, Y)")
            assert {"emp00901"} <= {a["X"] for a in answers}
        finally:
            session.close()

    def test_quarantined_view_serves_by_recompute_until_healed(self):
        session = make_session()
        try:
            view = session.materialize.view(
                "works_dir_for(X, Y)", storage="backend"
            )
            failures = {"remaining": 3}
            original_refresh = view.refresh
            original_delta = view.apply_delta

            def failing_delta(delta):
                raise TransientBackendError("maintenance substrate down")

            def flaky_refresh():
                if failures["remaining"] > 0:
                    failures["remaining"] -= 1
                    raise TransientBackendError("heal blocked")
                return original_refresh()

            view.apply_delta = failing_delta
            view.refresh = flaky_refresh
            session.assert_fact("empl", 902, "emp00902", 12000, 1)
            assert view.quarantined  # delta failed, heal attempts blocked
            # Serving continues — a cold recompute answers, correctly.
            answers = session.ask("works_dir_for(X, Y)")
            assert {"emp00902"} <= {a["X"] for a in answers}
            assert view.quarantined  # recompute service did not fake a heal
            # Restore maintenance and force the heal explicitly.
            view.apply_delta = original_delta
            failures["remaining"] = 0
            assert session.heal_materialized() == 0
            assert not view.quarantined
            healed = session.ask("works_dir_for(X, Y)")
            assert answer_set(healed) == answer_set(answers)
            resilience = session.stats()["resilience"]
            assert resilience["quarantines"] >= 1
            assert resilience["heals"] >= 1
        finally:
            session.close()

    def test_torn_generation_stamp_is_detected(self):
        session = make_session()
        try:
            view = session.materialize.view(
                "works_dir_for(X, Y)", storage="backend"
            )
            assert view.verify_generation()
            database = session.database
            # Simulate a torn maintenance round: the backend stamp moved
            # without the in-memory generation following.

            def bump_stamp():
                with database._mutate():
                    database._connection.execute(
                        f"UPDATE {ExternalDatabase.GENERATION_TABLE} "
                        f"SET generation = generation + 7 "
                        f"WHERE view_table = ?",
                        (view.backend_table,),
                    )
                    database._commit()

            database._run_write("bump stamp", bump_stamp)
            assert not view.verify_generation()

            def failing_delta(delta):
                raise TransientBackendError("maintenance substrate down")

            view.apply_delta = failing_delta
            session.assert_fact("empl", 903, "emp00903", 13000, 1)
            stats = session.materialize.stats
            assert stats.torn_detected >= 1
            assert session.stats()["resilience"]["torn_detected"] >= 1
            # Healing re-stamps: generations align again.
            del view.apply_delta  # restore the class method
            assert session.heal_materialized() == 0
            assert view.verify_generation()
        finally:
            session.close()

    def test_counts_match_backend_after_failed_delta(self):
        schedule = FaultSchedule([FaultEvent(at=1, kind="delta_fail")])
        session = make_session(schedule=schedule)
        try:
            view = session.materialize.view(
                "works_dir_for(X, Y)", storage="backend"
            )
            session.assert_fact("empl", 904, "emp00904", 14000, 1)
            session.assert_fact("empl", 905, "emp00905", 15000, 2)
            # Whatever row of whichever delta drew the fault, the failed
            # transaction rolled back atomically and healing refreshed:
            # memory counts and backend rows must agree exactly.
            backend_rows = set(
                session.database.fetch_materialized(view.backend_table)
            )
            memory_rows = {
                row for row, count in view.counts.items() if count > 0
            }
            assert memory_rows == backend_rows
            assert view.verify_generation()
            assert not view.quarantined
        finally:
            session.close()


# -- randomized fault-schedule differential (satellite: Hypothesis) ------------


def run_workload(session):
    """The fixed differential workload: every serving surface, in order."""
    out = []
    session.materialize.view("works_dir_for(X, Y)", storage="backend")
    out.append(answer_set(session.ask("works_dir_for(X, Y)")))
    out.append(answer_set(session.ask("works_dir_for(X, 'emp00001')")))
    session.assert_fact("empl", 901, "emp00901", 10000, 1)
    out.append(answer_set(session.ask("works_dir_for(X, Y)")))
    for answers in session.ask_many(
        [
            "works_dir_for(X, 'emp00001')",
            "works_dir_for(X, 'emp00002')",
            "works_dir_for(X, 'emp00003')",
            "works_dir_for(X, 'emp00002')",
        ]
    ):
        out.append(answer_set(answers))
    out.append(answer_set(session.ask("works_for(X, 'emp00001')")))
    session.retract_fact("empl", 901, "emp00901", 10000, 1)
    out.append(answer_set(session.ask("works_dir_for(X, Y)")))
    return out


def drain_schedule(session, schedule, limit=80):
    """Advance every fault class's ordinal until the schedule is dry.

    Asserts advance the delta and write ordinals; asks advance reads;
    net-zero direct backend writes advance the write ordinal without
    changing visible data.  Bounded so a mis-scheduled event fails the
    test instead of hanging it.
    """
    step = 0
    while not schedule.exhausted and step < limit:
        eno = 9500 + step
        session.assert_fact("empl", eno, f"emp{eno:05d}", 20000 + step, 1)
        session.ask("works_dir_for(X, 'emp00001')")
        session.database.insert_rows(
            "empl", [(eno + 400, f"tmp{eno}", 20000, 1)]
        )
        session.database.delete_row(
            "empl", (eno + 400, f"tmp{eno}", 20000, 1)
        )
        step += 1
    return schedule.exhausted


_BASELINE_OUTPUTS = None


def baseline_outputs():
    global _BASELINE_OUTPUTS
    if _BASELINE_OUTPUTS is None:
        session = make_session()
        try:
            _BASELINE_OUTPUTS = run_workload(session)
        finally:
            session.close()
    return _BASELINE_OUTPUTS


def assert_differential_holds(schedule):
    expected = baseline_outputs()
    session = make_session(schedule=schedule)
    try:
        observed = run_workload(session)
        assert observed == expected
        assert drain_schedule(session, schedule), (
            f"schedule never drained: {schedule.remaining()} firings left"
        )
        assert session.heal_materialized() == 0
        for view in session.materialize.quarantined_views():
            raise AssertionError(f"{view.name} still quarantined")
    finally:
        session.close()


class TestFaultDifferential:
    @pytest.mark.smoke
    def test_fixed_seed_differential(self):
        schedule = FaultSchedule.random(seed=2026, events=8, horizon=40)
        assert_differential_holds(schedule)
        assert schedule.injected > 0

    def test_heavy_schedule_differential(self):
        events = [
            FaultEvent(at=0, kind="locked", burst=3),
            FaultEvent(at=3, kind="io_error"),
            FaultEvent(at=5, kind="poison"),
            FaultEvent(at=8, kind="latency"),
            FaultEvent(at=0, kind="write_locked"),
            FaultEvent(at=0, kind="delta_fail"),
            FaultEvent(at=2, kind="delta_fail"),
        ]
        assert_differential_holds(FaultSchedule(events, latency=0.001))

    @given(
        events=st.lists(
            st.builds(
                FaultEvent,
                at=st.integers(min_value=0, max_value=25),
                kind=st.sampled_from(FAULT_KINDS),
                burst=st.integers(min_value=1, max_value=3),
            ),
            min_size=1,
            max_size=5,
        )
    )
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_any_eventually_healing_schedule_is_transparent(self, events):
        assert_differential_holds(FaultSchedule(events, latency=0.0005))
