"""E8 — Section 7 / [Jarke 84]: multiple-query common subexpression isolation.

Claim: recognizing shared subexpressions across a query batch reduces the
number of DBMS queries (and total work) versus independent execution,
with identical answers.
"""

from conftest import make_session
from repro.coupling import BatchExecutor
from repro.prolog import var


def _threshold_batch(session, thresholds):
    return [
        session.metaevaluator.metaevaluate(
            f"empl(E, N, S, D), less(S, {t})", targets=[var("N")]
        )
        for t in thresholds
    ]


def test_e8_shared_vs_unshared_queries(medium_session, benchmark):
    session, org = medium_session
    thresholds = list(range(20000, 90000, 5000))
    predicates = _threshold_batch(session, thresholds)

    shared = BatchExecutor(session.database, session.constraints, share=True)
    unshared = BatchExecutor(session.database, session.constraints, share=False)

    shared_answers, shared_report = shared.execute(predicates)
    unshared_answers, unshared_report = unshared.execute(predicates)
    for a, b in zip(shared_answers, unshared_answers):
        assert set(a) == set(b)

    print(f"\n[E8] batch of {len(predicates)}: shared issued "
          f"{shared_report.queries_issued} queries, unshared issued "
          f"{unshared_report.queries_issued} (saved "
          f"{shared_report.queries_saved})")
    assert shared_report.queries_issued < unshared_report.queries_issued
    assert shared_report.queries_issued == 1  # one widened core scan

    benchmark(lambda: shared.execute(predicates))


def test_e8_unshared_baseline(medium_session, benchmark):
    session, org = medium_session
    thresholds = list(range(20000, 90000, 5000))
    predicates = _threshold_batch(session, thresholds)
    unshared = BatchExecutor(session.database, session.constraints, share=False)
    benchmark(lambda: unshared.execute(predicates))


def test_e8_duplicate_heavy_batch(medium_session, benchmark):
    """Repeated identical queries (a common expert-system pattern)."""
    session, org = medium_session
    boss = org.root_manager_name()
    predicates = [
        session.metaevaluator.metaevaluate(
            f"works_dir_for(X, {boss})", targets=[var("X")]
        )
        for _ in range(10)
    ]
    executor = BatchExecutor(session.database, session.constraints)
    answers, report = benchmark(lambda: executor.execute(predicates))
    print(f"\n[E8] 10 identical queries -> {report.queries_issued} executed, "
          f"{report.duplicates_shared} shared")
    assert report.queries_issued == 1
    assert report.duplicates_shared == 9
