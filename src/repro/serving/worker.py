"""The worker-process side of the scale-out serving tier.

``worker_main`` is the process entry point: it builds a private
:class:`~repro.coupling.PrologDbSession` over its *own* connections to
the shared file-backed WAL store, consults the shipped program
snapshot, warms the plan cache, and then serves requests from its
queue until told to stop.

Everything a worker sends back is plain picklable data — answer lists,
stats dicts, ``(error class name, message, detail)`` triples — never
live objects, so the protocol survives any start method and any
exception type.

Request messages (owner → worker, one queue per worker)::

    ("ask",      req_id, goal_text,  max_solutions, remaining, floor)
    ("ask_many", req_id, goal_texts, max_solutions, remaining, floor)
    ("stats",    req_id)
    ("traces",   req_id)
    ("generation", generation)            # data-only advance (WAL carries it)
    ("refresh",  generation, program)     # program change: rebuild + re-warm
    ("warm",     goal_texts)
    ("stop",)

``remaining`` is the deadline budget serialized as *seconds left*, not
an absolute monotonic stamp — monotonic clocks are per process, so an
absolute ``until`` would be meaningless (or catastrophically wrong)
on the worker's clock.  Response messages (worker → owner, shared
queue) are ``(req_id, worker_index, generation, status, payload)``.
"""

from __future__ import annotations

from ..coupling import PrologDbSession
from ..coupling.global_opt import CachePolicy
from ..dbms.sqlite_backend import ExternalDatabase
from ..errors import DeadlineExceeded, ReproError
from ..observe import Tracer


def _reload_program(session: PrologDbSession, program: str) -> None:
    """Replace the worker's in-memory program with a shipped snapshot.

    Retract-all-then-consult inside one write bracket: the knowledge
    base generation moves, so the plan cache drops every compiled plan
    on its next sync — exactly the coherence the generation stamp
    promises (a worker never answers a new-generation request from an
    old-generation plan).
    """
    with session.kb.lock.write():
        for indicator in list(session.kb.indicators()):
            session.kb.retract_all(indicator)
    session.consult(program)


def worker_main(
    index: int,
    target: str,
    schema,
    constraints,
    program: str,
    generation: int,
    warm_goals,
    requests,
    responses,
    ready,
    slow_query_seconds: float = 0.25,
) -> None:
    """Serve asks from ``requests`` until a ``("stop",)`` message.

    The worker's database handle is its own (fresh connections in this
    process — the pool's PID guard would refuse inherited ones anyway),
    its result cache is disabled (a cached row set cannot observe
    another process's committed writes, so caching here would trade
    correctness for nothing), and its tracer is stamped with a worker
    id so exported traces from a fleet stay attributable.
    """
    label = f"worker-{index}"
    database = ExternalDatabase(schema, path=target, constraints=constraints)
    session = PrologDbSession(
        schema=schema,
        constraints=constraints,
        database=database,
        cache_policy=CachePolicy(enabled=False),
        tracer=Tracer(
            enabled=True,
            slow_query_seconds=slow_query_seconds,
            worker_id=label,
        ),
    )
    warm_goals = list(warm_goals)
    try:
        if program:
            session.consult(program)
        session.warm(warm_goals)
        ready.set()
        while True:
            message = requests.get()
            kind = message[0]
            if kind == "stop":
                break
            if kind == "generation":
                generation = message[1]
                continue
            if kind == "refresh":
                generation = message[1]
                _reload_program(session, message[2])
                session.warm(warm_goals)
                continue
            if kind == "warm":
                warm_goals = list(message[1])
                session.warm(warm_goals)
                continue
            req_id = message[1]
            try:
                if kind == "ask":
                    _, _, goal, max_solutions, remaining, floor = message
                    _check(generation, floor, remaining, label)
                    payload = session.ask(
                        goal, max_solutions, deadline=remaining
                    )
                elif kind == "ask_many":
                    _, _, goals, max_solutions, remaining, floor = message
                    _check(generation, floor, remaining, label)
                    payload = session.ask_many(
                        goals, max_solutions, deadline=remaining
                    )
                elif kind == "stats":
                    payload = {
                        "worker": label,
                        "stats": session.stats(),
                        "histograms_raw": session.tracer.histogram_export(),
                    }
                elif kind == "traces":
                    payload = session.traces()
                else:
                    raise ReproError(f"unknown worker request {kind!r}")
            except DeadlineExceeded as error:
                detail = dict(error.partial)
                detail["worker"] = label
                responses.send(
                    (req_id, index, generation, "error",
                     ("DeadlineExceeded", str(error), detail))
                )
            except Exception as error:  # noqa: BLE001 - serialized to the owner
                responses.send(
                    (req_id, index, generation, "error",
                     (type(error).__name__, str(error), None))
                )
            else:
                responses.send((req_id, index, generation, "ok", payload))
    except (EOFError, OSError, KeyboardInterrupt):
        pass  # queues torn down under us: the owner is shutting down
    finally:
        try:
            responses.close()
        except OSError:
            pass
        try:
            session.close()
        except Exception:  # noqa: BLE001 - nothing to report to anymore
            pass


def _check(
    generation: int, floor: int, remaining, label: str
) -> None:
    """Worker-side admission checks for one request.

    A request stamped with a generation floor above the worker's
    snapshot would be answered from stale state — impossible under the
    tier's publish-before-dispatch ordering, so treat it as the
    protocol violation it is.  A deadline that arrived already spent
    raises ``DeadlineExceeded`` *here*, worker-side, so the caller's
    budget semantics hold across the process boundary even when the
    queue wait consumed the whole budget.
    """
    if floor is not None and floor > generation:
        raise ReproError(
            f"stale snapshot: request floor {floor} > generation {generation}"
        )
    if remaining is not None and remaining <= 0.0:
        raise DeadlineExceeded(
            "deadline budget exhausted before worker execution",
            {"remaining": remaining, "worker": label},
        )
