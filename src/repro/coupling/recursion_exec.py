"""Recursive database calls through intermediate relations (paper §7).

Example 7-1 contrasts two evaluation schemes for the recursive
``works_for`` view:

* **naive expansion** — issue a sequence of increasingly complex
  conjunctive queries (one per recursion level), each re-executing all the
  work of the previous one;
* **setrel / intermediate relations** — store each level's result in an
  intermediate relation and issue one *fixed-shape* query per level that
  joins the base view with ``intermediate``.

The paper further observes that the intermediate-relation scheme is
direction-sensitive: iterating *top-down* (frontier on the boss side) is
cheap for ``works_for(People, smiley)`` but generates "much (and
unnecessarily!) larger" intermediates for ``works_for(jones, Superior)``,
where the *bottom-up* rewriting wins.  :class:`TransitiveClosure` exposes
all three strategies plus an ``auto`` mode that picks the frontier from
the bound argument — the optimization the paper leaves as an open
question, solved here with the bound-argument heuristic.

Beyond the paper's repertoire, the executor can push the *entire*
fixpoint into the backend as one prepared ``WITH RECURSIVE`` statement
(``strategy="cte"``): no intermediate relation, no per-level Python
round-trip, no commits.  On forest-shaped data it goes one further:
``strategy="interval"`` answers the probe from a pre/post nested-set
labeling (:class:`~repro.materialize.intervals.IntervalIndex`) — one
indexed range predicate, no recursion in either Python *or* the backend.
``strategy="plan"`` chooses between the interval probe, the CTE
pushdown, and the prepared frontier loop from the backend's relation
statistics (:meth:`TransitiveClosure.plan`); maintained views keep their
:class:`IncrementalClosure` path in the materialize subsystem.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from ..dbcl.predicate import DbclPredicate
from ..errors import CouplingError, IntervalUnavailable, RecursionLimitExceeded
from ..metaevaluate.recursion import (
    expansion_at_level,
    is_linear_recursive,
    recursion_signature,
)
from ..metaevaluate.translator import Metaevaluator
from ..optimize.pipeline import SimplifyOptions, simplify
from ..prolog.knowledge_base import KnowledgeBase
from ..prolog.terms import (
    Atom,
    Struct,
    Term,
    Variable,
    conjoin,
    struct,
    var,
)
from ..schema.catalog import DatabaseSchema, Relation
from ..schema.constraints import ConstraintSet
from ..sql.translate import closure_cte, translate
from .global_opt import CachePolicy
from ..dbms.sqlite_backend import ExternalDatabase

INTERMEDIATE = "intermediate"

#: Below this estimated edge cardinality the Python frontier loop's
#: per-level overhead is negligible and its per-level statistics are
#: worth keeping; at or above it the planner pushes the fixpoint down as
#: one ``WITH RECURSIVE`` statement.
CTE_MIN_EDGE_ROWS = 16


def find_base_clause(
    kb: KnowledgeBase, view: tuple[str, int]
) -> tuple[Struct, list[Term]]:
    """The single non-recursive clause of a linear recursive view.

    Returns ``(head, body_goals)``.  Shared by the closure executors and
    the materialized-view subsystem (which maintains the base clause's
    *edge view* incrementally and folds edge deltas into the closure).
    """
    base_clauses = [
        clause
        for clause in kb.all_clauses(view)
        if not any(
            isinstance(g, Struct) and g.indicator == view
            for g in clause.body_goals()
        )
    ]
    if len(base_clauses) != 1:
        raise CouplingError(
            f"{view[0]}/2 needs exactly one non-recursive clause, "
            f"found {len(base_clauses)}"
        )
    clause = base_clauses[0]
    head = clause.head
    if not isinstance(head, Struct) or not all(
        isinstance(a, Variable) for a in head.args
    ):
        raise CouplingError("base clause head must use distinct variables")
    return head, clause.body_goals()


def schema_with_intermediate(
    schema: DatabaseSchema, attribute: str, name: str = INTERMEDIATE
) -> DatabaseSchema:
    """The catalog extended with a unary ``intermediate`` relation.

    The intermediate's column *shares* the given base attribute, so a
    symbol appearing in both a base row and the intermediate row becomes a
    plain equijoin — exactly the ``v3.nam = v4.nam`` of the paper's
    fixed-shape query.
    """
    relations = list(schema.relations.values()) + [Relation(name, (attribute,))]
    types = {a.name: a.type for a in schema.attributes}
    return DatabaseSchema(schema.name, relations, attribute_types=types)


def constraints_for(
    constraints: ConstraintSet, schema: DatabaseSchema
) -> ConstraintSet:
    """Rebind a constraint set to an extended catalog."""
    return ConstraintSet(
        schema,
        value_bounds=constraints.value_bounds,
        funcdeps=constraints.funcdeps,
        refints=constraints.refints,
    )


@dataclass
class RecursionStats:
    """Measurements Experiment E7 reports."""

    strategy: str
    levels: int = 0
    queries_issued: int = 0
    frontier_sizes: list[int] = field(default_factory=list)
    new_answers_per_level: list[int] = field(default_factory=list)
    sql_join_terms_per_level: list[int] = field(default_factory=list)

    @property
    def total_intermediate_tuples(self) -> int:
        return sum(self.frontier_sizes)

    @property
    def max_intermediate_size(self) -> int:
        return max(self.frontier_sizes, default=0)


@dataclass
class RecursionRun:
    """Answer pairs plus the per-level statistics."""

    pairs: set[tuple]
    stats: RecursionStats


@dataclass(frozen=True)
class RecursionPlan:
    """One planning decision: which strategy answers a closure probe.

    ``strategy`` is a :meth:`TransitiveClosure.solve` strategy name;
    ``estimated_edge_rows`` is the statistics service's estimate for the
    edge view's cardinality (None when no statistics were available) and
    ``reason`` says why the planner chose as it did — surfaced so tests
    and operators can audit cost-based decisions.
    """

    strategy: str
    reason: str
    estimated_edge_rows: Optional[int] = None

    def as_dict(self) -> dict:
        """The decision as a plain JSON-serializable record."""
        return {
            "strategy": self.strategy,
            "reason": self.reason,
            "estimated_edge_rows": self.estimated_edge_rows,
        }


@dataclass
class _CteQueries:
    """Prepared ``WITH RECURSIVE`` statements for both directions.

    The query trees are kept for inspection (:meth:`TransitiveClosure.
    cte_queries`); solving binds the seed constant into the pre-rendered
    *texts*, so the SQL is printed exactly once per direction however
    many asks run.  ``batch_texts`` caches the ``IN (VALUES …)``-seeded
    variants the set-oriented serving path executes, keyed by
    ``(direction, batch_size)``.
    """

    descend_sql: object  # seed on the high side, collect the cone below
    ascend_sql: object  # seed on the low side, collect the cone above
    descend_text: str
    ascend_text: str
    edge_sql: object  # the flat edge block both directions share
    #: base-relation names the edge view reads (the planner's stats keys)
    edge_relations: tuple[str, ...]
    batch_texts: dict = field(default_factory=dict)


@dataclass
class _EdgeQueries:
    """Prepared fixed-shape step queries for one direction.

    The query *trees* are kept for inspection (:meth:`TransitiveClosure.
    step_queries`); the loop executes the pre-rendered *texts* so the SQL
    is printed exactly once per direction, however many levels run.
    """

    descend_sql: object  # SELECT (low, high) ... WHERE high IN intermediate
    ascend_sql: object  # SELECT (low, high) ... WHERE low IN intermediate
    descend_text: str  # rendered once; re-executed per level
    ascend_text: str
    database: ExternalDatabase
    low_attribute: str
    high_attribute: str


class TransitiveClosure:
    """Executor for a linear recursive binary view (``works_for`` shaped)."""

    def __init__(
        self,
        kb: KnowledgeBase,
        schema: DatabaseSchema,
        constraints: ConstraintSet,
        database: ExternalDatabase,
        view: tuple[str, int],
        optimize: bool = True,
    ):
        if view[1] != 2:
            raise CouplingError("recursion strategies support binary views only")
        if not is_linear_recursive(kb, view):
            raise CouplingError(
                f"{view[0]}/{view[1]} is not linear recursive; only one "
                "recursive call per clause is supported"
            )
        self.kb = kb
        self.schema = schema
        self.constraints = constraints
        self.database = database
        self.view = view
        self.optimize = optimize
        self._base_head, self._base_body = find_base_clause(kb, view)
        self._edges: Optional[_EdgeQueries] = None
        self._cte: Optional[_CteQueries] = None
        #: Negative cache: the error a failed CTE preparation raised.  A
        #: closure that cannot push down would otherwise re-metaevaluate
        #: (and re-fail) on every planned ask; the session rebuilds
        #: closures whenever the program changes, so caching the failure
        #: for this executor's lifetime is sound.
        self._cte_error: Optional[Exception] = None
        #: The view's interval (nested-set) labeling, built lazily the
        #: first time the planner considers the ``interval`` strategy.
        self._interval = None
        #: The most recent :meth:`plan` decision (inspection/benchmarks).
        self.last_plan: Optional[RecursionPlan] = None
        # The setrel loop mutates one shared intermediate table per view;
        # two concurrent solves of the same closure would interleave
        # frontier swaps.  The session routes recursive asks through the
        # knowledge base's write lock already; this mutex keeps *direct*
        # executor use safe too.
        self._solve_lock = threading.RLock()

    def interval_stats(self) -> Optional[dict]:
        """The interval accelerator's counters, or None before first build.

        Trace spans read this to report demotions alongside the planner's
        strategy decision without forcing the labeling to exist.
        """
        if self._interval is None:
            return None
        return self._interval.stats.snapshot()

    # -- step-query preparation -------------------------------------------------------

    def _prepare_edges(self) -> _EdgeQueries:
        if self._edges is not None:
            return self._edges

        low_var, high_var = self._base_head.args  # type: ignore[misc]
        assert isinstance(low_var, Variable) and isinstance(high_var, Variable)

        # Determine the attribute each end of the edge lives in by
        # metaevaluating the plain edge goal once.
        plain_eval = Metaevaluator(self.schema, self.kb)
        edge_predicate = plain_eval.metaevaluate(
            conjoin(self._base_body),
            name="edge",
            targets=[low_var, high_var],
        )
        low_column = edge_predicate.first_occurrence(
            edge_predicate.targets[0]
        ).column
        high_column = edge_predicate.first_occurrence(
            edge_predicate.targets[1]
        ).column
        low_attribute = self.schema.attribute_names[low_column]
        high_attribute = self.schema.attribute_names[high_column]

        options = SimplifyOptions() if self.optimize else SimplifyOptions.none()

        def build(step_goal: Term, attribute: str) -> object:
            extended = schema_with_intermediate(self.schema, attribute)
            extended_constraints = constraints_for(self.constraints, extended)
            evaluator = Metaevaluator(
                extended,
                self.kb,
                extra_relations={(INTERMEDIATE, 1): INTERMEDIATE},
            )
            predicate = evaluator.metaevaluate(
                step_goal, name="step", targets=[low_var, high_var]
            )
            result = simplify(predicate, extended_constraints, options)
            return translate(result.predicate, distinct=True)

        # The intermediate joins the *frontier* side: the high attribute
        # when descending, the low attribute when ascending.  The two ends
        # may live in different attribute domains (e.g. a bill-of-materials
        # edge between part numbers of different columns).
        descend_goal = conjoin(self._base_body + [struct(INTERMEDIATE, high_var)])
        ascend_goal = conjoin(self._base_body + [struct(INTERMEDIATE, low_var)])
        descend_sql = build(descend_goal, high_attribute)
        ascend_sql = build(ascend_goal, low_attribute)
        self._edges = _EdgeQueries(
            descend_sql=descend_sql,
            ascend_sql=ascend_sql,
            descend_text=self.database.prepare(descend_sql),
            ascend_text=self.database.prepare(ascend_sql),
            database=self.database,
            low_attribute=low_attribute,
            high_attribute=high_attribute,
        )
        return self._edges

    # -- inspection --------------------------------------------------------------------

    def step_queries(self) -> tuple[object, object]:
        """The two prepared fixed-shape step queries (descend, ascend).

        The descend query is the paper's::

            SELECT v3.ename
            FROM empl v1, dept v2, empl v3, intermediate v4
            WHERE (v1.dno=v2.dno) AND (v2.mgr=v3.eno) AND (v3.nam=v4.nam)

        (modulo the paper's ``v3.ename`` typo — the answer column is the
        subordinate's name).  Exposed so callers and benchmarks can verify
        the "same form" claim of Example 7-1.
        """
        edges = self._prepare_edges()
        return edges.descend_sql, edges.ascend_sql

    # -- recursive-CTE pushdown ---------------------------------------------------------

    def _edge_query(self) -> tuple[object, tuple[str, ...]]:
        """The flat edge view compiled to SQL: SELECT (low, high) pairs."""
        low_var, high_var = self._base_head.args  # type: ignore[misc]
        evaluator = Metaevaluator(self.schema, self.kb)
        predicate = evaluator.metaevaluate(
            conjoin(self._base_body),
            name="edge",
            targets=[low_var, high_var],
        )
        options = SimplifyOptions() if self.optimize else SimplifyOptions.none()
        result = simplify(predicate, self.constraints, options)
        if result.is_empty:
            raise CouplingError(
                f"{self.view[0]}/2: the edge view is provably empty"
            )
        relations = tuple(sorted({row.tag for row in result.predicate.rows}))
        return translate(result.predicate, distinct=True), relations

    def _cte_name(self) -> str:
        """A CTE name that cannot shadow any base relation in the FROM list."""
        name = "reach"
        while self.schema.has_relation(name):
            name = "cte_" + name
        return name

    def _prepare_cte(self) -> _CteQueries:
        """Compile both directions' ``WITH RECURSIVE`` statements once.

        Failures are cached too: preparation re-raises the first error
        without re-running metaevaluation, so a non-pushdownable view
        costs one failed compile, not one per ask.
        """
        with self._solve_lock:
            if self._cte is not None:
                return self._cte
            if self._cte_error is not None:
                raise self._cte_error
            try:
                return self._prepare_cte_uncached()
            except Exception as error:
                self._cte_error = error
                raise

    def _prepare_cte_uncached(self) -> _CteQueries:
        edge_sql, edge_relations = self._edge_query()
        name = self._cte_name()
        # Descending collects the cone *below* a bound high endpoint:
        # the frontier matches the high column (index 1 of the edge
        # SELECT list), derived rows contribute their low column.
        descend = closure_cte(edge_sql, frontier=1, result=0, name=name)
        ascend = closure_cte(edge_sql, frontier=0, result=1, name=name)
        self._cte = _CteQueries(
            descend_sql=descend,
            ascend_sql=ascend,
            descend_text=self.database.prepare(descend),
            ascend_text=self.database.prepare(ascend),
            edge_sql=edge_sql,
            edge_relations=edge_relations,
        )
        return self._cte

    def cte_queries(self) -> tuple[object, object]:
        """The two prepared ``WITH RECURSIVE`` trees (descend, ascend)."""
        cte = self._prepare_cte()
        return cte.descend_sql, cte.ascend_sql

    def batch_cte_text(self, bound: str, batch_size: int) -> str:
        """Prepared batch-seeded CTE text for ``batch_size`` distinct seeds.

        ``bound`` names the bound argument side: ``"high"`` descends (the
        ``works_for(X, boss)`` shape), ``"low"`` ascends.  The statement
        seeds the closure through one ``IN (VALUES …)`` membership and
        threads each row's originating seed through a ``root`` column, so
        one execution answers a whole same-shape ``ask_many`` group; rows
        come back as ``(root, node)``.  Texts are cached per (direction,
        batch size) — the set-oriented serving path re-executes them with
        rotating seed batches at zero re-prints.
        """
        if bound not in ("low", "high"):
            raise CouplingError(f"bound side must be 'low' or 'high', got {bound!r}")
        cte = self._prepare_cte()
        with self._solve_lock:
            key = (bound, batch_size)
            text = cte.batch_texts.get(key)
            if text is None:
                frontier, result = (1, 0) if bound == "high" else (0, 1)
                variant = closure_cte(
                    cte.edge_sql,
                    frontier=frontier,
                    result=result,
                    name=self._cte_name(),
                    batch_size=batch_size,
                )
                text = self.database.prepare(variant)
                cte.batch_texts[key] = text
            return text

    # -- interval (nested-set) acceleration ----------------------------------------------

    def interval_index(self):
        """The view's :class:`~repro.materialize.intervals.IntervalIndex`.

        Built lazily over the same compiled edge view the CTE pushdown
        uses (so interval availability implies CTE availability — the
        demotion target always exists).  Imported locally: the
        materialize package reaches back into this module.
        """
        with self._solve_lock:
            if self._interval is None:
                from ..materialize.intervals import IntervalIndex

                cte = self._prepare_cte()
                self._interval = IntervalIndex(
                    self.database,
                    self.view[0],
                    cte.edge_sql,
                    cte.edge_relations,
                )
            return self._interval

    def _solve_interval(
        self, low: Optional[str], high: Optional[str]
    ) -> RecursionRun:
        """One indexed range probe answers the whole closure question.

        No fixpoint anywhere: descendants are the rows whose intervals
        nest inside the seed's (a single range scan over the composite
        ``(pre, post)`` index), ancestors the containing intervals.
        Raises :class:`~repro.errors.IntervalUnavailable` when the data
        is not forest-shaped — callers asking explicitly see it; the
        planner never routes here in that state.
        """
        index = self.interval_index()
        index.ensure_fresh()
        stats = RecursionStats(strategy="interval")
        if high is not None:
            rows = self.database.execute_prepared(
                index.descend_text, (high, high)
            )
        else:
            assert low is not None
            rows = self.database.execute_prepared(
                index.ascend_text, (low, low)
            )
        stats.queries_issued = 1
        nodes = {row[0] for row in rows}
        stats.new_answers_per_level.append(len(nodes))
        if high is not None:
            pairs = {(node, high) for node in nodes}
        else:
            pairs = {(low, node) for node in nodes}
        return RecursionRun(pairs=pairs, stats=stats)

    def batch_probe_text(self, bound: str, batch_size: int) -> str:
        """The best prepared batch statement for a same-shape ask group.

        Prefers the interval batch probe (seeds bound once through a
        ``VALUES`` CTE, rows back as ``(root, node)`` exactly like the
        batch closure CTE) when the labeling is fresh and servable;
        falls back to :meth:`batch_cte_text` otherwise.
        """
        try:
            index = self.interval_index()
            index.ensure_fresh()
            return index.batch_text(bound, batch_size)
        except Exception:  # noqa: BLE001 - demoted/failed: CTE form
            return self.batch_cte_text(bound, batch_size)

    def _solve_cte(
        self, low: Optional[str], high: Optional[str]
    ) -> RecursionRun:
        """One prepared ``WITH RECURSIVE`` execution answers the probe.

        A single SELECT-shaped statement: no intermediate relation, no
        per-level swap, no commits at all — the DBMS iterates the
        fixpoint internally and ``UNION`` deduplication terminates it on
        cyclic data, mirroring the frontier loop's seen-set.
        """
        cte = self._prepare_cte()
        stats = RecursionStats(strategy="cte")
        if high is not None:
            text, seed = cte.descend_text, high
        else:
            assert low is not None
            text, seed = cte.ascend_text, low
        rows = self.database.execute_prepared(text, (seed,))
        stats.queries_issued = 1
        nodes = {row[0] for row in rows}
        stats.new_answers_per_level.append(len(nodes))
        if high is not None:
            pairs = {(node, high) for node in nodes}
        else:
            pairs = {(low, node) for node in nodes}
        return RecursionRun(pairs=pairs, stats=stats)

    # -- cost-based strategy choice -----------------------------------------------------

    def plan(self, low: Optional[str], high: Optional[str]) -> RecursionPlan:
        """Choose a strategy for ``view(low, high)`` from relation statistics.

        The decision tree (documented in the README's Pushdown section):

        * no recursive-CTE support (preparation failed — e.g. a dialect
          without ``WITH RECURSIVE``) → the prepared frontier loop on the
          bound side;
        * edge view estimated below :data:`CTE_MIN_EDGE_ROWS` rows → the
          frontier loop (per-level Python overhead is noise at that size,
          and its per-level statistics stay observable);
        * forest-shaped data with a fresh (or freshenable) interval
          labeling → the interval probe: one indexed range predicate,
          no recursion at all, with the labeling's exact depth/fanout
          recorded in the reason;
        * otherwise → CTE pushdown: one statement, zero per-level
          round-trips and commits (also the landing rung when the
          labeling demotes — non-tree edges, failed relabels).

        Maintained views never reach this planner: the materialize
        subsystem answers them from its :class:`IncrementalClosure`
        before the session routes a goal here (PR 3 semantics untouched).
        """
        frontier = "bottomup" if low is not None else "topdown"
        try:
            cte = self._prepare_cte()
        except Exception as error:  # noqa: BLE001 - any failure means no pushdown
            decision = RecursionPlan(
                strategy=frontier,
                reason=f"no CTE support ({error}); prepared frontier loop",
            )
            self.last_plan = decision
            return decision
        estimate: Optional[int] = None
        stats_of = getattr(self.database, "relation_statistics", None)
        if stats_of is not None:
            try:
                # A key/foreign-key edge join cannot exceed the smallest
                # participating relation by much; min() is the standard
                # conservative estimate without join histograms.
                estimate = min(
                    stats_of(relation).row_count
                    for relation in cte.edge_relations
                )
            except Exception:  # noqa: BLE001 - statistics are advisory
                estimate = None
        if estimate is not None and estimate < CTE_MIN_EDGE_ROWS:
            decision = RecursionPlan(
                strategy=frontier,
                reason=(
                    f"edge view ~{estimate} rows < {CTE_MIN_EDGE_ROWS}: "
                    "frontier loop overhead is negligible"
                ),
                estimated_edge_rows=estimate,
            )
            self.last_plan = decision
            return decision
        unavailable: Optional[str] = None
        try:
            index = self.interval_index()
            index.ensure_fresh()
        except IntervalUnavailable as error:
            unavailable = str(error)
        except Exception as error:  # noqa: BLE001 - failed labeling → CTE rung
            unavailable = f"labeling failed: {error}"
        if unavailable is None:
            decision = RecursionPlan(
                strategy="interval",
                reason=(
                    f"interval probe: labeled forest ({index.describe()}); "
                    "reachability is one indexed range predicate"
                    + (
                        f" (edge view ~{estimate} rows)"
                        if estimate is not None
                        else ""
                    )
                ),
                estimated_edge_rows=estimate,
            )
        else:
            decision = RecursionPlan(
                strategy="cte",
                reason=(
                    "pushdown: single WITH RECURSIVE statement, zero "
                    "per-level round-trips"
                    + (
                        f" (edge view ~{estimate} rows)"
                        if estimate is not None
                        else " (no statistics; pushdown is the default)"
                    )
                    + f"; interval unavailable ({unavailable})"
                ),
                estimated_edge_rows=estimate,
            )
        self.last_plan = decision
        return decision

    # -- strategies --------------------------------------------------------------------

    def solve(
        self,
        low: Optional[str] = None,
        high: Optional[str] = None,
        strategy: str = "auto",
        max_levels: int = 64,
    ) -> RecursionRun:
        """Answer ``view(low, high)`` with exactly one side bound.

        ``strategy``:

        * ``plan`` — cost-based: consult :meth:`plan` (relation
          statistics) and run whichever of ``interval`` / ``cte`` /
          frontier it picks;
        * ``interval`` — answer from the nested-set labeling: one
          indexed range probe, no fixpoint anywhere (raises
          :class:`~repro.errors.IntervalUnavailable` on non-tree data);
        * ``cte`` — push the whole fixpoint down as one prepared
          ``WITH RECURSIVE`` statement (zero per-level round-trips);
        * ``auto`` — frontier starts at the bound argument (efficient);
        * ``topdown`` — frontier on the *high* side regardless (the paper's
          ``setrel(intermediate(Boss))`` program);
        * ``bottomup`` — frontier on the *low* side regardless (the
          rewritten view at the end of Example 7-1);
        * ``naive`` — the sequence of growing conjunctive queries;
        * ``memory`` — fetch the flat edge view once and close over it
          client-side (the degradation ladder's last rung: no prepared
          texts, no setrel DDL, no ``WITH RECURSIVE`` required).
        """
        if (low is None) == (high is None):
            raise CouplingError("exactly one of low/high must be bound")
        with self._solve_lock:
            if strategy == "plan":
                strategy = self.plan(low, high).strategy
            if strategy == "interval":
                return self._solve_interval(low, high)
            if strategy == "cte":
                return self._solve_cte(low, high)
            if strategy == "memory":
                return self._solve_memory(low, high)
            if strategy == "naive":
                return self._solve_naive(low, high, max_levels)
            if strategy == "auto":
                strategy = "bottomup" if low is not None else "topdown"
            if strategy == "topdown":
                return self._solve_frontier(
                    low, high, frontier_side="high", max_levels=max_levels
                )
            if strategy == "bottomup":
                return self._solve_frontier(
                    low, high, frontier_side="low", max_levels=max_levels
                )
            raise CouplingError(f"unknown strategy {strategy!r}")

    # The frontier executor: iterate the fixed-shape step query, replacing
    # the intermediate relation's contents each round (the setrel scheme).
    def _solve_frontier(
        self,
        low: Optional[str],
        high: Optional[str],
        frontier_side: str,
        max_levels: int,
    ) -> RecursionRun:
        edges = self._prepare_edges()
        stats = RecursionStats(
            strategy=f"setrel-{'topdown' if frontier_side == 'high' else 'bottomup'}"
        )
        aligned = (frontier_side == "high") == (high is not None)

        if frontier_side == "high":
            frontier_attribute = edges.high_attribute
            seed = (
                {high}
                if high is not None
                else self._domain_values(frontier_attribute)
            )
            step_text = edges.descend_text
        else:
            frontier_attribute = edges.low_attribute
            seed = (
                {low}
                if low is not None
                else self._domain_values(frontier_attribute)
            )
            step_text = edges.ascend_text
        # The intermediate relation's column matches the frontier side.
        self.database.create_intermediate(INTERMEDIATE, [frontier_attribute])

        seen: set[str] = set()
        frontier = set(seed)
        collected_edges: set[tuple[str, str]] = set()
        previous_frontier: Optional[set[str]] = None
        while frontier and stats.levels < max_levels:
            stats.levels += 1
            stats.frontier_sizes.append(len(frontier))
            # One transaction per frontier level: the intermediate swap
            # (delete + insert) and the prepared step query commit once,
            # and the step SQL is never re-printed or re-planned.
            with self.database.transaction():
                self.database.set_intermediate_rows(
                    INTERMEDIATE, [(value,) for value in frontier]
                )
                rows = self.database.execute_prepared(step_text)
            stats.queries_issued += 1
            seen |= frontier
            edge_set = {(r[0], r[1]) for r in rows}
            new_edges = edge_set - collected_edges
            stats.new_answers_per_level.append(len(new_edges))
            collected_edges |= new_edges
            step_values = (
                {l for l, _h in edge_set}
                if frontier_side == "high"
                else {h for _l, h in edge_set}
            )
            if aligned:
                # Semi-naive: only genuinely new values continue (cycle-safe).
                frontier = step_values - seen
            else:
                # The paper's program iterates the full image each round
                # ("all employee names, then all names of immediate
                # employees of any manager, and so forth until the
                # hierarchy is exhausted"); a fixpoint check terminates it
                # on cyclic data.
                previous_frontier, frontier = frontier, step_values
                if frontier == previous_frontier:
                    frontier = set()
        if frontier:
            raise RecursionLimitExceeded(
                f"frontier not exhausted after {max_levels} levels"
            )

        pairs = self._closure_pairs(collected_edges, low, high, aligned)
        return RecursionRun(pairs=pairs, stats=stats)

    def _solve_memory(
        self, low: Optional[str], high: Optional[str]
    ) -> RecursionRun:
        """One flat SELECT of the edge view; the fixpoint runs in Python.

        The last rung of the serving layer's degradation ladder.  It
        depends on nothing but a single unprepared read — no intermediate
        relation (DDL + per-level writes), no ``WITH RECURSIVE`` support,
        no cached statement texts — so it stays answerable when every
        richer strategy's machinery is failing.  The full edge set crosses
        the wire, which is exactly the inefficiency the healthier rungs
        exist to avoid.
        """
        stats = RecursionStats(strategy="memory")
        if self._cte is not None:
            edge_sql = self._cte.edge_sql
        else:
            edge_sql, _relations = self._edge_query()
        rows = self.database.execute(edge_sql)
        stats.queries_issued = 1
        stats.levels = 1
        edge_set = {(row[0], row[1]) for row in rows}
        stats.new_answers_per_level.append(len(edge_set))
        pairs = self._closure_pairs(edge_set, low, high, aligned=True)
        return RecursionRun(pairs=pairs, stats=stats)

    def _closure_pairs(
        self,
        edges: set[tuple[str, str]],
        low: Optional[str],
        high: Optional[str],
        aligned: bool,
    ) -> set[tuple[str, str]]:
        """Transitive closure over the collected direct edges.

        When the frontier started from the bound side, the edges collected
        are exactly the reachable cone and the closure is cheap; in the
        misaligned (paper-pathological) case the edge set spans the whole
        hierarchy and the closure does the remaining work client-side —
        the inefficiency being the point of the measurement.
        """
        successors: dict[str, set[str]] = {}
        predecessors: dict[str, set[str]] = {}
        for l, h in edges:
            successors.setdefault(l, set()).add(h)
            predecessors.setdefault(h, set()).add(l)

        def reach(start: str, mapping: dict[str, set[str]]) -> set[str]:
            found: set[str] = set()
            frontier = set(mapping.get(start, ()))
            while frontier:
                found |= frontier
                frontier = {
                    n for f in frontier for n in mapping.get(f, ())
                } - found
            return found

        if low is not None:
            return {(low, h) for h in reach(low, successors)}
        assert high is not None
        return {(l, high) for l in reach(high, predecessors)}

    def _domain_values(self, attribute: str) -> set:
        """All stored values of an attribute (the paper's 'all employee names').

        The misaligned strategy seeds its first intermediate with the
        whole domain of the frontier attribute: the union of that column
        over every base relation carrying it.
        """
        values: set = set()
        for relation in self.schema.relations_with_attribute(attribute):
            rows = self.database.execute(
                f"SELECT DISTINCT {attribute} FROM {relation.name}"
            )
            values.update(r[0] for r in rows)
        return values

    # -- the naive strategy ---------------------------------------------------------------

    def _solve_naive(
        self, low: Optional[str], high: Optional[str], max_levels: int
    ) -> RecursionRun:
        stats = RecursionStats(strategy="naive")
        evaluator = Metaevaluator(self.schema, self.kb)
        options = SimplifyOptions() if self.optimize else SimplifyOptions.none()

        low_term: Term = Atom(low) if low is not None else var("Low")
        high_term: Term = Atom(high) if high is not None else var("High")
        goal = struct(self.view[0], low_term, high_term)
        targets = [t for t in (low_term, high_term) if isinstance(t, Variable)]

        pairs: set[tuple[str, str]] = set()
        stale_levels = 0
        for level in range(max_levels):
            predicates = expansion_at_level(
                evaluator, goal, self.view, level, targets=targets
            )
            if not predicates:
                break
            new_this_level = 0
            for predicate in predicates:
                result = simplify(predicate, self.constraints, options)
                if result.is_empty:
                    continue
                sql = translate(result.predicate, distinct=True)
                stats.sql_join_terms_per_level.append(sql.join_term_count)
                rows = self.database.execute(sql)
                stats.queries_issued += 1
                for row in rows:
                    if low is not None:
                        pair = (low, row[0])
                    elif high is not None:
                        pair = (row[0], high)
                    else:
                        pair = (row[0], row[1])
                    if pair not in pairs:
                        pairs.add(pair)
                        new_this_level += 1
            stats.levels += 1
            stats.new_answers_per_level.append(new_this_level)
            if new_this_level == 0:
                stale_levels += 1
                if stale_levels >= 2:
                    break
            else:
                stale_levels = 0
        else:
            raise RecursionLimitExceeded(
                f"naive expansion did not converge in {max_levels} levels"
            )
        return RecursionRun(pairs=pairs, stats=stats)


# -- incremental closure maintenance (the materialize subsystem) --------------------


class IncrementalClosure:
    """A transitive closure maintained under edge inserts and deletes.

    The batch executors above answer one ``view(low, high)`` query by
    iterating the setrel loop from scratch.  The materialized-view
    subsystem instead keeps the *whole* closure live:

    * :meth:`insert_edge` propagates semi-naively — a new edge ``l -> h``
      can only create pairs ``(x, y)`` with ``x`` reaching ``l`` and ``h``
      reaching ``y``, so exactly that product is probed and only
      genuinely new pairs are added;
    * :meth:`delete_edge` is DRed-style delete/re-derive: every pair
      whose derivations *might* route through the deleted edge is
      over-deleted, then pairs still derivable from the remaining edges
      are re-derived semi-naively until fixpoint.

    Both operations return the exact pair delta, so a downstream consumer
    (a count table, a subscriber view) can be maintained without diffing
    the full closure.  Cycles are handled: a pair ``(x, x)`` exists iff
    ``x`` lies on a cycle, matching the batch executors' semantics.
    """

    def __init__(self, edges: Optional[Sequence[tuple[str, str]]] = None):
        self._successors: dict[str, set[str]] = {}
        self._predecessors: dict[str, set[str]] = {}
        self._edges: set[tuple[str, str]] = set()
        self._pairs: set[tuple[str, str]] = set()
        #: Closure adjacency (node -> reachable / reaching nodes), kept in
        #: lockstep with ``_pairs`` so cone probes never scan the pair set.
        self._reach: dict[str, set[str]] = {}
        self._reached_by: dict[str, set[str]] = {}
        for low, high in edges or ():
            self.insert_edge(low, high)

    # -- inspection ---------------------------------------------------------

    @property
    def pairs(self) -> set[tuple[str, str]]:
        """The current closure (a live reference; treat as read-only)."""
        return self._pairs

    @property
    def edge_count(self) -> int:
        return len(self._edges)

    def __len__(self) -> int:
        return len(self._pairs)

    def __contains__(self, pair: tuple[str, str]) -> bool:
        return pair in self._pairs

    # -- helpers ------------------------------------------------------------

    def _sources_into(self, node: str) -> set[str]:
        """``node`` plus every x with (x, node) in the closure."""
        return {node} | self._reached_by.get(node, set())

    def _targets_from(self, node: str) -> set[str]:
        """``node`` plus every y with (node, y) in the closure."""
        return {node} | self._reach.get(node, set())

    def _add_pair(self, pair: tuple[str, str]) -> None:
        self._pairs.add(pair)
        x, y = pair
        self._reach.setdefault(x, set()).add(y)
        self._reached_by.setdefault(y, set()).add(x)

    def _remove_pair(self, pair: tuple[str, str]) -> None:
        self._pairs.discard(pair)
        x, y = pair
        bucket = self._reach.get(x)
        if bucket is not None:
            bucket.discard(y)
            if not bucket:
                del self._reach[x]
        bucket = self._reached_by.get(y)
        if bucket is not None:
            bucket.discard(x)
            if not bucket:
                del self._reached_by[y]

    # -- maintenance --------------------------------------------------------

    def insert_edge(self, low: str, high: str) -> set[tuple[str, str]]:
        """Add edge ``low -> high``; returns the newly derivable pairs."""
        if (low, high) in self._edges:
            return set()
        self._edges.add((low, high))
        self._successors.setdefault(low, set()).add(high)
        self._predecessors.setdefault(high, set()).add(low)
        sources = self._sources_into(low)
        targets = self._targets_from(high)
        added = {
            (x, y)
            for x in sources
            for y in targets
            if (x, y) not in self._pairs
        }
        for pair in added:
            self._add_pair(pair)
        return added

    def delete_edge(self, low: str, high: str) -> set[tuple[str, str]]:
        """Remove edge ``low -> high``; returns the pairs that died.

        Over-deletes the cone of pairs that could route through the edge,
        then re-derives: a removed pair ``(x, y)`` comes back if some
        remaining edge ``x -> z`` has ``z == y`` or ``(z, y)`` surviving.
        Iterates to fixpoint because one re-derivation can support
        another (paths sharing suffixes).
        """
        if (low, high) not in self._edges:
            return set()
        # Cone computed on the OLD closure (before anything is removed).
        sources = self._sources_into(low)
        targets = self._targets_from(high)
        self._edges.discard((low, high))
        self._successors[low].discard(high)
        if not self._successors[low]:
            del self._successors[low]
        self._predecessors[high].discard(low)
        if not self._predecessors[high]:
            del self._predecessors[high]

        suspect = {
            (x, y) for x in sources for y in targets if (x, y) in self._pairs
        }
        for pair in suspect:
            self._remove_pair(pair)

        changed = True
        while changed:
            changed = False
            for pair in list(suspect):
                x, y = pair
                for z in self._successors.get(x, ()):
                    if z == y or (z, y) in self._pairs:
                        self._add_pair(pair)
                        suspect.discard(pair)
                        changed = True
                        break
        return suspect
