"""Per-ask spans and the tracer that collects them.

One :class:`AskTrace` is allocated per ``ask`` (and per ``ask_many``
goal — batched groups share one *group* span that expands to per-goal
records on read, so a 64-goal batch costs one allocation, not 64).
Durations come from the monotonic clock; the wall-clock timestamp of
each span comes from the tracer's injected ``wall_clock`` provider, so
seeded differentials and benchmarks can pin time with a fake clock
instead of scattering ``time.time()`` calls across span sites.

The tracer is designed so the *disabled* path does no work at all: no
span object is allocated, no clock is read, and the backend observer
hook is never installed.  The *enabled* path is bounded by the ring —
a fixed number of retained spans — and by fixed-size per-shape latency
histograms (log2 microsecond buckets, no per-span sample storage).
"""

from __future__ import annotations

import json
import math
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Callable, Iterable, Iterator, Optional

from ..concurrency import StripedLock
from .ring import TraceRing

#: Module-bound monotonic clock: one global load per call on the span
#: hot path instead of a module-attribute chain.
_pc = time.perf_counter

#: Span fields whose ``None``/empty defaults are elided from trace dicts.
_OPTIONAL = (
    "recursion",
    "resilience",
    "deadline_remaining",
    "cqa",
    "error",
    "explain",
)

#: Lazily-bound ``coupling.global_opt.shape_digest`` — a module-level
#: import would close the coupling → observe → coupling cycle, and a
#: per-call function import costs a ``sys.modules`` lookup on the span
#: commit path.
_shape_digest = None


def _digest(key) -> str:
    global _shape_digest
    if _shape_digest is None:
        from ..coupling.global_opt import shape_digest

        _shape_digest = shape_digest
    return _shape_digest(key)


#: Latency histogram resolution: bucket ``i`` covers ``[2**(i-1), 2**i)``
#: microseconds; 40 buckets reach past 2**38 µs (~76 hours).  Counters
#: in a flat list make the commit-path record a couple of integer ops —
#: no sample window to append/evict, no sort on read.
_HIST_BUCKETS = 40

#: entry layout: [goal_text, count, errors, total_seconds, bucket_counts]
_H_GOAL, _H_COUNT, _H_ERRORS, _H_TOTAL, _H_LATENCIES = range(5)

#: Staging-queue length at which a *group* commit triggers a drain —
#: far below the serial threshold (the ring size) because each group
#: span pins a whole batch's member lists while staged.
_GROUP_STAGE_LIMIT = 64


def _bucket_quantile(buckets: list, q: float) -> float:
    """Nearest-rank quantile in **ms** from log2-µs bucket counters.

    Reported as the geometric midpoint of the winning bucket, so the
    value is exact to within the bucket's factor-of-two resolution.
    """
    total = sum(buckets)
    if total == 0:
        return 0.0
    target = max(1, math.ceil(q * total))
    cumulative = 0
    for index, hits in enumerate(buckets):
        cumulative += hits
        if cumulative >= target:
            return 0.00075 * (2.0 ** index)
    return 0.00075 * (2.0 ** (_HIST_BUCKETS - 1))


class AskTrace:
    """Everything one ask did and why — a completed span is immutable.

    Plain ``__slots__`` object, not a dataclass: spans are allocated on
    the warm-ask hot path and the 5% overhead gate (E20) leaves no room
    for dataclass ``__init__`` machinery.
    """

    __slots__ = (
        "span_id",
        "goal",
        "kind",
        "started_at",
        "t0",
        "duration",
        "phases",
        "shape_key",
        "plan_cache",
        "plan_kind",
        "recursion",
        "resilience",
        "deadline_remaining",
        "cqa",
        "rows",
        "statements",
        "last_sql",
        "answers",
        "error",
        "batch_size",
        "members",
        "slow",
        "res_mark",
        "explain",
    )

    def __init__(self, span_id: int, goal, kind: str, started_at: float,
                 res_mark: int):
        # Only the fields every span touches are written here; the rest
        # of the slots stay *unset* until (if ever) a touchpoint assigns
        # them, and readers default them through ``getattr``.  Spans are
        # born on the warm-ask hot path, where a dozen skipped slot
        # stores is a measurable share of the 5% overhead budget (E20).
        self.span_id = span_id
        self.goal = goal
        self.kind = kind
        self.started_at = started_at
        self.t0 = _pc()
        self.duration = 0.0
        self.phases: dict = {}
        self.rows = 0
        self.statements = 0
        self.slow = False
        self.res_mark = res_mark

    def mark(self, phase: str, since: float) -> float:
        """Accumulate one phase's monotonic delta; returns a new mark."""
        now = _pc()
        phases = self.phases
        phases[phase] = phases.get(phase, 0.0) + (now - since)
        return now

    def note_recursion(self, plan, interval_stats: Optional[dict]) -> None:
        """Record the recursion planner's decision (strategy + reason)."""
        decision = {
            "strategy": plan.strategy,
            "reason": plan.reason,
            "estimated_edge_rows": plan.estimated_edge_rows,
        }
        if interval_stats is not None:
            decision["interval_demotions"] = interval_stats.get("demotions", 0)
        self.recursion = decision


class Tracer:
    """Allocates, completes, and publishes :class:`AskTrace` spans.

    ``enabled=False`` is the production kill switch: ``begin`` returns
    ``None`` before any allocation and the session never installs the
    backend execute observer, so a disabled tracer's cost is a handful
    of ``is None`` branches — unmeasurable next to a SQLite round trip.
    """

    __slots__ = (
        "enabled",
        "ring",
        "slow_query_seconds",
        "wall_clock",
        "worker_id",
        "_local",
        "_id_lock",
        "_next_id",
        "_committed",
        "_callbacks",
        "_callback_errors",
        "_slow",
        "_slow_total",
        "_hist",
        "_hist_stripes",
        "_database",
        "_resilience",
        "_staged",
        "_drain_threshold",
        "_drain_lock",
    )

    def __init__(
        self,
        enabled: bool = True,
        ring_size: int = 1024,
        slow_query_seconds: float = 0.25,
        wall_clock: Optional[Callable[[], float]] = None,
        slow_log_size: int = 64,
        worker_id: Optional[str] = None,
    ):
        self.enabled = enabled
        #: Fleet attribution (ROADMAP E18): when set, every expanded
        #: span record and stats snapshot carries this id, so traces
        #: exported from a multi-process serving tier stay attributable
        #: to the worker that produced them.
        self.worker_id = worker_id
        self.ring = TraceRing(ring_size)
        self.slow_query_seconds = slow_query_seconds
        #: Injected wall-clock provider — span sites never call
        #: ``time.time()`` directly (deterministic under a fake clock).
        self.wall_clock = wall_clock if wall_clock is not None else time.time
        self._local = threading.local()
        self._id_lock = threading.Lock()
        self._next_id = 0
        self._committed = 0
        self._callbacks: list = []
        self._callback_errors = 0
        self._slow: deque = deque(maxlen=slow_log_size)
        self._slow_total = 0
        self._hist: dict = {}
        self._hist_stripes = StripedLock(8)
        self._database = None
        self._resilience = None
        #: Completed spans stage here (``deque.append`` is atomic under
        #: the GIL) and are aggregated in batched :meth:`_drain` passes —
        #: triggered by any read surface, or inline once a ring's worth
        #: piles up.  Batching keeps ``commit`` O(1) on the serving
        #: thread and lets one drain pass reuse hot histogram entries.
        self._staged: deque = deque()
        self._drain_threshold = max(64, ring_size)
        self._drain_lock = threading.RLock()

    # -- wiring ---------------------------------------------------------------

    def attach(self, database) -> None:
        """Bind the tracer to a backend (EXPLAIN + resilience ledger).

        Installs the execute observer only when enabled, so a disabled
        tracer leaves the backend's hot path untouched.
        """
        self._database = database
        self._resilience = getattr(database, "resilience", None)
        if self.enabled:
            database.observer = self.observe_execute

    def on_span(self, callback: Callable[[dict], None]) -> None:
        """Register an external sink; called with each completed span dict.

        Callback failures are counted (``callback_errors``) and swallowed
        — an exporter must never fail an ask.
        """
        self._callbacks.append(callback)

    # -- span lifecycle -------------------------------------------------------

    def current_span(self) -> Optional[AskTrace]:
        return getattr(self._local, "span", None)

    def _allocate(self, count: int = 1) -> int:
        with self._id_lock:
            base = self._next_id
            self._next_id += count
            return base

    def begin(self, goal, kind: str = "ask") -> Optional[AskTrace]:
        """Open a span and make it current, or ``None`` (disabled/nested).

        Nested asks (an ask issued while another span is active on this
        thread) attribute their work to the outer span instead of
        opening their own — the outer ask is the unit the caller timed.
        """
        if not self.enabled:
            return None
        local = self._local
        if getattr(local, "span", None) is not None:
            return None
        resilience = self._resilience
        # _allocate() inlined: one id, plain acquire/release (no context
        # manager protocol) — this runs once per warm ask.
        lock = self._id_lock
        lock.acquire()
        span_id = self._next_id
        self._next_id = span_id + 1
        lock.release()
        span = AskTrace(
            span_id,
            goal,
            kind,
            self.wall_clock(),
            resilience.event_seq if resilience is not None else 0,
        )
        local.span = span
        return span

    @contextmanager
    def group(self, size: int) -> Iterator[Optional[AskTrace]]:
        """A span covering one batched ``ask_many`` group execution.

        Reserves ``size`` consecutive span ids (one per member goal) but
        allocates a single object; :meth:`commit_group` files it and
        :meth:`traces` expands it back into per-goal records.  Yields
        ``None`` when disabled or a span is already active.
        """
        if not self.enabled or getattr(self._local, "span", None) is not None:
            yield None
            return
        resilience = self._resilience
        span = AskTrace(
            self._allocate(size),
            None,
            "batch",
            self.wall_clock(),
            resilience.event_seq if resilience is not None else 0,
        )
        span.batch_size = size
        self._local.span = span
        try:
            yield span
        finally:
            self._local.span = None

    def observe_execute(self, text: str, rows: int, seconds: float) -> None:
        """Backend hook: one executed statement on this thread.

        Installed as ``database.observer`` (enabled tracers only); a
        statement outside any span — maintenance deltas on the write
        path, benchmarks poking the backend directly — is ignored.
        """
        span = getattr(self._local, "span", None)
        if span is None:
            return
        span.statements += 1
        span.rows += rows
        span.phases["execute"] = span.phases.get("execute", 0.0) + seconds
        span.last_sql = text

    def commit(self, span: AskTrace) -> None:
        """Complete the current span: duration, resilience delta, stage."""
        local = self._local
        if local.span is span:
            local.span = None
        span.duration = _pc() - span.t0
        resilience = self._resilience
        if resilience is not None and resilience.event_seq != span.res_mark:
            events = resilience.events_since(
                span.res_mark, threading.get_ident()
            )
            if events:
                span.resilience = events
        staged = self._staged
        staged.append(span)
        if self._callbacks or len(staged) >= self._drain_threshold:
            self._drain()

    def commit_group(self, span: AskTrace, goals, answer_counts,
                     plan_kind: Optional[str] = None) -> None:
        """Complete a batch group span for its member goals.

        ``members`` holds the *existing* goal and count lists (no
        per-member allocation), and group spans drain on a much lower
        staging threshold than serial spans: each one pins a whole
        batch's worth of member references, so letting a ring's worth
        pile up would bloat the staging queue's memory residency.
        """
        span.duration = _pc() - span.t0
        span.plan_cache = "hit"
        span.plan_kind = plan_kind or "external"
        span.members = (goals, answer_counts)
        resilience = self._resilience
        if resilience is not None and resilience.event_seq != span.res_mark:
            events = resilience.events_since(
                span.res_mark, threading.get_ident()
            )
            if events:
                span.resilience = events
        staged = self._staged
        staged.append(span)
        if self._callbacks or len(staged) >= _GROUP_STAGE_LIMIT:
            self._drain()

    def _drain(self) -> None:
        """Aggregate every staged span: ring, histograms, slow log, sinks.

        ``popleft`` until empty is race-free against concurrent
        ``commit`` appends; the reentrant drain lock serializes
        aggregation itself (and survives an ``on_span`` sink that reads
        ``traces()`` back).  Spans are aggregated *grouped by histogram
        key* — one stripe acquisition and one entry fetch per shape per
        drain, not per span — so the deferred cost stays a fraction of
        what inline per-span publishing would spend.
        """
        staged = self._staged
        with self._drain_lock:
            batch = []
            while True:
                try:
                    batch.append(staged.popleft())
                except IndexError:
                    break
            if not batch:
                return
            committed = 0
            by_key: dict = {}
            for span in batch:
                members = getattr(span, "members", None)
                count = len(members[0]) if members is not None else 1
                committed += count
                key = getattr(span, "shape_key", None)
                if key is None:
                    key = getattr(span, "plan_kind", None) or span.kind
                group = by_key.get(key)
                if group is None:
                    by_key[key] = group = []
                group.append((span, count))
            for key, group in by_key.items():
                self._record_latencies(key, group)
            self.ring.store_many(batch)
            self._committed += committed
            threshold = self.slow_query_seconds
            callbacks = self._callbacks
            for span in batch:
                if threshold is not None and span.duration >= threshold:
                    span.slow = True
                    self._capture_slow(span)
                if callbacks:
                    for record in self.expand(span):
                        for callback in tuple(callbacks):
                            try:
                                callback(record)
                            except Exception:  # noqa: BLE001 - sinks must not fail asks
                                self._callback_errors += 1

    # -- slow-query log -------------------------------------------------------

    def _capture_slow(self, span: AskTrace) -> None:
        """Full-detail capture, including an on-demand EXPLAIN QUERY PLAN."""
        last_sql = getattr(span, "last_sql", None)
        if last_sql is not None and self._database is not None:
            try:
                span.explain = self._database.query_plan(last_sql)
            except Exception:  # noqa: BLE001 - diagnosis is best-effort
                span.explain = None
        self._slow_total += 1
        for record in self.expand(span):
            self._slow.append(record)

    def slow_queries(self) -> list:
        """The most recent slow-span records (full detail + EXPLAIN)."""
        self._drain()
        return list(self._slow)

    # -- latency histograms ---------------------------------------------------

    def _record_latencies(self, key, group) -> None:
        """Fold one drained shape-group into its histogram entry.

        Keyed by the *raw* shape key (or plan kind); digesting the key
        is deferred to :meth:`stats_snapshot`, so drains never hash
        bytes, and the log2 bucket costs two list ops per span instead
        of a sample-window append.
        """
        hist = self._hist
        cap = _HIST_BUCKETS - 1
        with self._hist_stripes.for_key(key):
            entry = hist.get(key)
            if entry is None:
                first = group[0][0]
                members = getattr(first, "members", None)
                entry = [
                    _goal_text(members[0][0] if members else first.goal),
                    0,
                    0,
                    0.0,
                    [0] * _HIST_BUCKETS,
                ]
                hist[key] = entry
            buckets = entry[_H_LATENCIES]
            for span, count in group:
                duration = span.duration
                entry[_H_COUNT] += count
                entry[_H_TOTAL] += duration
                buckets[min(cap, int(duration * 1e6).bit_length())] += 1
                if getattr(span, "error", None) is not None:
                    entry[_H_ERRORS] += count

    # -- export surface -------------------------------------------------------

    def expand(self, span: AskTrace) -> list:
        """One JSON-serializable dict per goal the span covered."""
        shape_key = getattr(span, "shape_key", None)
        members = getattr(span, "members", None)
        base = {
            "span_id": span.span_id,
            "kind": span.kind,
            "goal": _goal_text(span.goal),
            "started_at": span.started_at,
            "duration_ms": round(span.duration * 1000.0, 4),
            "phases_ms": {
                name: round(seconds * 1000.0, 4)
                for name, seconds in span.phases.items()
            },
            "shape": None if shape_key is None else _digest(shape_key),
            "plan_cache": getattr(span, "plan_cache", None),
            "plan_kind": getattr(span, "plan_kind", None),
            "rows": span.rows,
            "statements": span.statements,
            "sql": getattr(span, "last_sql", None),
            "answers": getattr(span, "answers", None),
            "batched": members is not None,
            "slow": span.slow,
        }
        if self.worker_id is not None:
            base["worker"] = self.worker_id
        for name in _OPTIONAL:
            value = getattr(span, name, None)
            if value is not None:
                base[name] = value
        if members is None:
            return [base]
        goals, answer_counts = members
        records = []
        batch = {"batch_size": len(goals)}
        if "execute" in span.phases and "batch" in span.phases:
            batch["demux_ms"] = round(
                max(0.0, span.phases["batch"] - span.phases["execute"])
                * 1000.0,
                4,
            )
        for offset, goal in enumerate(goals):
            record = dict(base)
            record.update(batch)
            record["span_id"] = span.span_id + offset
            record["goal"] = _goal_text(goal)
            record["answers"] = answer_counts[offset]
            records.append(record)
        return records

    def traces(self) -> list:
        """Resident spans as structured dicts, ascending span id."""
        self._drain()
        out: list = []
        for span in self.ring.spans():
            out.extend(self.expand(span))
        return out

    def export(self, path, stats: Optional[dict] = None) -> int:
        """Write the resident traces (plus metrics) to ``path`` as JSON."""
        traces = self.traces()
        payload = {
            "observe": stats if stats is not None else self.stats_snapshot(),
            "traces": traces,
        }
        with open(path, "w", encoding="utf-8") as sink:
            json.dump(payload, sink, indent=1)
            sink.write("\n")
        return len(traces)

    def stats_snapshot(self) -> dict:
        """Gauges and histograms for ``session.stats()["observe"]``."""
        self._drain()
        histograms = {}
        with self._hist_stripes.all():
            items = [
                (key, entry[:_H_LATENCIES] + [list(entry[_H_LATENCIES])])
                for key, entry in self._hist.items()
            ]
        for key, entry in items:
            buckets = entry[_H_LATENCIES]
            name = _digest(key) if isinstance(key, tuple) else key
            histograms[name] = {
                "goal": entry[_H_GOAL],
                "count": entry[_H_COUNT],
                "errors": entry[_H_ERRORS],
                "total_ms": round(entry[_H_TOTAL] * 1000.0, 3),
                "p50_ms": round(_bucket_quantile(buckets, 0.50), 4),
                "p95_ms": round(_bucket_quantile(buckets, 0.95), 4),
                "p99_ms": round(_bucket_quantile(buckets, 0.99), 4),
            }
        snapshot = {
            "enabled": self.enabled,
            "ring_size": self.ring.size,
            "spans": self._committed,
            "resident_spans": len(self.ring.spans()),
            "slow_queries": self._slow_total,
            "slow_threshold_seconds": self.slow_query_seconds,
            "callback_errors": self._callback_errors,
            "histograms": histograms,
        }
        if self.worker_id is not None:
            snapshot["worker"] = self.worker_id
        return snapshot

    def histogram_export(self) -> dict:
        """Raw log2-µs bucket counters per shape, for cross-process merge.

        :meth:`stats_snapshot` collapses each histogram to quantiles,
        which cannot be combined across workers; this surface keeps the
        buckets themselves (JSON/pickle-serializable) so a serving tier
        can sum per-worker counters and *then* take quantiles — see
        :func:`merge_histogram_exports`.
        """
        self._drain()
        with self._hist_stripes.all():
            items = [
                (key, entry[:_H_LATENCIES] + [list(entry[_H_LATENCIES])])
                for key, entry in self._hist.items()
            ]
        export = {}
        for key, entry in items:
            name = _digest(key) if isinstance(key, tuple) else key
            export[name] = {
                "goal": entry[_H_GOAL],
                "count": entry[_H_COUNT],
                "errors": entry[_H_ERRORS],
                "total_seconds": entry[_H_TOTAL],
                "buckets": entry[_H_LATENCIES],
            }
        return export


def merge_histogram_exports(exports: Iterable[dict]) -> dict:
    """Fold per-worker :meth:`Tracer.histogram_export` payloads into one.

    Bucket counters are summed per shape across the fleet, then the
    aggregate quantiles are taken from the *merged* buckets — the only
    order of operations that is correct (quantiles of quantiles are
    not quantiles).  The result uses the same per-shape record shape as
    ``stats_snapshot()["histograms"]``, so dashboards can read an
    aggregate view and a single worker's view interchangeably.
    """
    merged: dict = {}
    for export in exports:
        for name, entry in export.items():
            into = merged.get(name)
            if into is None:
                merged[name] = {
                    "goal": entry["goal"],
                    "count": entry["count"],
                    "errors": entry["errors"],
                    "total_seconds": entry["total_seconds"],
                    "buckets": list(entry["buckets"]),
                }
                continue
            into["count"] += entry["count"]
            into["errors"] += entry["errors"]
            into["total_seconds"] += entry["total_seconds"]
            buckets = into["buckets"]
            for index, hits in enumerate(entry["buckets"]):
                buckets[index] += hits
    histograms = {}
    for name, entry in merged.items():
        buckets = entry["buckets"]
        histograms[name] = {
            "goal": entry["goal"],
            "count": entry["count"],
            "errors": entry["errors"],
            "total_ms": round(entry["total_seconds"] * 1000.0, 3),
            "p50_ms": round(_bucket_quantile(buckets, 0.50), 4),
            "p95_ms": round(_bucket_quantile(buckets, 0.95), 4),
            "p99_ms": round(_bucket_quantile(buckets, 0.99), 4),
        }
    return histograms


def _goal_text(goal) -> Optional[str]:
    if goal is None or isinstance(goal, str):
        return goal
    try:
        from ..prolog.writer import term_to_string

        return term_to_string(goal)
    except Exception:  # noqa: BLE001 - rendering is cosmetic
        return repr(goal)
