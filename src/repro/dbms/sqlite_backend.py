"""The external relational DBMS, backed by ``sqlite3``.

The paper's system talks to an SQL DBMS it does not control ("we assume
the use of an existing database system").  This module is that substitute
substrate: it creates tables from the catalog, loads tuples, executes the
generated SQL text, and supports the *intermediate relations* that the
recursion strategies create with ``setrel`` (paper section 7).

The interface is deliberately narrow — SQL text in, tuples out — so the
translation layers above cannot accidentally depend on anything a 1984
mainframe DBMS would not have offered.
"""

from __future__ import annotations

import sqlite3
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence, Union

from ..errors import ExecutionError, SchemaError
from ..schema.catalog import DatabaseSchema, Relation
from ..sql.ast import SqlQuery, UnionQuery
from ..sql.dialects import SqliteDialect
from ..sql.printer import print_sql, print_union

Row = tuple
Value = Union[int, float, str, None]


@dataclass
class ExecutionStats:
    """Cumulative counters a session exposes for benchmarks."""

    queries_executed: int = 0
    rows_fetched: int = 0
    statements: list[str] = field(default_factory=list)
    keep_statements: bool = False

    def record(self, statement: str, rows: int) -> None:
        self.queries_executed += 1
        self.rows_fetched += rows
        if self.keep_statements:
            self.statements.append(statement)

    def reset(self) -> None:
        self.queries_executed = 0
        self.rows_fetched = 0
        self.statements.clear()


class ExternalDatabase:
    """An SQLite-backed relational store for one catalog."""

    def __init__(self, schema: DatabaseSchema, path: str = ":memory:"):
        self.schema = schema
        self._connection = sqlite3.connect(path)
        self._dialect = SqliteDialect()
        self.stats = ExecutionStats()
        self._intermediates: dict[str, tuple[str, ...]] = {}
        self._create_tables()

    # -- DDL -----------------------------------------------------------------

    def _create_tables(self) -> None:
        cursor = self._connection.cursor()
        for relation in self.schema.relations.values():
            columns = ", ".join(
                f"{attribute} {self.schema.attribute(attribute).sql_type}"
                for attribute in relation.attributes
            )
            cursor.execute(f"CREATE TABLE IF NOT EXISTS {relation.name} ({columns})")
        self._connection.commit()

    def create_intermediate(
        self, name: str, attributes: Sequence[str]
    ) -> None:
        """``setrel``: create (or reset) an intermediate relation."""
        if self.schema.has_relation(name):
            raise SchemaError(f"{name!r} clashes with a base relation")
        column_defs = ", ".join(
            f"{attribute} {self.schema.attribute(attribute).sql_type}"
            if attribute in self.schema.attribute_names
            else f"{attribute} TEXT"
            for attribute in attributes
        )
        cursor = self._connection.cursor()
        cursor.execute(f"DROP TABLE IF EXISTS {name}")
        cursor.execute(f"CREATE TABLE {name} ({column_defs})")
        self._connection.commit()
        self._intermediates[name] = tuple(attributes)

    def drop_intermediate(self, name: str) -> None:
        if name not in self._intermediates:
            return
        self._connection.execute(f"DROP TABLE IF EXISTS {name}")
        self._connection.commit()
        del self._intermediates[name]

    def set_intermediate_rows(self, name: str, rows: Iterable[Row]) -> int:
        """Replace the contents of an intermediate relation; returns count."""
        if name not in self._intermediates:
            raise ExecutionError(f"unknown intermediate relation {name!r}")
        attributes = self._intermediates[name]
        cursor = self._connection.cursor()
        cursor.execute(f"DELETE FROM {name}")
        placeholders = ", ".join("?" * len(attributes))
        data = [tuple(row) for row in rows]
        cursor.executemany(f"INSERT INTO {name} VALUES ({placeholders})", data)
        self._connection.commit()
        return len(data)

    # -- loading ---------------------------------------------------------------

    def insert_rows(self, relation_name: str, rows: Iterable[Sequence[Value]]) -> int:
        """Bulk-load tuples into a base relation; returns the count."""
        relation = self.schema.relation(relation_name)
        placeholders = ", ".join("?" * relation.arity)
        data = [tuple(row) for row in rows]
        for row in data:
            if len(row) != relation.arity:
                raise ExecutionError(
                    f"{relation_name}: expected {relation.arity} values, got {len(row)}"
                )
        cursor = self._connection.cursor()
        cursor.executemany(
            f"INSERT INTO {relation_name} VALUES ({placeholders})", data
        )
        self._connection.commit()
        return len(data)

    def clear_relation(self, relation_name: str) -> None:
        self.schema.relation(relation_name)  # validates
        self._connection.execute(f"DELETE FROM {relation_name}")
        self._connection.commit()

    def row_count(self, relation_name: str) -> int:
        cursor = self._connection.execute(f"SELECT COUNT(*) FROM {relation_name}")
        return cursor.fetchone()[0]

    # -- query execution -----------------------------------------------------------

    def execute(self, query: Union[SqlQuery, UnionQuery, str]) -> list[Row]:
        """Run a generated query and fetch all result tuples."""
        if isinstance(query, SqlQuery):
            if query.is_empty:
                return []  # proven empty: never hits the DBMS
            text = print_sql(query, oneline=True, dialect=self._dialect)
        elif isinstance(query, UnionQuery):
            if not query.live_branches:
                return []
            text = print_union(query, oneline=True)
        else:
            text = query
        try:
            cursor = self._connection.execute(text)
            rows = cursor.fetchall()
        except sqlite3.Error as error:
            raise ExecutionError(f"SQLite rejected {text!r}: {error}") from error
        self.stats.record(text, len(rows))
        return rows

    def execute_scalar(self, sql_text: str) -> Value:
        rows = self.execute(sql_text)
        return rows[0][0] if rows else None

    def fetch_relation(self, relation_name: str) -> list[Row]:
        """All tuples of a base relation (used by the merge procedure)."""
        relation = self.schema.relation(relation_name)
        columns = ", ".join(relation.attributes)
        return self.execute(f"SELECT {columns} FROM {relation_name}")

    def close(self) -> None:
        self._connection.close()

    def __enter__(self) -> "ExternalDatabase":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
