"""Interval (nested-set) labeling of a hierarchy — reachability by range probe.

The XPath-accelerator trick applied to the paper's recursive views: label
every node of the ``works_for``-shaped edge forest with a ``(pre, post)``
interval such that *descendant* is equivalent to *interval containment*::

    a above d   ⇔   pre_a < pre_d  AND  post_d < post_a

Stored as an indexed ``ivl_*`` backend table (:meth:`~repro.dbms.
sqlite_backend.ExternalDatabase.create_interval_index`), a closure probe
that previously iterated a fixpoint — per-level setrel rounds, or the
backend's own ``WITH RECURSIVE`` loop — becomes **one indexed range
predicate** with no recursion at all: semantic knowledge (the data is a
tree) pushed into a cheaper physical access path, the paper's theme.

Labels are *gap-scaled* event numbers (entry/exit of a DFS, times
:data:`IntervalIndex.GAP`), so churn is mostly absorbed locally:

* a new leaf under a labeled parent takes a fresh sub-interval out of
  the parent's trailing gap — one upsert, no relabel;
* a deleted leaf tombstones (its row is dropped; the interval becomes
  reusable gap);
* anything else — internal deletes, subtree moves, exhausted gaps —
  triggers a **bulk relabel**: in-backend via one window-function
  ``INSERT … SELECT`` (labels never cross the wire) when the substrate
  and the node domain allow it, else computed client-side;
* non-tree data (a multi-parent node, a cycle longer than a self-loop)
  **demotes** the index: :meth:`IntervalIndex.ensure_fresh` raises
  :class:`~repro.errors.IntervalUnavailable` and the recursion planner
  falls back to the CTE pushdown until the data moves again.

The org generator's self-managed top department (edge ``boss → boss``)
is the one cycle tree labels cannot express; it is excluded from the
tree and recorded as ``cyc = 1`` on the node's row, which the probe
statements fold back in through a ``UNION`` branch.

Freshness is keyed on the backend's per-relation data generations for
every base relation the edge view reads — the same counters the
statistics service uses — so a steady probe stream pays one dictionary
comparison, not an edge diff, per ask.
"""

from __future__ import annotations

import sqlite3
import threading
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..concurrency import LockedCounters
from ..errors import IntervalUnavailable
from ..sql.translate import interval_labeling, interval_probe

#: Window functions (ROW_NUMBER) arrived in SQLite 3.25; older substrates
#: use the client-side labeling path.
_WINDOW_FUNCTIONS_SINCE = (3, 25, 0)


@dataclass
class IntervalStats(LockedCounters):
    """Maintenance counters for one interval index (benchmarks read these)."""

    builds: int = 0
    backend_relabels: int = 0
    python_relabels: int = 0
    local_absorbs: int = 0
    tombstones: int = 0
    gap_exhaustions: int = 0
    demotions: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    _snapshot_fields = (
        "builds",
        "backend_relabels",
        "python_relabels",
        "local_absorbs",
        "tombstones",
        "gap_exhaustions",
        "demotions",
    )


class IntervalIndex:
    """A generation-stamped pre/post labeling of one recursive view's edges.

    Owned by the view's :class:`~repro.coupling.recursion_exec.
    TransitiveClosure`; the planner calls :meth:`ensure_fresh` before
    choosing the ``interval`` strategy, and the probe texts
    (:attr:`descend_text`, :attr:`ascend_text`, :meth:`batch_text`) are
    prepared once and re-executed with bound seeds forever after.
    """

    #: Labels are DFS event numbers scaled by this gap; a leaf attach
    #: carves thirds out of the parent's trailing gap, so roughly
    #: ``log3(GAP)`` local inserts fit per locality before a relabel.
    GAP = 1024

    def __init__(
        self,
        database,
        name: str,
        edge_sql: object,
        edge_relations: Sequence[str],
    ):
        self.database = database
        self.name = name
        self.table = database.INTERVAL_PREFIX + name
        self.edge_sql = edge_sql
        self.edge_text = database.prepare(edge_sql)
        self.edge_relations = tuple(edge_relations)
        self.stats = IntervalStats()
        self.descend_text = interval_probe(self.table, "high")
        self.ascend_text = interval_probe(self.table, "low")
        self._batch_texts: dict[tuple[str, int], str] = {}
        #: data generations the current labeling (or demotion) was taken
        #: at; ``None`` until the first build attempt.
        self._generations: Optional[dict[str, int]] = None
        self._demoted: Optional[str] = None
        self._created = False
        self._stamp = 0
        # In-memory mirror of the edge structure (not the labels — those
        # live in the backend): the churn diff and absorb planner run on
        # these.
        self._edges: set[tuple] = set()
        self._nodes: set = set()
        self._parent: dict = {}
        self._children: dict = {}
        self._selfloops: set = set()
        self._depths: dict = {}
        self.node_count = 0
        self.max_depth = 0
        self.max_fanout = 0
        self._lock = threading.RLock()

    # -- inspection ---------------------------------------------------------

    def describe(self) -> str:
        """One-line shape summary for planner reason strings."""
        return (
            f"{self.node_count} nodes, depth {self.max_depth}, "
            f"fanout ≤{self.max_fanout}"
        )

    @property
    def demoted(self) -> Optional[str]:
        """Why the index cannot serve (None when healthy)."""
        with self._lock:
            return self._demoted

    def batch_text(self, bound: str, batch_size: int) -> str:
        """Cached batch probe text for ``batch_size`` distinct seeds."""
        with self._lock:
            key = (bound, batch_size)
            text = self._batch_texts.get(key)
            if text is None:
                text = interval_probe(self.table, bound, batch_size)
                self._batch_texts[key] = text
            return text

    # -- freshness ----------------------------------------------------------

    def ensure_fresh(self) -> None:
        """Make the stored labeling current, or raise ``IntervalUnavailable``.

        Generation-fresh indexes return after one dictionary comparison.
        Stale ones fetch the edge view once and diff: a pure
        leaf-attach/leaf-delete delta with sufficient gaps absorbs
        locally; anything else bulk-relabels; non-forest data demotes
        (and the demotion is cached until the data generations move, so
        a demoted view costs one comparison per ask, not one diff).
        """
        with self._lock:
            generations = {
                relation: self.database.data_generation(relation)
                for relation in self.edge_relations
            }
            if self._generations == generations:
                if self._demoted is not None:
                    raise IntervalUnavailable(self._demoted)
                return
            rows = self.database.execute_prepared(self.edge_text, ())
            edges = {(row[0], row[1]) for row in rows}
            try:
                absorbed = (
                    self._generations is not None
                    and self._demoted is None
                    and self._absorb(edges)
                )
                if not absorbed:
                    self._relabel(edges)
            except IntervalUnavailable as error:
                self._demoted = str(error)
                self._generations = generations
                self.stats.incr("demotions")
                raise
            self._demoted = None
            self._generations = generations

    # -- bulk relabel -------------------------------------------------------

    def _relabel(self, edges: set[tuple]) -> None:
        """Validate the forest shape and rewrite the whole labeling."""
        selfloops = {lo for lo, hi in edges if lo == hi}
        parent: dict = {}
        children: dict = {}
        for lo, hi in edges:
            if lo == hi:
                continue
            if lo in parent:
                raise IntervalUnavailable(
                    f"{self.name}: node {lo!r} has multiple parents "
                    f"({parent[lo]!r}, {hi!r}); not a tree"
                )
            parent[lo] = hi
            children.setdefault(hi, []).append(lo)
        nodes = {lo for lo, _ in edges} | {hi for _, hi in edges}
        roots = sorted((n for n in nodes if n not in parent), key=str)
        depths: dict = {}
        order: list = []
        stack = [(root, 0) for root in reversed(roots)]
        while stack:
            node, depth = stack.pop()
            depths[node] = depth
            order.append(node)
            for child in sorted(children.get(node, ()), key=str, reverse=True):
                stack.append((child, depth + 1))
        if len(depths) != len(nodes):
            trapped = next(iter(nodes - set(depths)))
            raise IntervalUnavailable(
                f"{self.name}: cycle through {trapped!r} (beyond a "
                "self-loop); not a tree"
            )

        if not self._created:
            self.database.create_interval_index(self.table)
            self._created = True
        self._stamp += 1
        written = False
        if self._backend_labeling_ok(nodes):
            count = self.database.relabel_interval(
                self.table,
                interval_labeling(self.edge_text, self.GAP),
                generation=self._stamp,
            )
            if count == len(nodes):
                self.stats.incr("backend_relabels")
                written = True
            # an incomplete walk (count mismatch) falls through to the
            # client-side labeling rather than serving torn labels
        if not written:
            self.database.set_interval_rows(
                self.table,
                self._python_labels(roots, children, selfloops),
                generation=self._stamp,
            )
            self.stats.incr("python_relabels")
        self.stats.incr("builds")

        self._edges = set(edges)
        self._nodes = nodes
        self._parent = parent
        self._children = {h: set(c) for h, c in children.items()}
        self._selfloops = selfloops
        self._depths = depths
        self.node_count = len(nodes)
        self.max_depth = max(depths.values(), default=0)
        self.max_fanout = max(
            (len(c) for c in children.values()), default=0
        )

    def _backend_labeling_ok(self, nodes: set) -> bool:
        """Whether the window-function labeling statement is sound here.

        Needs window functions in the substrate, and slash-free text
        node values (the path-string ordering would conflate anything
        else); everything outside that envelope labels client-side.
        """
        if sqlite3.sqlite_version_info < _WINDOW_FUNCTIONS_SINCE:
            return False
        return all(
            isinstance(node, str) and "/" not in node for node in nodes
        )

    def _python_labels(
        self, roots: list, children: dict, selfloops: set
    ) -> list[tuple]:
        """The client-side labeling: gap-scaled DFS entry/exit events."""
        counter = 0
        events: dict = {}  # node -> [entry, exit]
        for root in roots:
            stack: list[tuple] = [(root, False)]
            while stack:
                node, leaving = stack.pop()
                counter += 1
                if leaving:
                    events[node][1] = counter
                    continue
                events[node] = [counter, 0]
                stack.append((node, True))
                for child in sorted(
                    children.get(node, ()), key=str, reverse=True
                ):
                    stack.append((child, False))
        return [
            (
                node,
                self.GAP * entry,
                self.GAP * exit_,
                1 if node in selfloops else 0,
            )
            for node, (entry, exit_) in events.items()
        ]

    # -- local churn absorption ---------------------------------------------

    def _absorb(self, edges: set[tuple]) -> bool:
        """Absorb a leaf-attach/leaf-delete delta into the gaps.

        Returns True when the delta was applied locally (one
        transactional upsert+tombstone batch); False hands control to
        the bulk relabel — including on gap exhaustion, which is counted.
        """
        inserted = edges - self._edges
        deleted = self._edges - edges
        if not inserted and not deleted:
            # same pairs, new generation (e.g. delete+re-insert churn)
            return True
        if any(lo == hi for lo, hi in inserted | deleted):
            return False  # self-loop changes alter cyc flags: relabel
        for lo, hi in deleted:
            if self._children.get(lo):
                return False  # internal delete orphans a subtree
            if self._parent.get(lo) != hi:
                return False
        removed_nodes = {lo for lo, _ in deleted}
        known = self._nodes - removed_nodes
        pending = list(inserted)
        placements: list[tuple] = []
        while pending:
            rest = []
            progress = False
            for lo, hi in pending:
                if lo in known:
                    return False  # an existing node gained a parent
                if hi in known:
                    placements.append((lo, hi))
                    known.add(lo)
                    progress = True
                else:
                    rest.append((lo, hi))
            if not progress:
                return False  # parent outside the labeled forest
            pending = rest

        placed_labels: dict = {}
        placed_child_max: dict = {}
        upserts: list[tuple] = []
        for lo, hi in placements:
            if hi in placed_labels:
                parent_pre, parent_post = placed_labels[hi]
                child_max = placed_child_max.get(hi)
            else:
                fetched = self.database.execute_prepared(
                    f"SELECT pre, post FROM {self.table} WHERE node = ?",
                    (hi,),
                )
                if not fetched:
                    return False
                parent_pre, parent_post = fetched[0]
                stored = self.database.execute_prepared(
                    f"SELECT MAX(post) FROM {self.table} "
                    "WHERE pre > ? AND post < ?",
                    (parent_pre, parent_post),
                )[0][0]
                child_max = max(
                    (value for value in (stored, placed_child_max.get(hi))
                     if value is not None),
                    default=None,
                )
            low = child_max if child_max is not None else parent_pre
            width = parent_post - low
            if width < 4:
                self.stats.incr("gap_exhaustions")
                return False
            pre = low + width // 3
            post = low + 2 * (width // 3)
            placed_labels[lo] = (pre, post)
            placed_child_max[hi] = post
            upserts.append((lo, pre, post, 0))

        self._stamp += 1
        self.database.apply_interval_delta(
            self.table,
            upserts=upserts,
            deletes=sorted(removed_nodes, key=str),
            generation=self._stamp,
        )
        # commit the structural mirror only after the backend committed
        for lo, hi in deleted:
            self._edges.discard((lo, hi))
            self._nodes.discard(lo)
            self._parent.pop(lo, None)
            bucket = self._children.get(hi)
            if bucket is not None:
                bucket.discard(lo)
                if not bucket:
                    self._children.pop(hi, None)
            self._depths.pop(lo, None)
        for lo, hi in placements:
            self._edges.add((lo, hi))
            self._nodes.add(lo)
            self._parent[lo] = hi
            bucket = self._children.setdefault(hi, set())
            bucket.add(lo)
            self._depths[lo] = self._depths.get(hi, 0) + 1
            self.max_depth = max(self.max_depth, self._depths[lo])
            self.max_fanout = max(self.max_fanout, len(bucket))
        self.node_count = len(self._nodes)
        if placements:
            self.stats.incr("local_absorbs", len(placements))
        if removed_nodes:
            self.stats.incr("tombstones", len(removed_nodes))
        return True
