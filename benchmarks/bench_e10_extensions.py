"""E10 — Section 7 extensions: disjunction (DNF + UNION) and negation.

Claims: the DNF split produces one conjunctive query per branch whose
UNION equals the view's Prolog semantics; negation via NOT IN matches
set-difference semantics; contradictory branches are pruned before SQL.
"""

from conftest import make_session
from repro.extensions import translate_disjunctive, translate_with_negation
from repro.prolog import var
from repro.sql import print_union

DISJUNCTIVE_VIEW = """
notable(X) :- empl(_, X, S, _), geq(S, 70000).
notable(X) :- dept(_, _, M), empl(M, X, _, _).
"""


def test_e10_disjunction_union(medium_session, benchmark):
    session, org = medium_session
    session.consult(DISJUNCTIVE_VIEW)

    translation = benchmark(
        lambda: translate_disjunctive(
            session.metaevaluator, "notable(X)", session.constraints,
            targets=[var("X")],
        )
    )
    rows = session.database.execute(translation.union)
    managers = {
        next(e.nam for e in org.employees if e.eno == d.mgr)
        for d in org.departments
    }
    wellpaid = {e.nam for e in org.employees if e.sal >= 70000}
    print(f"\n[E10] disjunction: {translation.live_branch_count} branches, "
          f"{len(set(rows))} distinct answers "
          f"(oracle: {len(managers | wellpaid)})")
    assert {r[0] for r in rows} == managers | wellpaid


def test_e10_branch_pruning(medium_session):
    session, org = medium_session
    session.consult(
        """
        oddity(X) :- empl(_, X, S, _), less(S, 2000).
        oddity(X) :- dept(_, _, M), empl(M, X, _, _).
        """
    )
    translation = translate_disjunctive(
        session.metaevaluator, "oddity(X)", session.constraints,
        targets=[var("X")],
    )
    print(f"\n[E10] contradictory branch pruned: "
          f"{translation.pruned_branch_count} of {len(translation.branches)}")
    assert translation.pruned_branch_count == 1


def test_e10_negation_not_in(medium_session, benchmark):
    session, org = medium_session
    boss = org.root_manager_name()

    translation = benchmark(
        lambda: translate_with_negation(
            session.metaevaluator,
            f"empl(E, N, S, D), not(works_dir_for(N, {boss}))",
            session.constraints,
            targets=[var("N")],
        )
    )
    rows = session.database.execute(translation.query)
    under_boss = {l for l, h in org.works_dir_for_pairs() if h == boss}
    all_names = {e.nam for e in org.employees}
    print(f"\n[E10] negation: {len(set(rows))} answers "
          f"(oracle: {len(all_names - under_boss)})")
    assert {r[0] for r in rows} == all_names - under_boss


def test_e10_stepwise_tradeoff(medium_session, benchmark):
    """Tuple substitution: more queries, bounded live tuples."""
    session, org = medium_session
    boss = org.root_manager_name()
    goal = f"works_dir_for(X, {boss}), empl(_, X, S, _), less(S, 60000)"

    answers, stats = benchmark(lambda: session.ask_stepwise(goal))
    direct = session.ask(goal)
    print(f"\n[E10] stepwise: {stats.queries_issued} queries, "
          f"max {stats.max_live_tuples} live tuples, "
          f"{stats.cache_hits} cache hits; answers match direct: "
          f"{ {a['X'] for a in answers} == {a['X'] for a in direct} }")
    assert {a["X"] for a in answers} == {a["X"] for a in direct}
