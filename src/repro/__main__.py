"""``python -m repro`` — a self-contained demonstration of the pipeline.

Generates a small organisation, loads the paper's views, and prints the
translation trace and answers for one query per subsystem: a conjunctive
view query (Examples 4-1/5-1/6-2), a value-bound contradiction (§6.1),
and a recursive query under all strategies (Example 7-1).
"""

from __future__ import annotations

import sys

from .coupling.session import PrologDbSession
from .dbms.workload import generate_org
from .schema.empdep import ALL_VIEWS_SOURCE


def main(argv: list[str] | None = None) -> int:
    seed = 42
    if argv:
        try:
            seed = int(argv[0])
        except ValueError:
            print(f"usage: python -m repro [seed]", file=sys.stderr)
            return 2

    session = PrologDbSession()
    org = generate_org(depth=3, branching=2, staff_per_dept=4, seed=seed)
    session.load_org(org)
    session.consult(ALL_VIEWS_SOURCE)  # works_dir_for, same_manager, works_for

    employee = org.employees[0].nam
    boss = org.root_manager_name()

    print("=" * 72)
    print("repro: An Optimizing Prolog Front-End to a Relational Query System")
    print(f"       (SIGMOD 1984 reproduction; seed={seed}, "
          f"{org.employee_count} employees, {org.department_count} departments)")
    print("=" * 72)

    goal = f"same_manager(X, {employee})"
    print(f"\n:- {goal}.")
    trace = session.explain(goal)
    print(f"\nDBCL before optimization ({len(trace.dbcl.rows)} rows):")
    print(trace.dbcl_text)
    print(f"\nDBCL after Algorithm 2 ({trace.simplification.describe()}):")
    print(trace.optimized_dbcl_text)
    print("\nGenerated SQL:")
    print(trace.sql_text)
    answers = session.ask(goal)
    print(f"\nAnswers: {sorted(a['X'] for a in answers)}")

    print("\n" + "-" * 72)
    contradiction = f"works_dir_for(X, {employee}), empl(_, X, S, _), less(S, 2000)"
    print(f":- {contradiction}.")
    session.database.stats.reset()
    empty = session.ask(contradiction)
    print(f"Answers: {empty}  (external queries sent: "
          f"{session.database.stats.queries_executed} — the valuebound "
          "contradiction was caught locally)")

    print("\n" + "-" * 72)
    print(f":- works_for(People, {boss}).   % recursive view")
    for strategy in ("naive", "topdown", "bottomup"):
        run = session.solve_recursive("works_for", high=boss, strategy=strategy)
        print(f"  {strategy:<9} answers={len(run.pairs):<4} "
              f"queries={run.stats.queries_issued:<3} "
              f"frontier sizes={run.stats.frontier_sizes}")

    session.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
