"""Unit tests for unification and the SLD engine."""

import pytest

from repro.errors import ExistenceError, InstantiationError, PrologError
from repro.prolog import Engine, KnowledgeBase
from repro.prolog.engine import StepBudgetExceeded
from repro.prolog.terms import Atom, Number, Struct, atom, number, struct, var
from repro.prolog.unify import EMPTY_SUBSTITUTION, Substitution, match, unify

pytestmark = pytest.mark.smoke


class TestUnify:
    def test_atoms(self):
        assert unify(atom("a"), atom("a")) is not None
        assert unify(atom("a"), atom("b")) is None

    def test_variable_binding(self):
        subst = unify(var("X"), atom("a"))
        assert subst is not None
        assert subst.apply(var("X")) == atom("a")

    def test_structs(self):
        subst = unify(struct("f", var("X"), atom("b")), struct("f", atom("a"), var("Y")))
        assert subst.apply(var("X")) == atom("a")
        assert subst.apply(var("Y")) == atom("b")

    def test_functor_clash(self):
        assert unify(struct("f", var("X")), struct("g", var("X"))) is None

    def test_arity_clash(self):
        assert unify(struct("f", atom("a")), struct("f", atom("a"), atom("b"))) is None

    def test_shared_variable_consistency(self):
        subst = unify(
            struct("f", var("X"), var("X")), struct("f", atom("a"), var("Y"))
        )
        assert subst is not None
        assert subst.apply(var("Y")) == atom("a")

    def test_clash_through_shared_variable(self):
        assert (
            unify(struct("f", var("X"), var("X")), struct("f", atom("a"), atom("b")))
            is None
        )

    def test_occurs_check(self):
        assert unify(var("X"), struct("f", var("X")), occurs_check=True) is None
        # Without the check the binding is made (classic Prolog behaviour).
        assert unify(var("X"), struct("f", var("X"))) is not None

    def test_chained_bindings_resolve(self):
        s = EMPTY_SUBSTITUTION.bind(var("X"), var("Y")).bind(var("Y"), atom("a"))
        assert s.apply(var("X")) == atom("a")

    def test_match_one_way(self):
        subst = match(struct("f", var("X")), struct("f", atom("a")))
        assert subst.apply(var("X")) == atom("a")
        # Instance variables must not be bound by matching.
        assert match(struct("f", atom("a")), struct("f", var("Y"))) is None

    def test_substitution_restrict(self):
        s = unify(struct("f", var("X"), var("Y")), struct("f", atom("a"), number(1)))
        answer = s.restrict([var("X"), var("Y")])
        assert answer == {var("X"): atom("a"), var("Y"): Number(1)}


@pytest.fixture
def family_engine():
    kb = KnowledgeBase()
    kb.consult(
        """
        parent(tom, bob).
        parent(tom, liz).
        parent(bob, ann).
        parent(bob, pat).
        parent(pat, jim).
        ancestor(X, Y) :- parent(X, Y).
        ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).
        """
    )
    return Engine(kb)


class TestResolution:
    def test_fact_lookup(self, family_engine):
        answers = family_engine.solve_all("parent(tom, X)")
        values = {a[var("X")] for a in answers}
        assert values == {atom("bob"), atom("liz")}

    def test_ground_query(self, family_engine):
        assert family_engine.succeeds("parent(tom, bob)")
        assert not family_engine.succeeds("parent(bob, tom)")

    def test_conjunction(self, family_engine):
        answers = family_engine.solve_all("parent(tom, X), parent(X, Y)")
        pairs = {(a[var("X")].name, a[var("Y")].name) for a in answers}
        assert pairs == {("bob", "ann"), ("bob", "pat")}

    def test_recursion(self, family_engine):
        answers = family_engine.solve_all("ancestor(tom, X)")
        names = {a[var("X")].name for a in answers}
        assert names == {"bob", "liz", "ann", "pat", "jim"}

    def test_solution_order_depth_first(self, family_engine):
        answers = family_engine.solve_all("ancestor(tom, X)")
        names = [a[var("X")].name for a in answers]
        # Direct children first (clause order), then descendants.
        assert names[0] == "bob"

    def test_max_solutions(self, family_engine):
        answers = family_engine.solve_all("ancestor(tom, X)", limit=2)
        assert len(answers) == 2

    def test_unknown_predicate_fails_quietly(self, family_engine):
        assert not family_engine.succeeds("nonexistent(X)")

    def test_strict_mode_raises(self):
        engine = Engine(strict_procedures=True)
        with pytest.raises(ExistenceError):
            engine.solve_all("nonexistent(X)")

    def test_count_solutions(self, family_engine):
        assert family_engine.count_solutions("parent(bob, X)") == 2

    def test_step_budget(self):
        kb = KnowledgeBase()
        kb.consult("loop :- loop.")
        engine = Engine(kb, max_steps=1000)
        with pytest.raises(StepBudgetExceeded):
            engine.solve_all("loop")


class TestControl:
    def test_true_fail(self):
        engine = Engine()
        assert engine.succeeds("true")
        assert not engine.succeeds("fail")

    def test_disjunction(self, family_engine):
        answers = family_engine.solve_all("parent(tom, X) ; parent(bob, X)")
        names = {a[var("X")].name for a in answers}
        assert names == {"bob", "liz", "ann", "pat"}

    def test_cut_commits_to_first_clause(self):
        kb = KnowledgeBase()
        kb.consult(
            """
            first(X) :- p(X), !.
            p(1). p(2). p(3).
            """
        )
        engine = Engine(kb)
        answers = engine.solve_all("first(X)")
        assert [a[var("X")] for a in answers] == [Number(1)]

    def test_cut_prunes_clause_alternatives(self):
        kb = KnowledgeBase()
        kb.consult(
            """
            max(X, Y, X) :- geq(X, Y), !.
            max(_, Y, Y).
            """
        )
        engine = Engine(kb)
        answers = engine.solve_all("max(3, 2, M)")
        assert [a[var("M")] for a in answers] == [Number(3)]
        answers = engine.solve_all("max(1, 2, M)")
        assert [a[var("M")] for a in answers] == [Number(2)]

    def test_cut_is_local_to_clause(self):
        kb = KnowledgeBase()
        kb.consult(
            """
            a(X) :- b(X).
            a(9).
            b(X) :- c(X), !.
            c(1). c(2).
            """
        )
        engine = Engine(kb)
        values = [a[var("X")].value for a in engine.solve_all("a(X)")]
        # The cut inside b/1 prunes c's alternatives but not a's clauses.
        assert values == [1, 9]

    def test_negation_as_failure(self, family_engine):
        assert family_engine.succeeds("not(parent(jim, tom))")
        assert not family_engine.succeeds("not(parent(tom, bob))")

    def test_negation_with_bound_variable(self, family_engine):
        answers = family_engine.solve_all("parent(X, jim), not(parent(X, ann))")
        assert [a[var("X")].name for a in answers] == ["pat"]


class TestBuiltins:
    def test_comparisons_on_numbers(self):
        engine = Engine()
        assert engine.succeeds("less(1, 2)")
        assert not engine.succeeds("less(2, 1)")
        assert engine.succeeds("geq(2, 2)")
        assert engine.succeeds("neq(1, 2)")
        assert not engine.succeeds("neq(1, 1)")

    def test_comparisons_on_atoms(self):
        engine = Engine()
        assert engine.succeeds("less(abc, abd)")
        assert engine.succeeds("neq(jones, smiley)")

    def test_mixed_comparison_rejected(self):
        engine = Engine()
        with pytest.raises(PrologError):
            engine.solve_all("less(1, abc)")

    def test_unbound_comparison_raises(self):
        engine = Engine()
        with pytest.raises(InstantiationError):
            engine.solve_all("less(X, 2)")

    def test_eq_unifies(self):
        engine = Engine()
        answers = engine.solve_all("eq(X, 3)")
        assert answers[0][var("X")] == Number(3)

    def test_is_arithmetic(self):
        engine = Engine()
        answers = engine.solve_all("X is 2 + 3 * 4")
        assert answers[0][var("X")] == Number(14)

    def test_findall(self, family_engine):
        answers = family_engine.solve_all("findall(X, parent(tom, X), L)")
        from repro.prolog.terms import list_items

        items = list_items(answers[0][var("L")])
        assert items == [atom("bob"), atom("liz")]

    def test_findall_empty(self, family_engine):
        answers = family_engine.solve_all("findall(X, parent(jim, X), L)")
        from repro.prolog.terms import list_items

        assert list_items(answers[0][var("L")]) == []

    def test_between(self):
        engine = Engine()
        values = [a[var("X")].value for a in engine.solve_all("between(1, 4, X)")]
        assert values == [1, 2, 3, 4]

    def test_member(self):
        engine = Engine()
        values = [a[var("X")].name for a in engine.solve_all("member(X, [a, b])")]
        assert values == ["a", "b"]

    def test_assert_and_query(self):
        engine = Engine()
        engine.solve_all("assertz(city(nyc))")
        assert engine.succeeds("city(nyc)")

    def test_asserta_orders_first(self):
        engine = Engine()
        engine.solve_all("assertz(n(1))")
        engine.solve_all("asserta(n(0))")
        values = [a[var("X")].value for a in engine.solve_all("n(X)")]
        assert values == [0, 1]

    def test_retract(self):
        engine = Engine()
        engine.solve_all("assertz(city(nyc))")
        engine.solve_all("retract(city(nyc))")
        assert not engine.succeeds("city(nyc)")

    def test_retract_fails_when_absent(self):
        engine = Engine()
        assert not engine.succeeds("retract(city(nyc))")

    def test_assert_rule(self):
        engine = Engine()
        engine.solve_all("assertz((q(X) :- p(X)))")
        engine.solve_all("assertz(p(1))")
        assert engine.succeeds("q(1)")

    def test_var_nonvar(self):
        engine = Engine()
        assert engine.succeeds("var(X)")
        assert engine.succeeds("nonvar(a)")
        assert not engine.succeeds("var(a)")

    def test_ground(self):
        engine = Engine()
        assert engine.succeeds("ground(f(a, 1))")
        assert not engine.succeeds("ground(f(a, X))")

    def test_length(self):
        engine = Engine()
        answers = engine.solve_all("length([a, b, c], N)")
        assert answers[0][var("N")] == Number(3)


class TestKnowledgeBase:
    def test_first_argument_indexing_candidates(self):
        kb = KnowledgeBase()
        for i in range(100):
            kb.assert_fact("empl", f"e{i}", f"name{i}", 10000 + i, 1)
        goal = struct("empl", atom("e5"), var("N"), var("S"), var("D"))
        candidates = list(kb.clauses_for(goal))
        assert len(candidates) == 1

    def test_unindexed_goal_scans_all(self):
        kb = KnowledgeBase()
        for i in range(10):
            kb.assert_fact("empl", f"e{i}", f"name{i}", 10000 + i, 1)
        goal = struct("empl", var("E"), var("N"), var("S"), var("D"))
        assert len(list(kb.clauses_for(goal))) == 10

    def test_rules_disable_indexing_correctly(self):
        kb = KnowledgeBase()
        kb.assert_fact("p", "a")
        kb.consult("p(X) :- q(X).")
        goal = struct("p", atom("b"))
        # All clauses must be candidates once a rule exists.
        assert len(list(kb.clauses_for(goal))) == 2

    def test_retract_all(self):
        kb = KnowledgeBase()
        kb.assert_fact("p", "a")
        kb.assert_fact("p", "b")
        assert kb.retract_all(("p", 1)) == 2
        assert kb.fact_count(("p", 1)) == 0

    def test_snapshot_is_independent(self):
        kb = KnowledgeBase()
        kb.assert_fact("p", "a")
        copy = kb.snapshot()
        copy.assert_fact("p", "b")
        assert kb.fact_count(("p", 1)) == 1
        assert copy.fact_count(("p", 1)) == 2

    def test_consult_rejects_directives(self):
        kb = KnowledgeBase()
        with pytest.raises(PrologError):
            kb.consult(":- initialization(main).")

    def test_len_counts_clauses(self):
        kb = KnowledgeBase()
        kb.consult("a. b. c :- a.")
        assert len(kb) == 3


class TestHotPathStructures:
    """The overhauled substitution chain and knowledge-base indexing."""

    def test_long_bind_chain_resolves_across_checkpoints(self):
        subst = EMPTY_SUBSTITUTION
        for i in range(200):  # crosses several flattening checkpoints
            subst = subst.bind(var(f"V{i}"), var(f"V{i + 1}"))
        subst = subst.bind(var("V200"), atom("end"))
        assert subst.apply(var("V0")) == atom("end")
        assert len(subst) == 201
        assert var("V137") in subst

    def test_rebinding_newest_wins(self):
        subst = EMPTY_SUBSTITUTION.bind(var("X"), atom("old")).bind(
            var("X"), atom("new")
        )
        assert subst.walk(var("X")) == atom("new")
        assert len(subst) == 1

    def test_apply_returns_identical_object_for_ground_subterms(self):
        ground = struct("g", atom("a"), number(1))
        subst = EMPTY_SUBSTITUTION.bind(var("X"), atom("b"))
        resolved = subst.apply(struct("f", ground, var("X")))
        assert resolved == struct("f", ground, atom("b"))
        assert resolved.args[0] is ground
        # Memoized: a second application returns the cached result.
        assert subst.apply(ground) is ground

    def test_multi_position_indexing(self):
        kb = KnowledgeBase()
        kb.consult("t(a, b). t(a, c). t(b, c).")
        # Second-position constant is just as selective as the first.
        assert len(list(kb.clauses_for(struct("t", var("X"), atom("b"))))) == 1
        assert len(list(kb.clauses_for(struct("t", atom("a"), var("Y"))))) == 2
        # A constant with no bucket proves emptiness without a scan.
        assert list(kb.clauses_for(struct("t", atom("z"), var("Y")))) == []
        # Both constants: the smaller bucket wins, unification finishes.
        engine = Engine(kb)
        assert engine.succeeds("t(a, c)")
        assert not engine.succeeds("t(b, b)")

    def test_bound_variable_drives_index(self):
        """A join variable bound earlier in the proof becomes an indexed
        probe — the core of the hot-path fix."""
        kb = KnowledgeBase()
        for i in range(500):
            kb.assert_fact("edge", f"n{i}", f"n{i + 1}")
        engine = Engine(kb)
        engine._steps = 0
        answers = engine.solve_all("edge(n0, X), edge(X, Y), edge(Y, Z)")
        assert len(answers) == 1
        # Linear probing: a handful of inferences, not 3 × 500 scans.
        assert engine._steps < 50

    def test_rule_heads_with_constants_stay_indexed(self):
        kb = KnowledgeBase()
        kb.consult("sign(pos, X) :- greater(X, 0). sign(neg, X) :- less(X, 0).")
        engine = Engine(kb)
        assert engine.succeeds("sign(pos, 5)")
        assert engine.succeeds("sign(neg, -3)")
        assert not engine.succeeds("sign(pos, -3)")
        # Position 0 is indexable (constants), position 1 is not (variables).
        assert len(list(kb.clauses_for(struct("sign", atom("pos"), var("X"))))) == 1

    def test_ground_fact_hash_set(self):
        kb = KnowledgeBase()
        kb.assert_fact("p", "a", 1)
        assert kb.has_ground_fact(struct("p", atom("a"), number(1)))
        assert not kb.has_ground_fact(struct("p", atom("a"), number(2)))
        from repro.prolog.terms import Clause

        assert kb.retract(Clause(struct("p", atom("a"), number(1))))
        assert not kb.has_ground_fact(struct("p", atom("a"), number(1)))

    def test_snapshot_copy_on_write_both_directions(self):
        kb = KnowledgeBase()
        kb.assert_fact("p", "a")
        copy = kb.snapshot()
        kb.assert_fact("p", "b")  # mutate the *original* after snapshotting
        copy.assert_fact("p", "c")
        assert {c.head.args[0].name for c in kb.all_clauses(("p", 1))} == {"a", "b"}
        assert {c.head.args[0].name for c in copy.all_clauses(("p", 1))} == {"a", "c"}

    def test_snapshot_shares_untouched_procedures(self):
        kb = KnowledgeBase()
        kb.assert_fact("p", "a")
        kb.assert_fact("q", "b")
        copy = kb.snapshot()
        copy.assert_fact("p", "c")
        assert copy._procedures[("q", 1)] is kb._procedures[("q", 1)]
        assert copy._procedures[("p", 1)] is not kb._procedures[("p", 1)]

    def test_retract_during_iteration_skips_no_live_clause(self):
        """Removal tombstones in place: a clause retracted mid-proof must
        not shift a *different* live clause out from under the engine."""
        kb = KnowledgeBase()
        kb.consult("q(a, 1). q(a, 2). q(a, 3).")
        engine = Engine(kb)
        answers = engine.solve_all("q(a, X), (retract(q(a, 1)) ; true)")
        values = [a[var("X")].value for a in answers]
        assert values == [1, 1, 2, 3]  # q(a,2) still visited, once

    def test_assertz_into_resolving_predicate_is_not_visited(self):
        """Logical-update view: clauses appended while their own predicate
        is being resolved are invisible to the in-flight iteration —
        without it this terminating program would loop forever."""
        kb = KnowledgeBase()
        kb.consult("c(1). c(2). grow(X) :- c(X), assertz(c(3)).")
        engine = Engine(kb)
        values = [a[var("X")].value for a in engine.solve_all("grow(X)")]
        assert values == [1, 2]
        assert kb.fact_count(("c", 1)) == 4  # but both asserts landed
        # A *fresh* resolution sees them.
        assert engine.count_solutions("c(X)") == 4

    def test_ground_pattern_retracts_unifying_nonground_fact(self):
        """Standard retract/1: a ground pattern unifies with ``p(X).``."""
        from repro.prolog.terms import Clause

        kb = KnowledgeBase()
        kb.consult("p(X).")
        assert kb.retract(Clause(struct("p", atom("a"))))
        assert kb.fact_count(("p", 1)) == 0
        # Assertion order decides which unifying clause goes first.
        kb2 = KnowledgeBase()
        kb2.consult("p(X). p(a).")
        assert kb2.retract(Clause(struct("p", atom("a"))))
        remaining = kb2.all_clauses(("p", 1))
        assert len(remaining) == 1 and remaining[0].head == struct("p", atom("a"))

    def test_strict_mode_raises_after_all_clauses_retracted(self):
        from repro.prolog.terms import Clause

        kb = KnowledgeBase()
        kb.consult("p(a).")
        assert kb.retract(Clause(struct("p", atom("a"))))
        engine = Engine(kb, strict_procedures=True)
        with pytest.raises(ExistenceError):
            engine.solve_all("p(X)")

    def test_empty_substitution_apply_is_identity_without_caching(self):
        term = struct("f", struct("g", atom("a")), var("X"))
        assert EMPTY_SUBSTITUTION.apply(term) is term
        assert EMPTY_SUBSTITUTION._apply_cache is None  # no leak on the singleton

    def test_retract_keeps_candidates_consistent(self):
        kb = KnowledgeBase()
        for i in range(50):
            kb.assert_fact("p", f"c{i}")
        from repro.prolog.terms import Clause

        for i in range(0, 50, 2):
            assert kb.retract(Clause(struct("p", atom(f"c{i}"))))
        assert kb.fact_count(("p", 1)) == 25
        engine = Engine(kb)
        assert not engine.succeeds("p(c0)")
        assert engine.succeeds("p(c1)")
        assert engine.count_solutions("p(X)") == 25
