"""Synthetic ``empdep`` workload generator.

The paper evaluates against a corporate employee/department database we do
not have; this generator produces seeded organisational hierarchies that
satisfy every integrity constraint of Example 3-2:

* ``eno`` and ``nam`` are both keys of ``empl`` (``funcdep`` pairs);
* salaries respect ``valuebound(empl, sal, 10000, 90000)``;
* every ``empl.dno`` references a ``dept`` (``refint``);
* every ``dept.mgr`` references an ``empl.eno`` and no two departments
  share a manager (``funcdep(dept, [mgr], [dno])``).

Departments form a tree of configurable ``depth`` and ``branching``; the
manager of a department is an employee of its *parent* department, so
``works_dir_for`` chains walk the tree and recursion depth is exactly
controllable — the knob Experiment E7 sweeps.  The root department's
manager belongs to the root itself (the self-managed "top manager" every
real org chart has), which recursion executors must survive via
seen-set cycle handling.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from ..schema.catalog import DatabaseSchema
from ..schema.empdep import empdep_schema
from .sqlite_backend import ExternalDatabase

FUNCTIONS = (
    "sales", "research", "production", "finance", "legal",
    "marketing", "support", "logistics",
)


@dataclass(frozen=True)
class Employee:
    eno: int
    nam: str
    sal: int
    dno: int

    def as_row(self) -> tuple:
        return (self.eno, self.nam, self.sal, self.dno)


@dataclass(frozen=True)
class Department:
    dno: int
    fct: str
    mgr: int

    def as_row(self) -> tuple:
        return (self.dno, self.fct, self.mgr)


@dataclass
class OrgHierarchy:
    """A generated organisation with its tree structure kept for oracles."""

    employees: list[Employee]
    departments: list[Department]
    #: dno -> parent dno (root maps to itself)
    parent_dept: dict[int, int]
    #: dno -> depth in the tree (root = 0)
    dept_depth: dict[int, int]
    seed: int

    @property
    def employee_count(self) -> int:
        return len(self.employees)

    @property
    def department_count(self) -> int:
        return len(self.departments)

    @property
    def max_depth(self) -> int:
        return max(self.dept_depth.values())

    def employee_by_name(self, name: str) -> Optional[Employee]:
        for employee in self.employees:
            if employee.nam == name:
                return employee
        return None

    def manager_name_of(self, employee: Employee) -> str:
        """The name works_dir_for pairs ``employee`` with."""
        department = next(
            d for d in self.departments if d.dno == employee.dno
        )
        manager = next(e for e in self.employees if e.eno == department.mgr)
        return manager.nam

    def works_dir_for_pairs(self) -> set[tuple[str, str]]:
        """Oracle for the works_dir_for view.

        With ``acyclic_top`` data the root department's manager id has no
        ``empl`` tuple, so root staff have no superior and drop out —
        matching the view's join semantics.
        """
        managers = {d.dno: d.mgr for d in self.departments}
        by_eno = {e.eno: e for e in self.employees}
        return {
            (e.nam, by_eno[managers[e.dno]].nam)
            for e in self.employees
            if managers[e.dno] in by_eno
        }

    def works_for_pairs(self) -> set[tuple[str, str]]:
        """Oracle for the transitive works_for view (cycle-safe)."""
        direct = self.works_dir_for_pairs()
        successors: dict[str, set[str]] = {}
        for low, high in direct:
            successors.setdefault(low, set()).add(high)
        closure: set[tuple[str, str]] = set()
        for start in successors:
            seen: set[str] = set()
            frontier = set(successors.get(start, ()))
            while frontier:
                next_frontier: set[str] = set()
                for high in frontier:
                    if high in seen:
                        continue
                    seen.add(high)
                    closure.add((start, high))
                    next_frontier.update(successors.get(high, ()))
                frontier = next_frontier
        return closure

    def root_manager_name(self) -> str:
        """The top human manager.

        For cyclic orgs this is the root department's own manager; for
        ``acyclic_top`` orgs (ghost root manager) it is the manager of the
        first child department — the highest employee with subordinates.
        """
        root = next(d for d, p in self.parent_dept.items() if d == p)
        department = next(d for d in self.departments if d.dno == root)
        by_eno = {e.eno: e for e in self.employees}
        manager = by_eno.get(department.mgr)
        if manager is not None:
            return manager.nam
        child = next(
            d for d in self.departments
            if self.parent_dept[d.dno] == root and d.dno != root
        )
        return by_eno[child.mgr].nam

    def leaf_employee_name(self) -> str:
        """Some employee at maximal depth (longest upward chain)."""
        deepest = max(self.dept_depth, key=self.dept_depth.get)
        employee = next(e for e in self.employees if e.dno == deepest)
        return employee.nam


def generate_org(
    depth: int = 3,
    branching: int = 2,
    staff_per_dept: int = 3,
    seed: int = 0,
    acyclic_top: bool = False,
) -> OrgHierarchy:
    """Generate a department tree with the given shape.

    ``depth`` levels below the root; each department has ``branching``
    children (until ``depth`` is reached) and ``staff_per_dept`` employees
    beyond its managerial duties.

    ``acyclic_top`` gives the root department a *ghost* manager id carried
    by no employee, making the management graph acyclic as Example 7-1's
    narrative assumes.  This deliberately violates
    ``refint(dept,[mgr],empl,[eno])`` — pair it with
    ``empdep_constraints(include_mgr_refint=False)``.
    """
    if depth < 0 or branching < 1 or staff_per_dept < 1:
        raise ValueError("depth >= 0, branching >= 1, staff_per_dept >= 1 required")
    rng = random.Random(seed)

    parent_dept: dict[int, int] = {}
    dept_depth: dict[int, int] = {}
    next_dno = [1]

    def make_dept(parent: Optional[int], level: int) -> int:
        dno = next_dno[0]
        next_dno[0] += 1
        parent_dept[dno] = parent if parent is not None else dno
        dept_depth[dno] = level
        if level < depth:
            for _ in range(branching):
                make_dept(dno, level + 1)
        return dno

    root = make_dept(None, 0)

    employees: list[Employee] = []
    staff_of: dict[int, list[int]] = {}
    next_eno = [1]
    for dno in sorted(dept_depth):
        members = []
        for _ in range(staff_per_dept):
            eno = next_eno[0]
            next_eno[0] += 1
            employees.append(
                Employee(
                    eno=eno,
                    nam=f"emp{eno:05d}",
                    sal=rng.randrange(10000, 90001, 500),
                    dno=dno,
                )
            )
            members.append(eno)
        staff_of[dno] = members

    # Managers: dept d is managed by an employee of parent(d); each
    # employee manages at most one department (mgr is a key of dept).
    used_managers: set[int] = set()
    departments: list[Department] = []
    ghost_manager = 0  # an eno no employee carries (enos start at 1)
    for dno in sorted(dept_depth):
        if acyclic_top and dno == root:
            departments.append(
                Department(dno=dno, fct=rng.choice(FUNCTIONS), mgr=ghost_manager)
            )
            continue
        pool = [e for e in staff_of[parent_dept[dno]] if e not in used_managers]
        if not pool:
            raise ValueError(
                "staff_per_dept too small to give every department a "
                "distinct manager from its parent; increase staff_per_dept "
                f"above branching={branching}"
            )
        manager = rng.choice(pool)
        used_managers.add(manager)
        departments.append(
            Department(dno=dno, fct=rng.choice(FUNCTIONS), mgr=manager)
        )

    return OrgHierarchy(
        employees=employees,
        departments=departments,
        parent_dept=parent_dept,
        dept_depth=dept_depth,
        seed=seed,
    )


def load_org(database: ExternalDatabase, org: OrgHierarchy) -> tuple[str, ...]:
    """Load a generated organisation; returns the relations it replaced."""
    with database.transaction():
        database.clear_relation("empl")
        database.clear_relation("dept")
        database.insert_rows("empl", [e.as_row() for e in org.employees])
        database.insert_rows("dept", [d.as_row() for d in org.departments])
    return ("empl", "dept")


def make_loaded_database(
    depth: int = 3,
    branching: int = 2,
    staff_per_dept: int = 3,
    seed: int = 0,
    schema: Optional[DatabaseSchema] = None,
) -> tuple[ExternalDatabase, OrgHierarchy]:
    """Convenience: a fresh in-memory empdep database with generated data."""
    schema = schema if schema is not None else empdep_schema()
    database = ExternalDatabase(schema)
    org = generate_org(depth, branching, staff_per_dept, seed)
    load_org(database, org)
    return database, org
