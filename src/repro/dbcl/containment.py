"""Containment mappings (homomorphisms) between DBCL tableaux.

Syntactic tableau minimization (paper section 6.0/6.4 step 6, following
Aho–Sagiv–Ullman and Sagiv 1983) rests on *containment mappings*: a row of
a tableau is redundant exactly when the tableau maps homomorphically onto
the sub-tableau without that row, fixing target symbols and constants.

Because our DBCL subset includes inequality comparisons, a mapping must
also respect them; we use the standard conservative condition (Klug): the
image of every comparison must be syntactically present in (or be a ground
comparison that evaluates to true in) the target predicate.  This preserves
soundness — a removed row can never change the answer — at the cost of
occasionally keeping a removable row, which matches the paper's own
"prototype ... covers a large class of possible improvements" stance.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional

from .predicate import Comparison, DbclPredicate, RelRow
from .symbols import (
    ConstSymbol,
    JoinableSymbol,
    Symbol,
    TargetSymbol,
    VarSymbol,
    is_star,
)

HomMapping = dict[JoinableSymbol, JoinableSymbol]


def _extend_for_rows(
    source_row: RelRow,
    target_row: RelRow,
    mapping: HomMapping,
    frozen: frozenset[JoinableSymbol],
) -> Optional[HomMapping]:
    """Extend ``mapping`` so that h(source_row) == target_row, or None."""
    if source_row.tag != target_row.tag:
        return None
    extended = dict(mapping)
    for source_cell, target_cell in zip(source_row.entries, target_row.entries):
        if is_star(source_cell) and is_star(target_cell):
            continue
        if is_star(source_cell) != is_star(target_cell):
            return None
        source_sym: JoinableSymbol = source_cell  # type: ignore[assignment]
        target_sym: JoinableSymbol = target_cell  # type: ignore[assignment]
        if isinstance(source_sym, (ConstSymbol, TargetSymbol)) or source_sym in frozen:
            # Constants, targets, and frozen symbols must map to themselves.
            if source_sym != target_sym:
                return None
            continue
        bound = extended.get(source_sym)
        if bound is None:
            extended[source_sym] = target_sym
        elif bound != target_sym:
            return None
    return extended


def _comparison_image(comparison: Comparison, mapping: HomMapping) -> Comparison:
    def image(symbol: JoinableSymbol) -> JoinableSymbol:
        if isinstance(symbol, (ConstSymbol, TargetSymbol)):
            return symbol
        return mapping.get(symbol, symbol)

    return Comparison(comparison.op, image(comparison.left), image(comparison.right))


def _comparisons_satisfied(
    source: DbclPredicate, target: DbclPredicate, mapping: HomMapping
) -> bool:
    """Every source comparison must hold in the target under the mapping."""
    available = set()
    for comparison in target.comparisons:
        available.add((comparison.op, comparison.left, comparison.right))
        mirrored = comparison.mirrored()
        available.add((mirrored.op, mirrored.left, mirrored.right))
    for comparison in source.comparisons:
        mapped = _comparison_image(comparison, mapping)
        if mapped.is_ground:
            if mapped.evaluate_ground():
                continue
            return False
        if (mapped.op, mapped.left, mapped.right) in available:
            continue
        return False
    return True


def find_homomorphism(
    source: DbclPredicate,
    target: DbclPredicate,
    frozen: Iterable[JoinableSymbol] = (),
) -> Optional[HomMapping]:
    """A containment mapping from ``source`` onto ``target``.

    The mapping fixes constants and target symbols (and any extra
    ``frozen`` symbols), sends every source row onto some target row of the
    same tag, and satisfies all source comparisons.  Returns the symbol
    mapping, or ``None`` if no such mapping exists.

    Search is backtracking over row images with a most-constrained-first
    row order; tableaux here are small (a handful of rows), so this is
    comfortably fast despite NP-hardness in general.
    """
    frozen_set = frozenset(frozen)
    targets_by_tag: dict[str, list[RelRow]] = {}
    for row in target.rows:
        targets_by_tag.setdefault(row.tag, []).append(row)

    # Order source rows by how few candidate images they have.
    order = sorted(
        range(len(source.rows)),
        key=lambda i: len(targets_by_tag.get(source.rows[i].tag, ())),
    )

    def search(position: int, mapping: HomMapping) -> Optional[HomMapping]:
        if position == len(order):
            if _comparisons_satisfied(source, target, mapping):
                return mapping
            return None
        source_row = source.rows[order[position]]
        for candidate in targets_by_tag.get(source_row.tag, ()):
            extended = _extend_for_rows(source_row, candidate, mapping, frozen_set)
            if extended is not None:
                found = search(position + 1, extended)
                if found is not None:
                    return found
        return None

    return search(0, {})


def contains(general: DbclPredicate, specific: DbclPredicate) -> bool:
    """Conservative containment test: answers(specific) ⊆ answers(general)?

    True when a containment mapping exists from ``general`` onto
    ``specific``.  For pure conjunctive queries this is exact
    (Chandra–Merlin); with comparisons it is sound but not complete.
    Both predicates must share target symbols for the comparison to make
    sense; differing target sets are never contained.
    """
    if set(general.target_symbols()) != set(specific.target_symbols()):
        return False
    return find_homomorphism(general, specific) is not None


def equivalent(left: DbclPredicate, right: DbclPredicate) -> bool:
    """Conservative equivalence: mutual containment."""
    return contains(left, right) and contains(right, left)
