"""Symbols of the DBCL tableau language (paper section 3).

DBCL is a *variable-free* subset of PROLOG: logic variables of the original
goal are re-encoded as atoms so the metalanguage can manipulate them without
instantiation.  The encoding is the paper's:

* constants translate into themselves (:class:`ConstSymbol`);
* universally quantified variables of the goal clause — the *target
  attributes* of the query — are prefixed with ``t_`` (:class:`TargetSymbol`);
* other variables are prefixed with ``v_`` and carry a number
  distinguishing different variables addressing the same attribute
  (:class:`VarSymbol`);
* ``*`` marks attributes that do not apply to a row (:data:`STAR`).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Union

from ..errors import DbclError

Value = Union[int, float, str]


class ParamMarker(str):
    """A placeholder constant standing for a query parameter.

    The plan cache compiles a goal *shape* once by substituting each goal
    constant with a marker; the marker flows through metaevaluation and
    Algorithm 2 like any other string constant and is replaced by a ``?``
    placeholder at SQL translation time.  Being a ``str`` subclass it is
    hashable/comparable exactly like a constant, but stages that must not
    reason about a concrete value (the valuebound constant check) can
    recognise and skip it — any stage that *would* consult its value marks
    the plan constant-sensitive instead.
    """

    __slots__ = ()


def is_param_marker(value: object) -> bool:
    """True when ``value`` is a plan-cache parameter placeholder."""
    return isinstance(value, ParamMarker)


class ConsultationWitness:
    """Records whether a marker's *value* was consulted (see below)."""

    __slots__ = ("consulted",)

    def __init__(self):
        self.consulted = False


_MARKER_WATCHERS: list[ConsultationWitness] = []


@contextmanager
def watch_marker_consultation():
    """Detect value-level reasoning about parameter markers.

    Every ordering decision about constants funnels through
    :func:`compare_values` (ground evaluation, the inequality graph's
    constant ordering, redundancy implication).  While this context is
    active, any such call involving a :class:`ParamMarker` flips the
    yielded witness — proof that the optimization pipeline consulted a
    concrete value the plan cache was trying to abstract, so the plan
    must fall back to exact-constant caching.  Equality-only reasoning
    (chase merges, row dedup, tableau containment) needs no tracking:
    markers behave there like any pair of distinct constants, which at
    worst under-simplifies or proves the marker plan empty — both
    detected structurally.
    """
    witness = ConsultationWitness()
    _MARKER_WATCHERS.append(witness)
    try:
        yield witness
    finally:
        _MARKER_WATCHERS.remove(witness)


def _note_marker_consultation() -> None:
    for witness in _MARKER_WATCHERS:
        witness.consulted = True


@dataclass(frozen=True, slots=True)
class Star:
    """The ``*`` filler for non-applicable attributes."""

    def __str__(self) -> str:
        return "*"

    def __repr__(self) -> str:
        return "STAR"


STAR = Star()


@dataclass(frozen=True, slots=True)
class TargetSymbol:
    """A ``t_``-prefixed symbol: a target (output) attribute of the query."""

    name: str

    def __post_init__(self):
        if not self.name:
            raise DbclError("target symbol needs a name")

    def __str__(self) -> str:
        return f"t_{self.name}"

    def __repr__(self) -> str:
        return f"TargetSymbol({self.name!r})"


@dataclass(frozen=True, slots=True)
class VarSymbol:
    """A ``v_``-prefixed symbol: an existential variable.

    ``base`` typically names the attribute the variable addresses and
    ``number`` distinguishes different variables on the same attribute, as
    the paper prescribes (``v_Eno1``, ``v_Eno4``, …).  ``number`` 0 renders
    without a digit (the paper writes ``v_D`` and ``v_M`` for singletons).
    """

    base: str
    number: int = 0

    def __post_init__(self):
        if not self.base:
            raise DbclError("variable symbol needs a base name")
        if self.number < 0:
            raise DbclError("variable symbol number must be non-negative")

    def __str__(self) -> str:
        if self.number:
            return f"v_{self.base}{self.number}"
        return f"v_{self.base}"

    def __repr__(self) -> str:
        return f"VarSymbol({self.base!r}, {self.number})"


@dataclass(frozen=True, slots=True)
class ConstSymbol:
    """A constant: an atom name, a number, or a string literal."""

    value: Value

    def __str__(self) -> str:
        return str(self.value)

    def __repr__(self) -> str:
        return f"ConstSymbol({self.value!r})"

    @property
    def is_numeric(self) -> bool:
        return isinstance(self.value, (int, float))


#: Anything that may fill a tableau cell.
Symbol = Union[Star, TargetSymbol, VarSymbol, ConstSymbol]

#: Anything that may join or be compared: a cell value that is not ``*``.
JoinableSymbol = Union[TargetSymbol, VarSymbol, ConstSymbol]


def is_variable_symbol(symbol: Symbol) -> bool:
    """True for ``t_`` and ``v_`` symbols — the joinable variables."""
    return isinstance(symbol, (TargetSymbol, VarSymbol))


def is_star(symbol: Symbol) -> bool:
    return isinstance(symbol, Star)


def is_constant_symbol(symbol: Symbol) -> bool:
    return isinstance(symbol, ConstSymbol)


def symbol_sort_key(symbol: Symbol) -> tuple[int, str]:
    """A deterministic ordering over symbols (for canonical output)."""
    if isinstance(symbol, Star):
        return (0, "")
    if isinstance(symbol, ConstSymbol):
        return (1, str(symbol.value))
    if isinstance(symbol, TargetSymbol):
        return (2, symbol.name)
    return (3, str(symbol))


def compare_values(left: Value, right: Value) -> int:
    """Total order over constants matching SQLite's comparison semantics.

    Numbers compare numerically, strings lexicographically, and *any*
    number sorts before *any* string.  The optimizer must agree with the
    execution substrate on cross-type comparisons (a chase-propagated
    constant can land a text value in a numeric comparison), so this is
    the single ordering used by ground evaluation, the inequality graph,
    and client-side filtering.  Returns -1, 0, or 1.
    """
    if _MARKER_WATCHERS and (
        isinstance(left, ParamMarker) or isinstance(right, ParamMarker)
    ):
        _note_marker_consultation()
    left_numeric = isinstance(left, (int, float))
    right_numeric = isinstance(right, (int, float))
    if left_numeric and not right_numeric:
        return -1
    if right_numeric and not left_numeric:
        return 1
    if left < right:  # type: ignore[operator]
        return -1
    if left > right:  # type: ignore[operator]
        return 1
    return 0


def parse_symbol(text: str) -> Symbol:
    """Parse the textual form of a symbol (inverse of ``str``).

    ``*`` → STAR; ``t_name`` → target; ``v_Base[digits]`` → variable;
    anything else is a constant (numeric if it looks like a number).
    """
    if text == "*":
        return STAR
    if text.startswith("t_") and len(text) > 2:
        return TargetSymbol(text[2:])
    if text.startswith("v_") and len(text) > 2:
        body = text[2:]
        digits = ""
        while body and body[-1].isdigit():
            digits = body[-1] + digits
            body = body[:-1]
        if not body:
            # Pure digits after v_ : treat the digits as the base name.
            return VarSymbol(digits)
        return VarSymbol(body, int(digits) if digits else 0)
    try:
        if "." in text:
            return ConstSymbol(float(text))
        return ConstSymbol(int(text))
    except ValueError:
        return ConstSymbol(text)
