"""Backend pushdown: recursive CTEs, relation statistics, cost-based plans.

Covers the E15 engine end to end:

* the ``RecursiveQuery`` AST node, its printer, and the ``closure_cte``
  builder (single-seed and batch-seeded forms);
* the ``TransitiveClosure`` CTE strategy — answer-identical to every
  frontier strategy and to the maintained ``IncrementalClosure``, with
  zero per-level commits;
* the statistics-driven recursion planner and the greedy cost-based row
  order for flat plans;
* the backend relation-statistics service (lazy generation-keyed
  refresh, ``ANALYZE``, refresh/hit counters) and the read-pool
  ``PRAGMA optimize`` retirement hook;
* ``EXPLAIN QUERY PLAN`` regressions asserting the catalog-driven
  indexes of PR 2 are *used* by warm prepared statements;
* explicit ``QuelDialect`` behaviour for the new AST nodes;
* the per-phase cold-compile timing breakdown in ``session.stats()``;
* ``ask_many`` batching of warm recursive shapes.
"""

import pytest

from repro.coupling import PrologDbSession
from repro.coupling.global_opt import goal_shape
from repro.coupling.recursion_exec import CTE_MIN_EDGE_ROWS
from repro.dbms import generate_org
from repro.dbms.sqlite_backend import ExternalDatabase
from repro.errors import TranslationError, UnsupportedDialectError
from repro.optimize.costs import greedy_row_order, order_rows
from repro.prolog.reader import parse_goal
from repro.schema import ALL_VIEWS_SOURCE, empdep_constraints, empdep_schema
from repro.sql.ast import (
    ColumnRef,
    Condition,
    Parameter,
    RecursiveQuery,
    SelectItem,
    SqlQuery,
    TableRef,
)
from repro.sql.dialects import QuelDialect, SqlDialect
from repro.sql.printer import print_recursive
from repro.sql.translate import closure_cte, translate


@pytest.fixture(scope="module")
def org():
    return generate_org(depth=4, branching=2, staff_per_dept=4, seed=5)


@pytest.fixture()
def session(org):
    session = PrologDbSession()
    session.load_org(org)
    session.consult(ALL_VIEWS_SOURCE)
    yield session
    session.close()


def answer_set(answers):
    return {frozenset(a.items()) for a in answers}


def edge_query():
    """A hand-built two-column edge SELECT over empl/dept/empl."""
    schema = empdep_schema()
    session = PrologDbSession()
    session.consult(ALL_VIEWS_SOURCE)
    trace = session.explain("works_dir_for(X, Y)")
    session.close()
    return trace.sql


# -- the AST node and builder ----------------------------------------------------------


class TestRecursiveQueryAst:
    def test_closure_cte_prints_with_recursive(self):
        query = closure_cte(edge_query(), frontier=1, result=0)
        text = print_recursive(query, oneline=True)
        assert text.startswith("WITH RECURSIVE reach(node) AS (")
        assert " UNION " in text and "UNION ALL" not in text
        assert text.count("?") == 1
        assert query.parameter_order() == (0,)

    def test_batch_form_threads_a_root_column(self):
        query = closure_cte(edge_query(), frontier=1, result=0, batch_size=3)
        assert query.columns == ("root", "node")
        text = print_recursive(query, oneline=True)
        assert "IN (VALUES (?), (?), (?))" in text
        # one bind slot per VALUES row, all standing for parameter 0
        assert query.parameter_order() == (0, 0, 0)

    def test_step_must_reference_the_cte(self):
        edge = edge_query()
        block = SqlQuery(
            select=(SelectItem(ColumnRef("v1", "nam")),),
            from_tables=(TableRef("empl", "v1"),),
        )
        with pytest.raises(TranslationError):
            RecursiveQuery(
                name="reach",
                columns=("node",),
                base=block,
                step=block,  # no reach reference
                final=block,
            )

    def test_edge_with_parameters_is_rejected(self):
        parameterized = SqlQuery(
            select=(
                SelectItem(ColumnRef("v1", "nam")),
                SelectItem(ColumnRef("v1", "dno")),
            ),
            from_tables=(TableRef("empl", "v1"),),
            where=(Condition("eq", ColumnRef("v1", "sal"), Parameter(0)),),
        )
        with pytest.raises(TranslationError):
            closure_cte(parameterized, frontier=0, result=1)

    def test_identical_endpoints_are_rejected(self):
        edge = edge_query()
        with pytest.raises(TranslationError):
            closure_cte(edge, frontier=0, result=0)


# -- strategy equivalence --------------------------------------------------------------


@pytest.mark.smoke
class TestCteStrategy:
    def test_cte_matches_every_frontier_strategy(self, session, org):
        closure = session.closure_for("works_for")
        leaf = org.leaf_employee_name()
        boss = org.root_manager_name()
        for low, high in ((leaf, None), (None, boss)):
            cte = closure.solve(low=low, high=high, strategy="cte")
            assert cte.stats.strategy == "cte"
            assert cte.stats.queries_issued == 1
            for strategy in ("auto", "topdown", "bottomup"):
                frontier = closure.solve(low=low, high=high, strategy=strategy)
                assert cte.pairs == frontier.pairs, (low, high, strategy)

    def test_cte_path_issues_zero_commits(self, session, org):
        closure = session.closure_for("works_for")
        closure.cte_queries()  # preparation prints happen here
        boss = org.root_manager_name()
        session.database.stats.reset()
        run = closure.solve(high=boss, strategy="cte")
        stats = session.database.stats
        assert run.pairs
        assert stats.commits == 0
        assert stats.sql_prints == 0
        assert stats.prepared_executions == 1

    def test_cte_handles_the_cyclic_top_manager(self, session, org):
        # The root manager manages their own department: a 1-cycle the
        # UNION deduplication must terminate through.
        closure = session.closure_for("works_for")
        boss = org.root_manager_name()
        cte = closure.solve(high=boss, strategy="cte")
        frontier = closure.solve(high=boss, strategy="topdown")
        assert (boss, boss) in cte.pairs
        assert cte.pairs == frontier.pairs

    def test_cte_matches_incremental_closure(self, org):
        maintained = PrologDbSession()
        maintained.load_org(org)
        maintained.consult(ALL_VIEWS_SOURCE)
        maintained.materialize.view("works_for(X, Y)")
        plain = PrologDbSession()
        plain.load_org(org)
        plain.consult(ALL_VIEWS_SOURCE)
        closure = plain.closure_for("works_for")
        leaf = org.leaf_employee_name()
        run = closure.solve(low=leaf, strategy="cte")
        answers = maintained.ask(f"works_for('{leaf}', Y)")
        assert {a["Y"] for a in answers} == {h for _l, h in run.pairs}
        maintained.close()
        plain.close()


# -- the planner -----------------------------------------------------------------------


class TestRecursionPlanner:
    def test_large_edge_views_take_the_interval_probe(self, session, org):
        # PR 7: on a tree-shaped hierarchy above the statistics
        # threshold the planner now prefers the interval labeling over
        # the recursive CTE — reachability as one indexed range probe.
        closure = session.closure_for("works_for")
        plan = closure.plan(low=org.leaf_employee_name(), high=None)
        assert plan.strategy == "interval"
        assert "labeled forest" in plan.reason
        assert plan.estimated_edge_rows is not None
        assert plan.estimated_edge_rows >= CTE_MIN_EDGE_ROWS
        assert closure.last_plan is plan

    def test_tiny_edge_views_keep_the_frontier_loop(self):
        tiny = generate_org(depth=2, branching=1, staff_per_dept=2, seed=5)
        session = PrologDbSession()
        session.load_org(tiny)
        session.consult(ALL_VIEWS_SOURCE)
        closure = session.closure_for("works_for")
        plan = closure.plan(low=tiny.leaf_employee_name(), high=None)
        assert plan.strategy == "bottomup"
        plan = closure.plan(low=None, high=tiny.root_manager_name())
        assert plan.strategy == "topdown"
        assert plan.estimated_edge_rows < CTE_MIN_EDGE_ROWS
        # The planned answer still matches the explicit strategies.
        run = session.solve_recursive(
            "works_for", low=tiny.leaf_employee_name(), strategy="plan"
        )
        explicit = session.solve_recursive(
            "works_for", low=tiny.leaf_employee_name(), strategy="bottomup"
        )
        assert run.pairs == explicit.pairs
        session.close()

    def test_failed_cte_preparation_is_cached(self, org):
        # An edge view that simplification proves empty (sal=5 violates
        # the empl salary valuebound) cannot push down; the failure must
        # be cached so later planned asks do not re-metaevaluate.
        session = PrologDbSession()
        session.load_org(org)
        session.consult(
            """
            dead_edge(X, Y) :- empl(_, X, 5, D), dept(D, _, M),
                               empl(M, Y, _, _).
            dead_works(L, H) :- dead_edge(L, H).
            dead_works(L, H) :- dead_edge(L, M), dead_works(M, H).
            """
        )
        closure = session.closure_for("dead_works")
        first = closure.plan(low="nobody", high=None)
        assert first.strategy == "bottomup"
        assert "no CTE support" in first.reason
        assert closure._cte_error is not None
        cached_error = closure._cte_error
        second = closure.plan(low="nobody", high=None)
        assert second.strategy == "bottomup"
        assert closure._cte_error is cached_error  # not recompiled
        session.close()

    def test_ask_routes_through_the_planner(self, session, org):
        boss = org.root_manager_name()
        session.ask(f"works_for(People, {boss})")
        plan = session.closure_for("works_for").last_plan
        assert plan is not None and plan.strategy == "interval"

    def test_warm_recursive_ask_binds_into_prepared_cte(self, session, org):
        boss = org.root_manager_name()
        leaf = org.leaf_employee_name()
        first = session.ask(f"works_for(People, {boss})")
        session.database.stats.reset()
        again = session.ask(f"works_for(People, {boss})")
        rotated = session.ask(f"works_for({leaf}, Superior)")
        stats = session.database.stats
        assert stats.sql_prints <= 1  # ascend direction printed lazily at most
        assert stats.commits == 0
        assert answer_set(first) == answer_set(again)
        assert rotated  # the other direction also answered


# -- statistics service ----------------------------------------------------------------


class TestRelationStatistics:
    def test_lazy_refresh_and_hits(self):
        schema = empdep_schema()
        database = ExternalDatabase(schema, constraints=empdep_constraints(schema))
        database.insert_rows("empl", [(i, f"e{i}", 20000, 1) for i in range(8)])
        database.insert_rows("dept", [(1, "sales", 0)])
        first = database.relation_statistics("empl")
        assert first.row_count == 8
        assert first.distinct["eno"] == 8
        assert first.distinct["dno"] == 1
        assert first.selectivity("eno") == pytest.approx(1 / 8)
        again = database.relation_statistics("empl")
        assert again is first  # generation unchanged: cached profile
        snap = database.stats.snapshot()
        assert snap["stats_refreshes"] == 1
        assert snap["stats_hits"] == 1
        database.insert_rows("empl", [(8, "e8", 20000, 2)])
        refreshed = database.relation_statistics("empl")
        assert refreshed.row_count == 9
        assert database.stats.snapshot()["stats_refreshes"] == 2
        database.close()

    def test_generations_are_per_relation(self):
        # Churn on dept must not invalidate empl's cached profile.
        schema = empdep_schema()
        database = ExternalDatabase(schema)
        database.insert_rows("empl", [(1, "a", 20000, 1)])
        database.relation_statistics("empl")
        database.insert_rows("dept", [(1, "sales", 1)])
        database.relation_statistics("empl")  # still generation-fresh
        snap = database.stats.snapshot()
        assert snap["stats_refreshes"] == 1
        assert snap["stats_hits"] == 1
        database.close()

    def test_delete_and_clear_invalidate(self):
        schema = empdep_schema()
        database = ExternalDatabase(schema)
        database.insert_rows("empl", [(1, "a", 20000, 1), (2, "b", 20000, 1)])
        assert database.relation_statistics("empl").row_count == 2
        database.delete_row("empl", (1, "a", 20000, 1))
        assert database.relation_statistics("empl").row_count == 1
        database.clear_relation("empl")
        assert database.relation_statistics("empl").row_count == 0
        database.close()

    def test_empty_relation_profiles_cleanly(self):
        # Edge case: statistics over a relation with no rows must not
        # divide by zero and must still cache per generation.
        schema = empdep_schema()
        database = ExternalDatabase(schema)
        profile = database.relation_statistics("empl")
        assert profile.row_count == 0
        assert profile.distinct["eno"] == 0
        assert database.relation_statistics("empl") is profile
        database.close()

    def test_clear_bumps_the_data_generation(self):
        schema = empdep_schema()
        database = ExternalDatabase(schema)
        database.insert_rows("empl", [(1, "a", 20000, 1)])
        before = database.data_generation("empl")
        database.clear_relation("empl")
        assert database.data_generation("empl") > before
        # And the post-clear profile reflects the emptied relation.
        assert database.relation_statistics("empl").row_count == 0
        database.close()

    def test_profiles_go_stale_across_churn(self):
        # A held profile object is a snapshot: churn must produce a new
        # object with the new counts, never mutate the old one in place.
        schema = empdep_schema()
        database = ExternalDatabase(schema)
        database.insert_rows("empl", [(1, "a", 20000, 1)])
        stale = database.relation_statistics("empl")
        database.insert_rows("empl", [(2, "b", 21000, 1)])
        database.delete_row("empl", (1, "a", 20000, 1))
        fresh = database.relation_statistics("empl")
        assert fresh is not stale
        assert stale.row_count == 1  # snapshot unchanged
        assert fresh.row_count == 1  # +1 insert, -1 delete
        assert fresh.distinct["nam"] == 1
        database.close()

    def test_analyze_feeds_sqlite_stat1(self):
        schema = empdep_schema()
        database = ExternalDatabase(schema, constraints=empdep_constraints(schema))
        database.insert_rows("empl", [(i, f"e{i}", 20000, 1) for i in range(4)])
        database.relation_statistics("empl")
        rows = database.execute(
            "SELECT tbl FROM sqlite_stat1 WHERE tbl = 'empl'"
        )
        assert rows  # ANALYZE ran for the profiled relation
        database.close()

    def test_pragma_optimize_on_close_and_retirement(self):
        import threading

        schema = empdep_schema()
        database = ExternalDatabase(schema)
        worker = threading.Thread(
            target=lambda: database.execute("SELECT COUNT(*) FROM empl")
        )
        worker.start()
        worker.join()
        import gc

        gc.collect()  # the dead thread's finalizer retires its reader
        database.close()
        assert database.stats.snapshot()["pragma_optimizes"] >= 2


# -- cost-based join order -------------------------------------------------------------


class TestCostOrder:
    def test_restricted_row_leads_the_order(self, session, org):
        name = org.employees[0].nam
        trace = session.explain(f"works_dir_for(X, '{name}')")
        predicate = trace.simplification.predicate
        stats_of = session.database.relation_statistics
        ordered = order_rows(predicate, stats_of)
        from repro.dbcl.symbols import ConstSymbol

        first = ordered.rows[0]
        assert any(
            isinstance(entry, ConstSymbol) for entry in first.entries
        ), "the constant-restricted row should lead"

    def test_constant_row_leads_even_without_statistics(self, session, org):
        # With no profile, the syntactic selectivity heuristic still
        # prefers the constant-restricted row — determinism matters more
        # than the exact estimate.
        name = org.employees[0].nam
        predicate = session.explain(
            f"works_dir_for(X, '{name}')"
        ).simplification.predicate
        order = greedy_row_order(predicate, None)
        from repro.dbcl.symbols import ConstSymbol

        first = predicate.rows[order[0]]
        assert any(isinstance(entry, ConstSymbol) for entry in first.entries)
        # Deterministic: the same input reproduces the same order.
        assert greedy_row_order(predicate, None) == order

    def test_unrestricted_shape_is_a_stable_noop_order(self, session):
        predicate = session.explain(
            "works_dir_for(X, Y)"
        ).simplification.predicate
        assert greedy_row_order(predicate, None) == list(
            range(len(predicate.rows))
        )
        assert order_rows(predicate, None) is predicate

    def test_warm_answers_unchanged_by_cost_order(self, session, org):
        # warm the shape (second miss parameterizes, with cost ordering)
        names = [e.nam for e in org.employees[:4]]
        for name in names:
            session.ask(f"same_manager(X, {name})")
        fresh = PrologDbSession(plan_cache=False)
        fresh.load_org(org)
        fresh.consult(ALL_VIEWS_SOURCE)
        for name in names:
            assert answer_set(session.ask(f"same_manager(X, {name})")) == (
                answer_set(fresh.ask(f"same_manager(X, {name})"))
            ), name
        fresh.close()


# -- EXPLAIN QUERY PLAN regressions (warm prepared statements use the indexes) ---------


@pytest.mark.smoke
class TestExplainQueryPlanRegressions:
    def _warm_plan_text(self, session, org):
        for employee in org.employees[:3]:
            session.ask(f"works_dir_for(X, {employee.nam})")
        goal = parse_goal(f"works_dir_for(X, {org.employees[0].nam})")
        entry = session.plans.entry_for(goal_shape(goal))
        assert entry is not None and not entry.uncacheable
        plan = entry.variants.get(())
        assert plan is not None and plan.sql_text is not None
        return plan.sql_text

    def test_catalog_indexes_exist_by_name(self, session):
        created = {line.split()[5] for line in session.database.index_statements}
        assert {
            "idx_empl_nam",
            "idx_empl_dno",
            "idx_empl_eno",
            "idx_dept_dno",
            "idx_dept_mgr",
        } <= created

    def test_warm_prepared_statement_uses_catalog_indexes(self, session, org):
        text = self._warm_plan_text(session, org)
        details = session.database.query_plan(text)
        used = " | ".join(details)
        # The nam seed, the mgr→eno hop, and the dno hop must all be
        # index searches; a silent index-name or column drift turns one
        # of these into a SCAN and fails here.
        assert "USING INDEX idx_empl_nam" in used, used
        assert "USING INDEX idx_dept_mgr" in used or (
            "USING INDEX idx_empl_eno" in used
        ), used
        assert "USING INDEX idx_empl_dno" in used or (
            "USING INDEX idx_dept_dno" in used
        ), used

    def test_recursive_cte_uses_catalog_indexes(self, session, org):
        closure = session.closure_for("works_for")
        closure.cte_queries()
        details = session.database.query_plan(closure._cte.descend_text)
        used = " | ".join(details)
        assert "USING INDEX idx_empl_nam" in used, used
        assert "SCAN v1" not in used or "USING INDEX" in used

    def test_warm_interval_probe_uses_the_composite_index(self, session, org):
        # PR 7 regression: both probe directions must range-scan the
        # composite (pre, post) index — a drift back to a full SCAN of
        # the ivl_* table silently re-introduces O(n) probes.
        boss = org.root_manager_name()
        session.ask(f"works_for(X, {boss})")  # warm: labeling built
        index = session.closure_for("works_for").interval_index()
        for text in (index.descend_text, index.ascend_text):
            details = session.database.query_plan(text)
            used = " | ".join(details)
            # "USING COVERING INDEX" on the range side: the trailing
            # node column means the probe never touches the table.
            assert "INDEX idx_ivl_works_for_pre_post" in used, used
            assert "COVERING" in used, used
        batch = session.database.query_plan(index.batch_text("low", 3))
        used = " | ".join(batch)
        assert "INDEX idx_ivl_works_for_pre_post" in used, used


# -- dialects --------------------------------------------------------------------------


class TestDialectSupport:
    def test_sql_dialect_renders_recursive_queries(self):
        query = closure_cte(edge_query(), frontier=1, result=0)
        text = SqlDialect().render(query, oneline=True)
        assert text.startswith("WITH RECURSIVE")

    def test_quel_renders_the_frontier_step_queries(self, session):
        # QUEL has no recursion, but the frontier loop's per-level step
        # queries are plain retrievals it CAN express.
        closure = session.closure_for("works_for")
        descend, _ascend = closure.step_queries()
        text = QuelDialect().render(descend)
        assert text.startswith("RANGE OF")
        assert "RETRIEVE" in text

    def test_quel_rejects_recursive_queries_explicitly(self):
        query = closure_cte(edge_query(), frontier=1, result=0)
        with pytest.raises(UnsupportedDialectError, match="recursive"):
            QuelDialect().render(query)

    def test_quel_rejects_unions_explicitly(self):
        from repro.sql.ast import UnionQuery

        edge = edge_query()
        with pytest.raises(UnsupportedDialectError, match="UNION"):
            QuelDialect().render(UnionQuery(branches=(edge, edge)))

    def test_quel_rejects_batch_memberships_explicitly(self):
        query = closure_cte(edge_query(), frontier=1, result=0, batch_size=2)
        with pytest.raises(UnsupportedDialectError):
            QuelDialect().render(query.base)

    def test_quel_rejects_unknown_trees_explicitly(self):
        with pytest.raises(UnsupportedDialectError):
            QuelDialect().render(object())


# -- per-phase compile timings ---------------------------------------------------------


class TestCompilePhaseStats:
    def test_cold_compile_populates_every_phase(self, session, org):
        name = org.employees[0].nam
        session.ask(f"works_dir_for(X, {name})")
        session.ask(f"same_manager(X, {name})")
        phases = session.stats()["compile_phases"]
        assert phases["cold_compilations"] >= 2
        for key in (
            "classify_seconds",
            "metaevaluate_seconds",
            "optimize_seconds",
            "translate_seconds",
            "print_seconds",
        ):
            assert phases[key] > 0, key

    def test_warm_asks_do_not_accumulate_compile_time(self, session, org):
        names = [e.nam for e in org.employees[:4]]
        for name in names:
            session.ask(f"works_dir_for(X, {name})")
        before = session.stats()["compile_phases"]
        for name in names:
            session.ask(f"works_dir_for(X, {name})")
        after = session.stats()["compile_phases"]
        assert after == before


# -- ask_many over recursive shapes ----------------------------------------------------


@pytest.mark.smoke
class TestRecursiveAskMany:
    def _manager_names(self, org, count):
        managers = {d.mgr for d in org.departments}
        return sorted(
            {e.nam for e in org.employees if e.eno in managers}
        )[:count]

    def test_batched_answers_identical_to_serial(self, session, org):
        goals = [
            f"works_for(X, {name})" for name in self._manager_names(org, 6)
        ]
        serial = [session.ask(goal) for goal in goals]  # also warms the shape
        before = session.plans.stats.snapshot()
        batched = session.ask_many(goals)
        after = session.plans.stats.snapshot()
        assert after["recursive_batches"] == before["recursive_batches"] + 1
        assert after["batched_asks"] >= before["batched_asks"] + len(goals)
        for expected, got in zip(serial, batched):
            assert expected == got  # including per-goal answer order

    def test_duplicate_seeds_share_one_execution(self, session, org):
        boss = org.root_manager_name()
        goals = [f"works_for(X, {boss})"] * 4
        session.ask(goals[0])
        before = session.database.stats.snapshot()["prepared_executions"]
        batched = session.ask_many(goals)
        after = session.database.stats.snapshot()["prepared_executions"]
        assert after == before + 1  # one CTE run served all four
        assert all(answers == batched[0] for answers in batched)

    def test_maintained_views_keep_the_closure_path(self, session, org):
        session.materialize.view("works_for(X, Y)")
        goals = [
            f"works_for(X, {name})" for name in self._manager_names(org, 4)
        ]
        serial = [session.ask(goal) for goal in goals]
        before = session.plans.stats.snapshot()["recursive_batches"]
        batched = session.ask_many(goals)
        assert session.plans.stats.snapshot()["recursive_batches"] == before
        for expected, got in zip(serial, batched):
            assert answer_set(expected) == answer_set(got)

    def test_mixed_recursive_and_flat_groups(self, session, org):
        boss = org.root_manager_name()
        names = [e.nam for e in org.employees[:3]]
        goals = [f"works_dir_for(X, {n})" for n in names] + [
            f"works_for(X, {boss})",
            f"works_for(X, {boss})",
        ]
        serial = [session.ask(goal) for goal in goals]
        batched = session.ask_many(goals)
        for expected, got in zip(serial, batched):
            assert answer_set(expected) == answer_set(got)
