"""Seeded, scheduled fault injection for the execution layer.

Every failure mode the resilience machinery claims to survive must be
reproducible on demand, or the claim is untestable.  A
:class:`FaultSchedule` is a finite, seeded list of :class:`FaultEvent`
firings — locked-database bursts, I/O errors, latency spikes, poisoned
pooled connections, mid-transaction maintenance failures — addressed by
*operation ordinal within a fault class* (the Nth read, the Nth delta),
so the same seed produces the same fault at the same point of the same
workload, run after run.

:class:`FaultInjectingBackend` is an :class:`ExternalDatabase` whose
fault point (consulted by the retry loop and the maintenance-delta
transaction) draws from the schedule.  Because the schedule is finite,
every injected run *eventually heals*: once drained, the backend is
indistinguishable from a healthy one — which is exactly the property the
differential benchmark gates on.
"""

from __future__ import annotations

import random
import sqlite3
import threading
import time
from dataclasses import dataclass

from ..dbms.sqlite_backend import ExternalDatabase

#: Injectable fault kinds, mapped to the fault class whose operation
#: counter schedules them.  ``read`` covers the pooled-read retry loop,
#: ``write`` the owning-connection DML retry loop, ``delta`` the
#: mid-transaction body of ``apply_materialized_delta``.
KIND_CLASSES = {
    "locked": "read",
    "io_error": "read",
    "latency": "read",
    "poison": "read",
    "write_locked": "write",
    "delta_fail": "delta",
}

#: Operational fault kinds — the default pool :meth:`FaultSchedule.random`
#: draws from.  Captured *before* the CQA kinds register so existing
#: seeded schedules keep their exact historical fault sequences.
FAULT_KINDS = tuple(KIND_CLASSES)

#: CQA statement classes (ROADMAP E19): the backend relabels detector
#: probes and certain-answer rewriting statements via
#: ``fault_context("cqa_probe"/"cqa_rewrite")``, giving each its own
#: ordinal counter.  Both inject as transient I/O errors.  Deliberately
#: outside :data:`FAULT_KINDS` — random schedules only target the CQA
#: paths when a caller passes these kinds explicitly.
CQA_FAULT_KINDS = ("cqa_probe", "cqa_rewrite")
KIND_CLASSES.update({kind: kind for kind in CQA_FAULT_KINDS})


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: fire at the ``at``-th eligible operation.

    ``burst`` widens the event to that many *consecutive* eligible
    operations — a locked burst of 3 fails three successive read
    attempts, which is what distinguishes "retry rides it out" from
    "retry budget exhausted, ladder engages".
    """

    at: int
    kind: str
    burst: int = 1

    def __post_init__(self):
        if self.kind not in KIND_CLASSES:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.at < 0 or self.burst < 1:
            raise ValueError("fault events need at >= 0 and burst >= 1")


class FaultSchedule:
    """A finite, thread-safe program of faults over a workload.

    Per fault class (read/write/delta) the schedule keeps an operation
    counter and a queue of pending events sorted by ``at``; ``draw``
    advances the counter and returns the head event while its burst
    window covers the current ordinal.  Counters are per-class so a
    read-heavy workload cannot starve a scheduled delta failure.
    """

    def __init__(self, events, latency: float = 0.005):
        self.latency = latency
        self.events = tuple(
            sorted(events, key=lambda event: (event.at, event.kind))
        )
        self._lock = threading.Lock()
        self._counts: dict[str, int] = {}
        self._pending: dict[str, list[list]] = {}
        for event in self.events:
            klass = KIND_CLASSES[event.kind]
            # [event, firings-remaining] — mutable so bursts tick down
            self._pending.setdefault(klass, []).append([event, event.burst])
        self.injected = 0
        self.injected_by_kind: dict[str, int] = {}

    @classmethod
    def random(
        cls,
        seed: int,
        events: int = 8,
        horizon: int = 60,
        max_burst: int = 3,
        latency: float = 0.002,
        kinds=FAULT_KINDS,
    ) -> "FaultSchedule":
        """A seeded schedule of ``events`` faults inside ``horizon`` ops.

        ``horizon`` bounds the *read*-class ordinals; write and delta
        ordinals advance far more slowly than reads in any realistic
        workload (one maintenance delta per mutation vs. several reads
        per ask), so their events are drawn from proportionally shorter
        windows — otherwise a scheduled write fault could sit forever
        past the end of the write stream and the schedule would never
        drain.
        """
        rng = random.Random(seed)
        class_horizon = {
            "read": max(1, horizon),
            "write": max(2, horizon // 5),
            "delta": max(2, horizon // 4),
            # CQA ordinals advance once per consistent ask (rewrite) or
            # per relation generation (probe) — far slower than reads.
            "cqa_probe": max(1, horizon // 4),
            "cqa_rewrite": max(1, horizon // 2),
        }
        drawn = []
        for _ in range(events):
            kind = rng.choice(tuple(kinds))
            burst = rng.randint(1, max_burst) if kind == "locked" else 1
            drawn.append(
                FaultEvent(
                    at=rng.randrange(class_horizon[KIND_CLASSES[kind]]),
                    kind=kind,
                    burst=burst,
                )
            )
        return cls(drawn, latency=latency)

    def draw(self, klass: str):
        """The fault (if any) scheduled for this operation of ``klass``."""
        with self._lock:
            ordinal = self._counts.get(klass, 0)
            self._counts[klass] = ordinal + 1
            pending = self._pending.get(klass)
            if not pending:
                return None
            head = pending[0]
            event = head[0]
            if ordinal < event.at:
                return None
            head[1] -= 1
            if head[1] <= 0:
                pending.pop(0)
            self.injected += 1
            self.injected_by_kind[event.kind] = (
                self.injected_by_kind.get(event.kind, 0) + 1
            )
            return event

    @property
    def exhausted(self) -> bool:
        """Every scheduled firing delivered — the backend is healed."""
        with self._lock:
            return not any(self._pending.values())

    def remaining(self) -> int:
        with self._lock:
            return sum(
                head[1] for queue in self._pending.values() for head in queue
            )


class FaultInjectingBackend(ExternalDatabase):
    """An :class:`ExternalDatabase` that delivers a fault schedule.

    The base class consults ``self._fault_point`` (``None`` on healthy
    backends — one attribute test of hot-path overhead) at each
    instrumented operation; here it draws from the schedule and turns
    events into the real failure: synthetic ``sqlite3`` errors for
    locked/I/O faults, a genuinely closed pooled connection for poison
    (so retirement is exercised for real), a sleep for latency spikes.
    """

    def __init__(self, *args, schedule: FaultSchedule, **kwargs):
        self.schedule = schedule
        super().__init__(*args, **kwargs)

    def _fault_point(self, klass: str, detail: str = "") -> None:
        event = self.schedule.draw(klass)
        if event is None:
            return
        resilience = getattr(self, "resilience", None)
        if resilience is not None:
            resilience.incr("faults_injected")
        if event.kind == "latency":
            time.sleep(self.schedule.latency)
            return
        if event.kind == "poison":
            self._poison_current_reader()
            return
        if event.kind in ("locked", "write_locked"):
            raise sqlite3.OperationalError("database is locked")
        # io_error / delta_fail / cqa_probe / cqa_rewrite: a transient
        # device hiccup on that statement class
        raise sqlite3.OperationalError("disk I/O error")

    def _poison_current_reader(self) -> None:
        """Close the calling thread's pooled reader in place.

        The connection stays registered in the pool — the *next* use
        fails with "Cannot operate on a closed database", which is the
        classification the retirement path keys on.  No-op when the
        thread has no reader yet (nothing to poison).
        """
        connection = getattr(self._readers, "connection", None)
        if connection is None:
            return
        try:
            connection.close()
        except sqlite3.Error:
            pass
