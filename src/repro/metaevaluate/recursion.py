"""Recursion analysis over the view call graph (paper sections 4, 7).

``metaevaluate`` on a recursive view must produce a *sequence* of DBCL
statements.  This module provides the analysis half:

* :func:`view_call_graph` / :func:`recursive_indicators` — which predicates
  are (mutually) recursive, via SCCs of the call graph;
* :func:`is_linear_recursive` — does every recursive clause contain exactly
  one recursive call (the class Example 7-1's ``works_for`` belongs to);
* :func:`expansion_at_level` — the level-``k`` conjunctive expansion used
  by the *naive* strategy (queries 1, 2, 3, … of Example 7-1);
* :func:`recursion_signature` — which argument positions are carried
  through the recursion (used to pick top-down vs bottom-up).

The execution half (intermediate relations, ``setrel``) lives in
:mod:`repro.coupling.recursion_exec`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

import networkx as nx

from ..dbcl.predicate import DbclPredicate
from ..errors import MetaevaluationError
from ..prolog.knowledge_base import KnowledgeBase
from ..prolog.reader import parse_goal
from ..prolog.terms import (
    Struct,
    Term,
    Variable,
    goal_indicator,
    variables_of,
)
from ..schema.catalog import DatabaseSchema
from .collector import GoalUnfolder
from .translator import Metaevaluator

Indicator = tuple[str, int]


def view_call_graph(kb: KnowledgeBase, schema: DatabaseSchema) -> "nx.DiGraph":
    """Directed graph: edge u -> v when a clause of u calls v.

    Database relations and builtins are included as sink nodes; only
    predicates defined in ``kb`` have outgoing edges.
    """
    graph = nx.DiGraph()
    for indicator in kb.indicators():
        graph.add_node(indicator)
        for clause in kb.all_clauses(indicator):
            for goal in clause.body_goals():
                try:
                    callee = goal_indicator(goal)
                except ValueError:
                    continue
                graph.add_edge(indicator, callee)
    return graph


def recursive_indicators(
    kb: KnowledgeBase,
    schema: DatabaseSchema,
    graph: Optional["nx.DiGraph"] = None,
) -> set[Indicator]:
    """All predicates on a call-graph cycle (directly or mutually recursive)."""
    if graph is None:
        graph = view_call_graph(kb, schema)
    recursive: set[Indicator] = set()
    for component in nx.strongly_connected_components(graph):
        if len(component) > 1:
            recursive.update(component)
        else:
            node = next(iter(component))
            if graph.has_edge(node, node):
                recursive.add(node)
    return recursive


def is_recursive_goal(
    kb: KnowledgeBase,
    schema: DatabaseSchema,
    goal: Union[Term, str],
    graph: Optional["nx.DiGraph"] = None,
    recursive: Optional[set[Indicator]] = None,
) -> bool:
    """Does evaluating ``goal`` reach any recursive predicate?

    ``graph`` and ``recursive`` let callers supply memoized analyses (the
    session's plan cache holds both per KB generation) instead of
    rebuilding the call graph on every ask.
    """
    if isinstance(goal, str):
        goal = parse_goal(goal)
    if recursive is None:
        recursive = recursive_indicators(kb, schema)
    if not recursive:
        return False
    if graph is None:
        graph = view_call_graph(kb, schema)
    from ..prolog.terms import conjuncts

    for subgoal in conjuncts(goal):
        try:
            indicator = goal_indicator(subgoal)
        except ValueError:
            continue
        if indicator in recursive:
            return True
        if graph.has_node(indicator):
            reachable = nx.descendants(graph, indicator)
            if reachable & recursive:
                return True
    return False


def is_linear_recursive(kb: KnowledgeBase, indicator: Indicator) -> bool:
    """True when every recursive clause has exactly one recursive call.

    Mutual recursion counts as non-linear here: the ``setrel`` strategy of
    Example 7-1 assumes a single self-call whose frontier can be staged
    through one intermediate relation.
    """
    clauses = kb.all_clauses(indicator)
    if not clauses:
        return False
    saw_recursive_clause = False
    for clause in clauses:
        calls = [
            goal
            for goal in clause.body_goals()
            if isinstance(goal, Struct) and goal.indicator == indicator
        ]
        if len(calls) > 1:
            return False
        if calls:
            saw_recursive_clause = True
    return saw_recursive_clause


@dataclass(frozen=True)
class RecursionSignature:
    """How a linear recursive clause threads its arguments.

    For ``works_for(Low, High) :- works_dir_for(Low, Medium),
    works_for(Medium, High)`` the head's ``High`` (position 1) is *carried*
    unchanged into the recursive call, while position 0 changes — so a
    query binding position 1 (``works_for(People, smiley)``) can seed an
    intermediate relation from the bound side and iterate "top-down",
    whereas one binding position 0 benefits from the bottom-up rewriting.
    """

    indicator: Indicator
    carried_positions: tuple[int, ...]

    def favours_binding(self, bound_positions: Sequence[int]) -> bool:
        """Is some bound argument carried through the recursion unchanged?"""
        return any(p in self.carried_positions for p in bound_positions)


def recursion_signature(
    kb: KnowledgeBase, indicator: Indicator
) -> Optional[RecursionSignature]:
    """Compute the carried argument positions of a linear recursive view."""
    if not is_linear_recursive(kb, indicator):
        return None
    carried: Optional[set[int]] = None
    for clause in kb.all_clauses(indicator):
        recursive_calls = [
            goal
            for goal in clause.body_goals()
            if isinstance(goal, Struct) and goal.indicator == indicator
        ]
        if not recursive_calls:
            continue
        call = recursive_calls[0]
        head = clause.head
        assert isinstance(head, Struct)
        positions = {
            i
            for i, (head_arg, call_arg) in enumerate(zip(head.args, call.args))
            if isinstance(head_arg, Variable) and head_arg == call_arg
        }
        carried = positions if carried is None else (carried & positions)
    if carried is None:
        return None
    return RecursionSignature(indicator, tuple(sorted(carried)))


def expansion_at_level(
    metaevaluator: Metaevaluator,
    goal: Union[Term, str],
    indicator: Indicator,
    level: int,
    name: Optional[str] = None,
    targets: Optional[Sequence[Variable]] = None,
) -> list[DbclPredicate]:
    """The conjunctive queries using exactly ``level`` recursive steps.

    Level 0 is the base case (query 1 of Example 7-1); level ``k`` unfolds
    the recursive clause ``k`` times.  Several predicates may come back if
    other view disjunction multiplies branches.
    """
    if isinstance(goal, str):
        goal = parse_goal(goal)
    if targets is None:
        targets = [v for v in variables_of(goal) if not v.is_anonymous]
    if name is None:
        name = metaevaluator._default_name(goal)

    branches = metaevaluator.collect_branches(goal, recursion_budget=level)
    selected = [
        branch
        for branch in branches
        if branch.recursion_depths.get(indicator, 0) == level
    ]
    return [
        metaevaluator.branch_to_dbcl(branch, name, targets) for branch in selected
    ]


def expansion_sequence(
    metaevaluator: Metaevaluator,
    goal: Union[Term, str],
    indicator: Indicator,
    max_level: int,
    name: Optional[str] = None,
    targets: Optional[Sequence[Variable]] = None,
) -> list[list[DbclPredicate]]:
    """Levels 0..max_level of the naive expansion, as a list per level."""
    if max_level < 0:
        raise MetaevaluationError("max_level must be non-negative")
    return [
        expansion_at_level(metaevaluator, goal, indicator, level, name, targets)
        for level in range(max_level + 1)
    ]
