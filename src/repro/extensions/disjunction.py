"""Disjunction: DNF conversion and UNION generation (paper section 7).

"The simplest way to handle disjunction is converting the DBCL predicate
into disjunctive normal form, and generating a query for each of these
conjunctions" — the approach of SDD-1, which the paper adopts while noting
it may not always be optimal.

The metaevaluator already enumerates one derivation branch per disjunct
(several clauses for a view, or explicit ``;`` in a goal); this module
simplifies each branch independently — a branch may be proven empty and
drop out of the union — and renders the rest as a UNION query.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from ..dbcl.predicate import DbclPredicate
from ..errors import MetaevaluationError
from ..metaevaluate.translator import Metaevaluator
from ..optimize.pipeline import SimplifyOptions, simplify
from ..prolog.terms import Term, Variable
from ..schema.constraints import ConstraintSet
from ..sql.ast import SqlQuery, UnionQuery
from ..sql.translate import translate


@dataclass
class DisjunctiveTranslation:
    """The per-branch pipeline results plus the final UNION."""

    branches: list[DbclPredicate]
    simplified: list[Optional[DbclPredicate]]  # None where proven empty
    union: UnionQuery

    @property
    def live_branch_count(self) -> int:
        return sum(1 for p in self.simplified if p is not None)

    @property
    def pruned_branch_count(self) -> int:
        return sum(1 for p in self.simplified if p is None)


def translate_disjunctive(
    metaevaluator: Metaevaluator,
    goal: Union[Term, str],
    constraints: ConstraintSet,
    targets: Optional[Sequence[Variable]] = None,
    options: SimplifyOptions = SimplifyOptions(),
    name: Optional[str] = None,
) -> DisjunctiveTranslation:
    """Metaevaluate a (possibly disjunctive) goal into a UNION query.

    Branch order follows clause order; branches proven empty by the local
    optimizer are pruned before any SQL is generated.
    """
    branches = metaevaluator.metaevaluate_all(goal, name=name, targets=targets)
    if not branches:
        raise MetaevaluationError("goal has no derivation branches")

    simplified: list[Optional[DbclPredicate]] = []
    queries: list[SqlQuery] = []
    for branch in branches:
        result = simplify(branch, constraints, options)
        if result.is_empty:
            simplified.append(None)
            continue
        simplified.append(result.predicate)
        queries.append(translate(result.predicate, distinct=True))

    return DisjunctiveTranslation(
        branches=branches,
        simplified=simplified,
        union=UnionQuery(tuple(queries)),
    )
