"""Programmatic construction of DBCL predicates.

:class:`TableauBuilder` is the convenience layer used by tests, examples,
and the metaevaluator to assemble tableaux attribute-by-attribute instead
of spelling out full-width rows.  Cells not mentioned are filled with
fresh singleton ``v_`` symbols (for covered attributes) or ``*``.

The naming convention mirrors the paper's examples: machine-generated
variables are named after their attribute with the 1-based row number
appended (``v_Eno1``, ``v_Sal3``); caller-supplied names are kept as-is
(``v_D``, ``v_M``).
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence, Union

from ..errors import DbclError
from ..schema.catalog import DatabaseSchema
from .predicate import COMPARISON_OPS, Comparison, DbclPredicate, RelRow
from .symbols import (
    STAR,
    ConstSymbol,
    JoinableSymbol,
    Symbol,
    TargetSymbol,
    VarSymbol,
)

CellSpec = Union[Symbol, int, float, str]


def _capitalise(attribute: str) -> str:
    return attribute[:1].upper() + attribute[1:]


class TableauBuilder:
    """Accumulates rows and comparisons, then builds a :class:`DbclPredicate`."""

    def __init__(self, schema: DatabaseSchema, name: str):
        self.schema = schema
        self.name = name
        self._targets: dict[TargetSymbol, None] = {}  # ordered set
        self._rows: list[RelRow] = []
        self._comparisons: list[Comparison] = []

    # -- symbols ---------------------------------------------------------------

    def target(self, name: str, attribute: Optional[str] = None) -> TargetSymbol:
        """Declare (or fetch) a target symbol.

        ``attribute`` is accepted for call-site clarity but the output
        column is always the symbol's first row occurrence.
        """
        symbol = TargetSymbol(name)
        self._targets.setdefault(symbol)
        return symbol

    def var(self, name: str, number: int = 0) -> VarSymbol:
        """A named existential symbol (``v_<name><number>``)."""
        return VarSymbol(name, number)

    def const(self, value: Union[int, float, str]) -> ConstSymbol:
        return ConstSymbol(value)

    def _coerce(self, spec: CellSpec) -> Symbol:
        if isinstance(spec, (TargetSymbol, VarSymbol, ConstSymbol)):
            return spec
        if isinstance(spec, (int, float, str)):
            return ConstSymbol(spec)
        raise DbclError(f"cannot use {spec!r} as a tableau cell")

    # -- rows --------------------------------------------------------------------

    def row(self, tag: str, cells: Optional[Mapping[str, CellSpec]] = None, **kw: CellSpec) -> "TableauBuilder":
        """Add a row for relation ``tag``.

        ``cells`` maps attribute names to symbols or plain Python constants;
        keyword arguments are merged in.  Unspecified attributes of the
        relation receive fresh ``v_<Attr><rownum>`` symbols.
        """
        relation = self.schema.relation(tag)
        spec: dict[str, CellSpec] = dict(cells or {})
        spec.update(kw)
        unknown = set(spec) - set(relation.attributes)
        if unknown:
            raise DbclError(f"relation {tag} has no attributes {sorted(unknown)}")

        row_number = len(self._rows) + 1
        entries: list[Symbol] = [STAR] * self.schema.width
        for attribute in relation.attributes:
            column = self.schema.column_of(attribute)
            if attribute in spec:
                symbol = self._coerce(spec[attribute])
            else:
                symbol = VarSymbol(_capitalise(attribute), row_number)
            entries[column] = symbol
            if isinstance(symbol, TargetSymbol):
                self._targets.setdefault(symbol)
        self._rows.append(RelRow(tag, tuple(entries)))
        return self

    # -- comparisons ----------------------------------------------------------------

    def compare(self, op: str, left: CellSpec, right: CellSpec) -> "TableauBuilder":
        """Add a Relcomparisons entry."""
        if op not in COMPARISON_OPS:
            raise DbclError(f"unknown comparison operator {op!r}")
        left_symbol = self._coerce(left)
        right_symbol = self._coerce(right)
        self._comparisons.append(Comparison(op, left_symbol, right_symbol))  # type: ignore[arg-type]
        return self

    def less(self, left: CellSpec, right: CellSpec) -> "TableauBuilder":
        return self.compare("less", left, right)

    def greater(self, left: CellSpec, right: CellSpec) -> "TableauBuilder":
        return self.compare("greater", left, right)

    def neq(self, left: CellSpec, right: CellSpec) -> "TableauBuilder":
        return self.compare("neq", left, right)

    def leq(self, left: CellSpec, right: CellSpec) -> "TableauBuilder":
        return self.compare("leq", left, right)

    def geq(self, left: CellSpec, right: CellSpec) -> "TableauBuilder":
        return self.compare("geq", left, right)

    # -- building -----------------------------------------------------------------

    def build(self) -> DbclPredicate:
        """Assemble the predicate (validates against the schema)."""
        return DbclPredicate(
            self.schema, self.name, list(self._targets), self._rows, self._comparisons
        )
