#!/usr/bin/env python
"""Benchmark driver: runs the engine hot-path benchmarks and records
``BENCH_engine.json`` (per-workload wall-clock + inference steps + the
speedup over the pinned legacy baseline), gating regressions.

Usage::

    python benchmarks/run_all.py            # full sizes, strict gates
    python benchmarks/run_all.py --quick    # CI: smoke tests + small sizes

Full mode gates the committed claims (>= 5x on the 10k-fact join proof,
>= 3x on the E7-shaped recursion proof) and rewrites ``BENCH_engine.json``
at the repository root.  ``--quick`` first runs the tier-1 ``smoke``
pytest marker, then the benchmarks at reduced sizes with relaxed gates —
small enough for a CI timeslice, still loud on an order-of-magnitude
regression; its record goes to ``BENCH_engine.quick.json`` so the
committed full-mode numbers are never clobbered (override with
``--output``).  Exits nonzero if any gate (or the smoke suite) fails.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
sys.path.insert(0, str(Path(__file__).resolve().parent))
sys.path.insert(0, str(SRC))

from engine_workloads import (  # noqa: E402  (path setup must precede)
    JOIN_GOAL,
    RECURSION_GOAL,
    build_join_kb,
    build_recursion_kb,
    compare_engines,
)

#: (join facts, join iterations, recursion chain, join gate, recursion gate)
FULL = (10_000, 5, 300, 5.0, 3.0)
QUICK = (2_000, 3, 120, 2.0, 2.0)


def run_smoke_tests() -> bool:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    print("== tier-1 smoke tests ==")
    completed = subprocess.run(
        [sys.executable, "-m", "pytest", "-q", "-m", "smoke"],
        cwd=REPO_ROOT,
        env=env,
    )
    return completed.returncode == 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI mode: run the pytest smoke marker plus reduced-size benches",
    )
    parser.add_argument(
        "--skip-tests",
        action="store_true",
        help="with --quick: skip the smoke pytest run",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="where to write the benchmark record (default: repo-root "
        "BENCH_engine.json in full mode, BENCH_engine.quick.json in --quick "
        "mode so the committed record survives CI runs)",
    )
    arguments = parser.parse_args()
    if arguments.output is None:
        name = "BENCH_engine.quick.json" if arguments.quick else "BENCH_engine.json"
        arguments.output = str(REPO_ROOT / name)

    smoke_ok = True
    if arguments.quick and not arguments.skip_tests:
        smoke_ok = run_smoke_tests()

    facts, iterations, chain, join_gate, recursion_gate = (
        QUICK if arguments.quick else FULL
    )

    print(f"== E11 engine benchmarks ({'quick' if arguments.quick else 'full'}) ==")
    join = compare_engines(build_join_kb(facts), JOIN_GOAL, iterations=iterations)
    join["facts"] = facts
    print(
        f"join proof over {facts} facts: legacy={join['legacy_seconds']:.3f}s "
        f"optimized={join['optimized_seconds']:.4f}s speedup={join['speedup']:.0f}x"
    )
    recursion = compare_engines(build_recursion_kb(chain), RECURSION_GOAL)
    recursion["chain_length"] = chain
    print(
        f"recursion proof over a {chain}-long chain: "
        f"legacy={recursion['legacy_seconds']:.3f}s "
        f"optimized={recursion['optimized_seconds']:.4f}s "
        f"speedup={recursion['speedup']:.0f}x"
    )

    gates = {
        "join_min_speedup": join_gate,
        "recursion_min_speedup": recursion_gate,
    }
    gates_passed = (
        join["speedup"] >= join_gate and recursion["speedup"] >= recursion_gate
    )
    record = {
        "benchmark": "E11 resolution hot-path overhaul",
        "mode": "quick" if arguments.quick else "full",
        "baseline": "repro.prolog.legacy (pinned pre-overhaul engine)",
        "workloads": {"join_proof": join, "recursion_proof": recursion},
        "gates": gates,
        "passed": bool(gates_passed and smoke_ok),
    }
    Path(arguments.output).write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {arguments.output}")

    if not smoke_ok:
        print("FAIL: smoke tests failed", file=sys.stderr)
        return 1
    if not gates_passed:
        print(
            f"FAIL: speedup gates not met "
            f"(join {join['speedup']}x < {join_gate}x or "
            f"recursion {recursion['speedup']}x < {recursion_gate}x)",
            file=sys.stderr,
        )
        return 1
    print("all gates passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
