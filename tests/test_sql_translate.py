"""Tests for DBCL → SQL translation (paper section 5, Example 5-1, Appendix)."""

import pytest

from repro.dbcl import TableauBuilder
from repro.errors import TranslationError
from repro.metaevaluate import Metaevaluator
from repro.prolog import KnowledgeBase, var
from repro.schema import (
    SAME_MANAGER_SOURCE,
    WORKS_DIR_FOR_SOURCE,
    empdep_schema,
)
from repro.sql import (
    QuelDialect,
    SqlTranslator,
    get_dialect,
    print_sql,
    translate,
)


@pytest.fixture
def schema():
    return empdep_schema()


@pytest.fixture
def evaluator(schema):
    kb = KnowledgeBase()
    kb.consult(WORKS_DIR_FOR_SOURCE)
    kb.consult(SAME_MANAGER_SOURCE)
    return Metaevaluator(schema, kb)


@pytest.fixture
def same_manager_predicate(evaluator):
    return evaluator.metaevaluate(
        "same_manager(X, jones)", name="same_manager", targets=[var("X")]
    )


@pytest.fixture
def works_dir_for_predicate(evaluator):
    return evaluator.metaevaluate(
        "works_dir_for(Nam, smiley)", name="works_dir_for", targets=[var("Nam")]
    )


class TestExample51:
    """Example 5-1: the direct translation of same_manager(t_X, jones)."""

    def test_from_clause_six_variables(self, same_manager_predicate):
        query = translate(same_manager_predicate)
        assert query.table_count == 6
        assert [t.relation for t in query.from_tables] == [
            "empl", "dept", "empl", "empl", "dept", "empl",
        ]
        assert [t.alias for t in query.from_tables] == [
            "v1", "v2", "v3", "v4", "v5", "v6",
        ]

    def test_select_clause(self, same_manager_predicate):
        query = translate(same_manager_predicate)
        assert len(query.select) == 1
        assert str(query.select[0].column) == "v1.nam"

    def test_five_equijoins(self, same_manager_predicate):
        """The paper counts five joins avoided down to one in Example 6-2."""
        query = translate(same_manager_predicate)
        equijoins = [c for c in query.where if c.is_equijoin]
        assert len(equijoins) == 5
        rendered = {str(c) for c in equijoins}
        assert rendered == {
            "(v1.dno = v2.dno)",
            "(v2.mgr = v3.eno)",
            "(v4.dno = v5.dno)",
            "(v5.mgr = v6.eno)",
            "(v3.nam = v6.nam)",
        }

    def test_restrictions(self, same_manager_predicate):
        query = translate(same_manager_predicate)
        restrictions = {str(c) for c in query.where if not c.is_join}
        assert "(v4.nam = 'jones')" in restrictions
        assert "(v1.nam <> 'jones')" in restrictions

    def test_printed_form(self, same_manager_predicate):
        text = print_sql(translate(same_manager_predicate))
        assert text.startswith("SELECT v1.nam\nFROM empl v1, dept v2, empl v3")
        assert "(v4.nam = 'jones')" in text
        assert "(v1.nam <> 'jones')" in text


class TestAppendixTrace:
    """The appendix's works_dir_for(t_nam, smiley) trace with v12.. aliases."""

    def test_alias_offset(self, works_dir_for_predicate):
        translator = SqlTranslator(alias_start=12)
        query = translator.translate(works_dir_for_predicate)
        assert [t.alias for t in query.from_tables] == ["v12", "v13", "v14"]
        assert str(query.select[0].column) == "v12.nam"
        rendered = {str(c) for c in query.where}
        assert "(v12.dno = v13.dno)" in rendered
        assert "(v14.nam = 'smiley')" in rendered
        assert "(v13.mgr = v14.eno)" in rendered

    def test_syntax_tree_prolog_form(self, works_dir_for_predicate):
        translator = SqlTranslator(alias_start=12)
        query = translator.translate(works_dir_for_predicate)
        tree = query.to_prolog_text()
        assert tree.startswith("select([dot(v12, nam)]")
        assert "from([(empl, v12), (dept, v13), (empl, v14)])" in tree
        assert "equal(dot(v12, dno), dot(v13, dno))" in tree


class TestTranslationRules:
    def test_rule_3_constants(self, schema):
        b = TableauBuilder(schema, "q")
        b.row("empl", nam=b.target("X"), dno=7)
        query = translate(b.build())
        assert "(v1.dno = 7)" in {str(c) for c in query.where}

    def test_rule_4_consecutive_chain(self, schema):
        b = TableauBuilder(schema, "q")
        t = b.target("X")
        b.row("empl", nam=t)
        b.row("empl", nam=t)
        b.row("empl", nam=t)
        query = translate(b.build())
        rendered = {str(c) for c in query.where}
        assert rendered == {"(v1.nam = v2.nam)", "(v2.nam = v3.nam)"}

    def test_rule_5_inequality_restriction(self, schema):
        b = TableauBuilder(schema, "q")
        b.row("empl", nam=b.target("X"), sal=b.var("S"))
        b.less(b.var("S"), 40000)
        query = translate(b.build())
        assert "(v1.sal < 40000)" in {str(c) for c in query.where}

    def test_rule_5_inequality_join(self, schema):
        b = TableauBuilder(schema, "q")
        b.row("empl", nam=b.target("X"), sal=b.var("S", 1))
        b.row("empl", nam=b.target("Y"), sal=b.var("S", 2))
        b.greater(b.var("S", 1), b.var("S", 2))
        query = translate(b.build())
        joins = [c for c in query.where if c.is_join]
        assert len(joins) == 1
        assert str(joins[0]) == "(v1.sal > v2.sal)"
        assert query.join_term_count == 1

    def test_rule_6_singletons_absent(self, schema):
        b = TableauBuilder(schema, "q")
        b.row("empl", nam=b.target("X"))
        query = translate(b.build())
        # The fresh singleton v_ symbols generate no conditions at all.
        assert query.where == ()

    def test_cross_column_join_mgr_eno(self, schema):
        b = TableauBuilder(schema, "q")
        m = b.var("M")
        b.row("dept", dno=b.var("D"), mgr=m)
        b.row("empl", eno=m, nam=b.target("X"))
        query = translate(b.build())
        assert "(v1.mgr = v2.eno)" in {str(c) for c in query.where}

    def test_ground_true_comparison_dropped(self, schema):
        b = TableauBuilder(schema, "q")
        b.row("empl", nam=b.target("X"))
        b.less(1, 2)
        query = translate(b.build())
        assert query.where == ()

    def test_ground_false_comparison_empty(self, schema):
        b = TableauBuilder(schema, "q")
        b.row("empl", nam=b.target("X"))
        b.less(2, 1)
        query = translate(b.build())
        assert query.is_empty

    def test_no_rows_rejected(self, schema):
        from repro.dbcl import DbclPredicate, STAR

        predicate = DbclPredicate(schema, "q", [STAR] * schema.width, [])
        with pytest.raises(TranslationError):
            translate(predicate)

    def test_distinct_flag(self, schema):
        b = TableauBuilder(schema, "q")
        b.row("empl", nam=b.target("X"))
        text = print_sql(translate(b.build(), distinct=True))
        assert text.startswith("SELECT DISTINCT")

    def test_string_literal_escaping(self, schema):
        b = TableauBuilder(schema, "q")
        b.row("empl", nam=b.target("X"))
        b.row("empl", nam="O'Brien")
        text = print_sql(translate(b.build()))
        assert "'O''Brien'" in text

    def test_multi_target_select_order(self, schema):
        b = TableauBuilder(schema, "q")
        b.row("empl", eno=b.target("E"), nam=b.target("N"))
        query = translate(b.build())
        # Targets appear in schema-column order: eno before nam.
        assert [str(i.column) for i in query.select] == ["v1.eno", "v1.nam"]

    def test_oneline_rendering(self, schema):
        b = TableauBuilder(schema, "q")
        b.row("empl", nam=b.target("X"), dno=1)
        text = print_sql(translate(b.build()), oneline=True)
        assert text == "SELECT v1.nam FROM empl v1 WHERE (v1.dno = 1)"


class TestDialects:
    def test_quel_rendering(self, works_dir_for_predicate):
        quel = QuelDialect()
        query = translate(works_dir_for_predicate)
        text = quel.render(query)
        assert "RANGE OF v1 IS empl" in text
        assert "RANGE OF v2 IS dept" in text
        assert "RETRIEVE (nam = v1.nam)" in text
        assert 'v3.nam = "smiley"' in text

    def test_quel_operator_spelling(self, same_manager_predicate):
        quel = QuelDialect()
        text = quel.render(translate(same_manager_predicate))
        assert "!=" in text  # neq spells differently in QUEL
        assert "<>" not in text

    def test_dialect_lookup(self):
        assert get_dialect("sql").name == "sql"
        assert get_dialect("quel").name == "quel"
        assert get_dialect("sqlite").name == "sqlite"
        with pytest.raises(TranslationError):
            get_dialect("oracle")

    def test_sqlite_dialect_matches_sql(self, same_manager_predicate):
        query = translate(same_manager_predicate)
        assert get_dialect("sqlite").render(query) == get_dialect("sql").render(query)
