"""Extensions beyond the conjunctive core (paper section 7)."""

from .disjunction import DisjunctiveTranslation, translate_disjunctive
from .negation import (
    NegationTranslation,
    split_negation,
    translate_with_negation,
)
from .stepwise import StepwiseEvaluator, StepwiseStats

__all__ = [
    "DisjunctiveTranslation",
    "translate_disjunctive",
    "NegationTranslation",
    "split_negation",
    "translate_with_negation",
    "StepwiseEvaluator",
    "StepwiseStats",
]
