"""Algorithm 2: the DBCL simplification procedure (paper section 6.4).

The stages run in the paper's order:

1. add value bounds for comparison variables and check Relreferences
   constants against their domains (→ possibly empty result);
2. set REPEAT and FIRSTTIME;
3. inequality simplification (section 6.1) — contradictions stop with an
   empty result; derived equalities rename variables and set REPEAT;
4. while REPEAT: the functional-dependency chase with duplicate-row
   deletion (section 6.2) — renamings loop back to step 3;
5. recursive removal of deletable dangling rows (section 6.3);
6. syntactic tableau minimization (section 6.0).

Every stage can be disabled through :class:`SimplifyOptions` — the E9
ablation benchmark measures each stage's contribution — and the
:class:`SimplificationResult` carries the statistics the benchmarks and
EXPERIMENTS.md report (row/join counts before and after, stage log).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..dbcl.predicate import Comparison, DbclPredicate
from ..errors import OptimizationError
from ..schema.constraints import ConstraintSet
from .chase import chase
from .inequalities import analyse_comparisons
from .minimize import minimize
from .refint import remove_dangling_rows
from .valuebounds import bound_assumptions, check_constants


@dataclass(frozen=True)
class SimplifyOptions:
    """Stage toggles for Algorithm 2 (all on by default)."""

    use_valuebounds: bool = True
    use_inequalities: bool = True
    use_chase: bool = True
    use_refint: bool = True
    use_minimize: bool = True
    max_iterations: int = 50

    @classmethod
    def none(cls) -> "SimplifyOptions":
        """The paper's ``no_optim`` flag: pass the predicate through."""
        return cls(
            use_valuebounds=False,
            use_inequalities=False,
            use_chase=False,
            use_refint=False,
            use_minimize=False,
        )


#: Pre-built option sets for the ablation benchmark.
ABLATION_LEVELS: dict[str, SimplifyOptions] = {
    "none": SimplifyOptions.none(),
    "bounds": SimplifyOptions(
        use_inequalities=False, use_chase=False, use_refint=False, use_minimize=False
    ),
    "bounds+ineq": SimplifyOptions(
        use_chase=False, use_refint=False, use_minimize=False
    ),
    "bounds+ineq+chase": SimplifyOptions(use_refint=False, use_minimize=False),
    "bounds+ineq+chase+refint": SimplifyOptions(use_minimize=False),
    "full": SimplifyOptions(),
}


@dataclass
class SimplificationResult:
    """Outcome of Algorithm 2 on one DBCL predicate."""

    original: DbclPredicate
    predicate: DbclPredicate
    is_empty: bool = False
    reason: str = ""
    iterations: int = 0
    stage_log: list[str] = field(default_factory=list)

    # -- statistics ---------------------------------------------------------

    @property
    def rows_before(self) -> int:
        return len(self.original.rows)

    @property
    def rows_after(self) -> int:
        return 0 if self.is_empty else len(self.predicate.rows)

    @property
    def joins_before(self) -> int:
        return self.original.join_count()

    @property
    def joins_after(self) -> int:
        return 0 if self.is_empty else self.predicate.join_count()

    @property
    def rows_removed(self) -> int:
        return self.rows_before - self.rows_after if not self.is_empty else 0

    @property
    def joins_avoided(self) -> int:
        return self.joins_before - self.joins_after if not self.is_empty else 0

    def describe(self) -> str:
        if self.is_empty:
            return f"empty result: {self.reason}"
        return (
            f"rows {self.rows_before} -> {self.rows_after}, "
            f"joins {self.joins_before} -> {self.joins_after} "
            f"({self.iterations} iteration(s))"
        )


def simplify(
    predicate: DbclPredicate,
    constraints: ConstraintSet,
    options: SimplifyOptions = SimplifyOptions(),
) -> SimplificationResult:
    """Run Algorithm 2 on ``predicate`` under ``constraints``."""
    result = SimplificationResult(original=predicate, predicate=predicate)
    current = predicate

    # -- step 1: value bounds ---------------------------------------------------
    assumptions: list[Comparison] = []
    if options.use_valuebounds:
        violation = check_constants(current, constraints)
        if violation is not None:
            result.is_empty = True
            result.reason = violation.describe()
            result.stage_log.append(f"valuebounds: {result.reason}")
            return result
        assumptions = bound_assumptions(current, constraints)
        if assumptions:
            result.stage_log.append(
                f"valuebounds: {len(assumptions)} assumption(s) added"
            )

    # -- steps 2-4: inequality/chase fixpoint ------------------------------------
    repeat = True
    first_time = True
    while repeat:
        result.iterations += 1
        if result.iterations > options.max_iterations:
            raise OptimizationError(
                f"Algorithm 2 did not converge in {options.max_iterations} iterations"
            )

        renamed_in_step_3 = False
        if options.use_inequalities:
            outcome = analyse_comparisons(list(current.comparisons), assumptions)
            if outcome.contradiction:
                result.is_empty = True
                result.reason = outcome.reason
                result.stage_log.append(f"inequalities: {outcome.reason}")
                return result
            if outcome.renamings:
                current = current.rename(outcome.renamings)
                renamed_in_step_3 = True
            if outcome.changed:
                current = current.replace(
                    comparisons=outcome.comparisons
                ).dedupe_rows()
                result.stage_log.append(
                    "inequalities: simplified to "
                    f"{len(current.comparisons)} comparison(s)"
                )
            if renamed_in_step_3 and options.use_valuebounds:
                assumptions = bound_assumptions(current, constraints)

        repeat = renamed_in_step_3 or first_time
        first_time = False

        if repeat and options.use_chase:
            chase_outcome = chase(current, constraints)
            if chase_outcome.contradiction:
                result.is_empty = True
                result.reason = chase_outcome.reason
                result.stage_log.append(f"chase: {chase_outcome.reason}")
                return result
            current = chase_outcome.predicate
            if chase_outcome.changed:
                result.stage_log.append(
                    f"chase: {len(chase_outcome.renamings)} renaming(s), "
                    f"{chase_outcome.rows_removed} duplicate row(s) removed"
                )
                if options.use_valuebounds:
                    assumptions = bound_assumptions(current, constraints)
            if not chase_outcome.renamings:
                repeat = False
        elif repeat and not options.use_chase:
            repeat = False

    # -- step 5: referential integrity --------------------------------------------
    if options.use_refint:
        refint_outcome = remove_dangling_rows(current, constraints)
        current = refint_outcome.predicate
        if refint_outcome.changed:
            result.stage_log.append(
                f"refint: {refint_outcome.removed_rows} dangling row(s) removed "
                f"({', '.join(f'{a}->{b}' for a, b in refint_outcome.deletions)})"
            )

    # -- step 6: syntactic minimization --------------------------------------------
    if options.use_minimize:
        minimize_outcome = minimize(current)
        current = minimize_outcome.predicate
        if minimize_outcome.changed:
            result.stage_log.append(
                f"minimize: {minimize_outcome.removed_rows} redundant row(s) removed"
            )

    result.predicate = current
    return result
