"""Example 4-1: an expert system finding task partners through the DBMS.

The paper's motivating scenario: employee W must perform a task needing a
certain skill and looks for a partner X with that skill working for the
same manager.  Skills are *internal* expert-system knowledge
(``specialist`` facts); the org chart lives in the *external* relational
database.  The ``partner`` rule bridges the two with the amalgamated
``metaevaluate/4`` predicate and a cut, exactly as printed in the paper.

Run with::

    python examples/expert_system_partner.py
"""

from repro import PrologDbSession, generate_org
from repro.schema import SAME_MANAGER_SOURCE, WORKS_DIR_FOR_SOURCE

PARTNER_RULE = """
partner(W, X, Skill) :-
    metaevaluate(pr5, [same_manager(X, W)], no_optim, DBCL), !,
    same_manager(X, W),
    specialist(X, Skill).
"""


def main() -> None:
    session = PrologDbSession()
    org = generate_org(depth=3, branching=2, staff_per_dept=5, seed=7)
    session.load_org(org)
    session.consult(WORKS_DIR_FOR_SOURCE)
    session.consult(SAME_MANAGER_SOURCE)
    session.consult(PARTNER_RULE)

    # Pick a team: the direct reports of the root manager.
    boss = org.root_manager_name()
    team = sorted(low for low, high in org.works_dir_for_pairs() if high == boss)
    asker, driver, thinker = team[0], team[1], team[2]

    # Internal expert-system knowledge (paper: jones/guns, miller/driving,
    # smiley/thinking).
    session.assert_fact("specialist", driver, "driving")
    session.assert_fact("specialist", thinker, "thinking")
    session.assert_fact("specialist", "outsider", "driving")  # wrong team

    print(f"Org: {org.employee_count} employees, {org.department_count} departments")
    print(f"{asker} needs a partner who is a specialist in driving.\n")

    goal = f"partner({asker}, X, driving)"
    print(f"Query: :- {goal}.")
    answers = session.ask(goal)
    for answer in answers:
        print(f"  -> partner found: {answer['X']}")
    assert answers and answers[0]["X"] == driver

    # The database was consulted once (the cut after metaevaluate), and the
    # same_manager answers now live in the internal Prolog database:
    facts = session.kb.fact_count(("same_manager", 2))
    print(f"\nInternal database now holds {facts} same_manager facts")
    print(f"External queries executed: {session.database.stats.queries_executed}")

    session.close()


if __name__ == "__main__":
    main()
