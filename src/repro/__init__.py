"""repro — an optimizing Prolog front-end to a relational query system.

A full reproduction of Jarke, Clifford & Vassiliou, *An Optimizing Prolog
Front-End to a Relational Query System* (ACM SIGMOD 1984): a Prolog
engine, the DBCL tableau intermediate language, the metaevaluator, the
syntactic/semantic local optimizer (Algorithm 2), DBCL→SQL translation,
an SQLite execution substrate, and the global coupling layer with
recursion strategies and multiple-query optimization.

Quickstart::

    from repro import PrologDbSession, generate_org
    from repro.schema import ALL_VIEWS_SOURCE

    session = PrologDbSession()
    session.load_org(generate_org(depth=3, branching=2, staff_per_dept=4))
    session.consult(ALL_VIEWS_SOURCE)
    print(session.ask("works_dir_for(X, 'emp00001')"))
    print(session.explain("same_manager(X, 'emp00002')").sql_text)
"""

from .coupling import (
    BatchExecutor,
    PrologDbSession,
    ResultCache,
    TransitiveClosure,
    TranslationTrace,
)
from .dbcl import DbclPredicate, TableauBuilder, format_dbcl, parse_dbcl
from .dbms import ExternalDatabase, OrgHierarchy, generate_org, load_org
from .errors import ReproError
from .materialize import MaterializeManager, MaterializedView, StoragePolicy
from .metaevaluate import Metaevaluator, metaevaluate
from .optimize import SimplificationResult, SimplifyOptions, simplify
from .prolog import Engine, KnowledgeBase
from .schema import (
    ConstraintSet,
    DatabaseSchema,
    empdep_constraints,
    empdep_schema,
    make_schema,
)
from .serving import FrontDoor, ServingTier
from .sql import print_sql, translate

__version__ = "1.0.0"

__all__ = [
    "BatchExecutor",
    "PrologDbSession",
    "ResultCache",
    "TransitiveClosure",
    "TranslationTrace",
    "DbclPredicate",
    "TableauBuilder",
    "format_dbcl",
    "parse_dbcl",
    "ExternalDatabase",
    "OrgHierarchy",
    "generate_org",
    "load_org",
    "ReproError",
    "MaterializeManager",
    "MaterializedView",
    "StoragePolicy",
    "Metaevaluator",
    "metaevaluate",
    "SimplificationResult",
    "SimplifyOptions",
    "simplify",
    "Engine",
    "KnowledgeBase",
    "ConstraintSet",
    "DatabaseSchema",
    "empdep_constraints",
    "empdep_schema",
    "make_schema",
    "FrontDoor",
    "ServingTier",
    "print_sql",
    "translate",
    "__version__",
]
