"""E19 — consistent query answering over inconsistent stores.

Claims regression-gated here (and recorded in ``BENCH_cqa.json`` by
``benchmarks/run_all.py``):

* **certain-answer differential** — over seeded randomized inconsistent
  stores, ``ask_consistent`` returns exactly the intersection of plain
  ``ask`` over every explicitly materialized repair, and the generated
  case pool exercises **both** regimes: the FO-rewriting path
  (self-join-free goals, attack graph acyclic) and the block-wise
  repair-enumeration fallback (self-joins);
* **clean-store identity** — on a store with no key violations,
  ``ask_consistent`` returns byte-identical answers to ``ask`` and,
  once the violation probe is cached, executes **zero extra SQL
  statements** (the consistency guarantee is free when the store is
  consistent);
* **warm rewriting speedup** — a warm FO-rewritten consistent ask (plan
  served from the consistent-mode shape cache, constants bound into the
  prepared rewriting) sustains **>= 5x** the throughput of the cold
  path that recompiles the certainty rewriting every ask.

The pytest entry points gate the relaxed quick thresholds;
``run_all.py`` applies the strict full gates.
"""

import random
import time

import pytest

from repro.coupling import PrologDbSession
from repro.prolog.reader import parse_goal
from repro.cqa import repair_instances, split_blocks
from repro.dbms.sqlite_backend import ExternalDatabase
from repro.schema.empdep import empdep_constraints, empdep_schema

#: (differential cases, warm asks, min warm/cold speedup)
FULL_SIZES = (40, 400, 5.0)
QUICK_SIZES = (10, 80, 2.0)

#: timing repeats per side; the minimum is reported (noise rejection).
REPEATS = 5

DEPT_ROWS = ((10, "sales", 1), (20, "eng", 2))

#: Goal pool spanning both regimes: the first four are self-join-free
#: (FO-rewritable); the last self-joins ``empl`` and forces enumeration.
GOALS = (
    ("rewritten", "empl(E, N, S, D)"),
    ("rewritten", "empl(1, N, S, D)"),
    ("rewritten", "empl(E, N, S, 10)"),
    ("rewritten", "empl(E, N, S, D), dept(D, F, M)"),
    ("enumerated", "empl(E, N, S, D), empl(M, N2, S2, D2), dept(D, F, M)"),
)


def _session(empl_rows, dept_rows=DEPT_ROWS):
    schema = empdep_schema()
    constraints = empdep_constraints(schema)
    database = ExternalDatabase(schema, constraints=constraints)
    database.insert_rows("empl", empl_rows)
    database.insert_rows("dept", dept_rows)
    return PrologDbSession(
        schema=schema, constraints=constraints, database=database
    )


def _random_store(rng):
    """A small employee store with deliberate key collisions.

    Keys draw from three values over up to six rows, so violating
    blocks are near-certain but the repair space stays tiny; salaries
    respect the declared valuebound [10000, 90000].
    """
    rows = []
    for _ in range(rng.randint(2, 6)):
        rows.append(
            (
                rng.randint(1, 3),
                rng.choice(("ann", "bob", "cal", "dee")),
                rng.choice((20000, 30000, 40000)),
                rng.choice((10, 20)),
            )
        )
    return rows


def _brute_force(goal, empl_rows, dept_rows=DEPT_ROWS):
    """Intersection of plain ``ask`` over every materialized repair."""
    schema = empdep_schema()
    constraints = empdep_constraints(schema)
    fixed, blocks = {}, {}
    for name, rows in (("empl", empl_rows), ("dept", dept_rows)):
        key = constraints.primary_key(name)
        attributes = tuple(schema.relation(name).attributes)
        positions = [attributes.index(a) for a in key]
        fixed[name], blocks[name] = split_blocks(list(rows), positions)
    certain = None
    for instance in repair_instances(fixed, blocks):
        database = ExternalDatabase(schema, constraints=constraints)
        for name, rows in instance.items():
            database.insert_rows(name, rows)
        with PrologDbSession(
            schema=schema, constraints=constraints, database=database
        ) as repair_session:
            found = {
                frozenset(a.items()) for a in repair_session.ask(goal)
            }
        certain = found if certain is None else certain & found
        if not certain:
            break
    return certain or set()


def bench_differential(seed, cases):
    """Seeded randomized stores: ``ask_consistent`` vs repair brute force.

    Each case draws a fresh inconsistent store and one goal from the
    pool; the result records how many cases ran under each CQA mode so
    the gate can insist both paths were genuinely exercised.
    """
    rng = random.Random(seed)
    modes = {"rewritten": 0, "enumerated": 0, "clean_fast_path": 0}
    identical = 0
    for index in range(cases):
        rows = _random_store(rng)
        _expected_mode, goal = GOALS[index % len(GOALS)]
        with _session(rows) as session:
            certain = {
                frozenset(a.items())
                for a in session.ask_consistent(goal)
            }
            mode = session.traces()[-1]["cqa"]["mode"]
        modes[mode] = modes.get(mode, 0) + 1
        if certain == _brute_force(goal, rows):
            identical += 1
    return {
        "cases": cases,
        "seed": seed,
        "identical": identical,
        "all_identical": identical == cases,
        "modes": modes,
        "both_paths_exercised": (
            modes["rewritten"] > 0 and modes["enumerated"] > 0
        ),
    }


def bench_clean_identity():
    """Clean store: byte-identical answers, zero extra statements."""
    clean_rows = [
        (eno, f"emp{eno:02d}", 20000 + 1000 * eno, 10 + 10 * (eno % 2))
        for eno in range(1, 9)
    ]
    goals = ("empl(E, N, S, 10)", "empl(3, N, S, D)", "empl(E, N, S, D)")
    with _session(clean_rows) as session:
        for goal in goals:  # warm plans and the violation probes
            session.ask(goal)
            session.ask_consistent(goal)
        identical = 0
        extra_statements = 0
        for goal in goals:
            plain = session.ask(goal)
            plain_statements = session.traces()[-1]["statements"]
            consistent = session.ask_consistent(goal)
            trace = session.traces()[-1]
            if consistent == plain:  # order included: byte-identical
                identical += 1
            extra_statements += max(
                0, trace["statements"] - plain_statements
            )
        stats = session.stats()["cqa"]
    return {
        "goals": len(goals),
        "identical": identical,
        "all_identical": identical == len(goals),
        "extra_statements": extra_statements,
        "clean_fast_paths": stats["clean_fast_paths"],
        "probes": stats["probes"],
    }


def bench_warm_speedup(warm_asks):
    """Warm FO-rewritten asks vs recompiling the rewriting every ask.

    Both sides serve the same self-join-free view shape over the same
    dirty store, constants rotating, goals pre-parsed (the E14 serving
    convention: parsing is not the path being gated); the cold side
    invalidates the plan cache before every ask so each one pays view
    expansion, classification, metaevaluation, Algorithm 2, SQL
    printing, and the certainty-suffix compilation.
    """
    dirty_rows = [
        (1, "ann", 50000, 10),
        (2, "bob", 40000, 10),
        (2, "bob2", 45000, 20),
        (3, "cal", 30000, 20),
    ]
    goals = [
        parse_goal(f"dir_of({1 + i % 3}, M)") for i in range(warm_asks)
    ]
    result = {"warm_asks": warm_asks}
    with _session(dirty_rows) as session:
        session.consult(
            "dir_of(E, M) :- empl(E, N, S, D), dept(D, F, M).\n"
        )
        session.ask_consistent(goals[0])  # compile once, warm the probe
        best = {"warm": float("inf"), "cold": float("inf")}
        clock = time.perf_counter
        for _ in range(REPEATS):
            started = clock()
            for goal in goals:
                session.ask_consistent(goal)
            best["warm"] = min(best["warm"], clock() - started)
        cold_asks = max(8, warm_asks // 8)  # compiles are ~two orders slower
        for _ in range(REPEATS):
            started = clock()
            for goal in goals[:cold_asks]:
                session.plans.invalidate()
                session.ask_consistent(goal)
            best["cold"] = min(best["cold"], clock() - started)
        stats = session.stats()["cqa"]
    result["warm_asks_per_second"] = round(warm_asks / best["warm"], 1)
    result["cold_asks_per_second"] = round(cold_asks / best["cold"], 1)
    result["cold_asks"] = cold_asks
    result["speedup"] = round(
        result["warm_asks_per_second"] / result["cold_asks_per_second"], 2
    )
    result["rewrite_cache_hits"] = stats["rewrite_cache_hits"]
    result["rewrite_compiles"] = stats["rewrite_compiles"]
    return result


# -- pytest entry points (quick thresholds; run_all.py applies full gates) -----


@pytest.mark.smoke
def test_e19_differential_quick():
    cases, _asks, _speedup = QUICK_SIZES
    result = bench_differential(seed=5, cases=cases)
    assert result["all_identical"]
    assert result["both_paths_exercised"]


@pytest.mark.smoke
def test_e19_clean_identity_quick():
    result = bench_clean_identity()
    assert result["all_identical"]
    assert result["extra_statements"] == 0


def test_e19_warm_speedup_quick():
    _cases, asks, min_speedup = QUICK_SIZES
    result = bench_warm_speedup(asks)
    assert result["speedup"] >= min_speedup
    assert result["rewrite_cache_hits"] > 0
