"""The owner-side serving tier: workers, snapshot shipping, replay.

One :class:`ServingTier` wraps the writable owner session.  It spawns N
worker processes (fork where available, the platform default otherwise),
ships each a ``(generation, program)`` snapshot plus the warm-goal list,
and then load-balances ``ask``/``ask_many`` across them round-robin.

**Generation coherence.**  Every write goes through the tier, which
merges the owner's internal segment to the external store *first* (so
the shared WAL file holds the full union), then publishes the new
generation — a cheap ``("generation", g)`` advance for base-relation
writes (the WAL file itself carries the rows), a full ``("refresh", g,
program)`` payload when the program changed: consults, and writes to
non-base predicates, whose facts exist only in the snapshot.  Publishing and request
dispatch share one lock, and each worker's queue is FIFO, so a request
stamped with generation floor *g* can only be processed after the
worker has seen the advance to *g*: no answer is ever served from a
stale generation.

**Deadlines.**  A caller's ``deadline=`` budget is held owner-side as a
:class:`~repro.concurrency.Deadline` and serialized as the *remaining*
seconds at each dispatch (monotonic stamps do not cross process
boundaries); a replay after a worker death re-serializes whatever is
left, and a budget that ran out in the queue raises
``DeadlineExceeded`` worker-side.

**Worker death.**  A monitor thread notices a dead worker process,
restarts it from the current snapshot (fresh request queue — items
buffered in the old one may be lost with the process), and replays the
outstanding requests.  Replays are idempotent (workers only read), and
a request completed twice resolves once: completion is a single
``dict.pop``.
"""

from __future__ import annotations

import itertools
import multiprocessing
import threading
import time
from multiprocessing import connection as mp_connection

from ..concurrency import Deadline
from ..errors import (
    DeadlineExceeded,
    ExecutionError,
    ReproError,
    SingleProcessStoreError,
    WorkerUnavailableError,
)
from ..observe import merge_histogram_exports
from .worker import worker_main

#: How long ``close()`` waits for a worker to honor ``("stop",)``
#: before killing it outright.
_STOP_GRACE_SECONDS = 5.0


class PendingRequest:
    """One dispatched request: a thread-safe future the collector resolves."""

    __slots__ = (
        "req_id",
        "kind",
        "payload",
        "max_solutions",
        "deadline",
        "worker_index",
        "replays",
        "generation",
        "status",
        "result_payload",
        "_event",
        "_abandon",
    )

    def __init__(self, req_id, kind, payload, max_solutions, deadline):
        self.req_id = req_id
        self.kind = kind
        self.payload = payload
        self.max_solutions = max_solutions
        self.deadline = deadline
        self.worker_index = -1
        self.replays = 0
        self.generation = -1
        self.status = None
        self.result_payload = None
        self._event = threading.Event()
        self._abandon = None

    def complete(self, status, payload, generation, worker_index) -> None:
        self.status = status
        self.result_payload = payload
        self.generation = generation
        self.worker_index = worker_index
        self._event.set()

    def result(self, timeout=None):
        """Block for the answer; re-raise typed errors from the worker."""
        if not self._event.wait(timeout):
            if self._abandon is not None:
                self._abandon(self)
            raise TimeoutError(
                f"serving request {self.req_id} unanswered after {timeout}s"
            )
        if self.status == "ok":
            return self.result_payload
        name, message, detail = self.result_payload
        raise _rebuild_error(name, message, detail)


def _rebuild_error(name: str, message: str, detail) -> Exception:
    """Reconstruct a typed exception from its serialized triple."""
    if name == "DeadlineExceeded":
        return DeadlineExceeded(message, detail)
    from .. import errors as errors_module

    klass = getattr(errors_module, name, None)
    if isinstance(klass, type) and issubclass(klass, ReproError):
        try:
            return klass(message)
        except TypeError:
            pass  # multi-argument constructor: fall through to the generic
    return ExecutionError(f"{name}: {message}")


class _WorkerHandle:
    """Owner-side bookkeeping for one worker process."""

    __slots__ = (
        "index",
        "process",
        "requests",
        "response_reader",
        "ready",
        "restarts",
    )

    def __init__(self, index):
        self.index = index
        self.process = None
        self.requests = None
        self.response_reader = None
        self.ready = None
        self.restarts = 0


class ServingTier:
    """Multi-process serving over one writable owner session."""

    def __init__(
        self,
        session,
        workers: int = 2,
        warm_goals=(),
        restart_limit: int = 5,
        monitor_interval: float = 0.05,
        slow_query_seconds: float = 0.25,
    ):
        database = session.database
        if not getattr(database, "_file_backed", False):
            raise SingleProcessStoreError(
                "scale-out serving needs a file-backed store: a ':memory:' "
                "database lives inside one process, so worker processes "
                "would each see an empty copy — open the session over "
                "ExternalDatabase(schema, path='/some/file.db') instead"
            )
        if workers < 1:
            raise ValueError("a serving tier needs at least one worker")
        self._owner = session
        if session.tracer.worker_id is None:
            session.tracer.worker_id = "owner"
        self._target = database._target
        self._schema = session.schema
        self._constraints = session.constraints
        self._slow_query_seconds = slow_query_seconds
        methods = multiprocessing.get_all_start_methods()
        self._ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        # Request queues are SimpleQueue over Queue: the synchronous
        # pickle+write path has no feeder thread, so a fleet of N workers
        # does not put N+1 extra GIL-hungry threads in the owner process —
        # on a small host that overhead alone collapses throughput.
        # Responses deliberately do NOT share one queue: a SimpleQueue
        # shared by many writers serializes them through one cross-process
        # write-lock semaphore, and a worker SIGKILLed between finishing
        # its write and releasing that semaphore (routine on a one-core
        # host, where the owner wakes on the received bytes and may kill
        # the worker before it is rescheduled) orphans the lock and
        # deadlocks every future response — fleet-wide.  Each worker
        # instead owns a single-writer pipe, which needs no lock at all;
        # the collector multiplexes over them with ``connection.wait``,
        # and a killed worker poisons nothing: its pipe just hits EOF.
        self._response_readers: set = set()
        self._lock = threading.RLock()
        self._pending: dict[int, PendingRequest] = {}
        self._req_ids = itertools.count(1)
        self._round_robin = itertools.count(0)
        self._warm_goals = [str(goal) for goal in warm_goals]
        self._restart_limit = restart_limit
        self._monitor_interval = monitor_interval
        self._closed = False
        self._counters = {
            "requests": 0,
            "batched_requests": 0,
            "generations_published": 0,
            "refreshes_published": 0,
            "worker_deaths": 0,
            "restarts": 0,
            "replayed_requests": 0,
            "failed_requests": 0,
        }
        generation, program = session.program_snapshot()
        self._generation = generation
        self._program = program
        self._workers = [_WorkerHandle(i) for i in range(workers)]
        for handle in self._workers:
            self._start_worker(handle)
        self._collector = threading.Thread(
            target=self._collect, name="serving-collector", daemon=True
        )
        self._collector.start()
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="serving-monitor", daemon=True
        )
        self._monitor.start()

    # -- worker lifecycle ------------------------------------------------------

    def _start_worker(self, handle: _WorkerHandle) -> None:
        """Spawn (or respawn) one worker from the current snapshot."""
        handle.requests = self._ctx.SimpleQueue()
        handle.ready = self._ctx.Event()
        reader, writer = self._ctx.Pipe(duplex=False)
        handle.response_reader = reader
        handle.process = self._ctx.Process(
            target=worker_main,
            name=f"repro-serving-{handle.index}",
            args=(
                handle.index,
                self._target,
                self._schema,
                self._constraints,
                self._program,
                self._generation,
                list(self._warm_goals),
                handle.requests,
                writer,
                handle.ready,
                self._slow_query_seconds,
            ),
            daemon=True,
        )
        handle.process.start()
        writer.close()  # the worker holds the only write end now
        with self._lock:
            self._response_readers.add(reader)

    def wait_ready(self, timeout: float = 30.0) -> None:
        """Block until every worker has warmed its plan cache."""
        give_up_at = time.monotonic() + timeout
        for handle in list(self._workers):
            remaining = give_up_at - time.monotonic()
            if remaining <= 0 or not handle.ready.wait(remaining):
                raise WorkerUnavailableError(
                    f"worker {handle.index} not ready within {timeout}s"
                )

    @property
    def workers(self) -> int:
        return len(self._workers)

    @property
    def generation(self) -> int:
        with self._lock:
            return self._generation

    def worker_pids(self) -> list:
        """Per-slot pids; ``None`` marks a restart-budget-exhausted slot."""
        with self._lock:
            return [
                handle.process.pid if handle.process is not None else None
                for handle in self._workers
            ]

    def kill_worker(self, index: int) -> int:
        """Hard-kill one worker (test/chaos hook); returns its pid."""
        with self._lock:
            process = self._workers[index].process
        pid = process.pid
        process.kill()
        process.join(timeout=_STOP_GRACE_SECONDS)
        return pid

    def _monitor_loop(self) -> None:
        while not self._closed:
            time.sleep(self._monitor_interval)
            if self._closed:
                return
            for handle in list(self._workers):
                process = handle.process
                if process is not None and not process.is_alive():
                    self._restart_worker(handle)

    def _restart_worker(self, handle: _WorkerHandle) -> None:
        """Worker death is transient: restart from the snapshot, replay.

        The outstanding requests assigned to the dead worker are
        re-dispatched to its replacement with their deadline budgets
        re-serialized from the owner-side scope — a budget that died
        with the worker surfaces as ``DeadlineExceeded``, not as a
        hang.  Past ``restart_limit`` deaths the typed transient error
        surfaces instead (the caller's retry layer takes over).
        """
        with self._lock:
            if self._closed:
                return
            process = handle.process
            if process is None or process.is_alive():
                return  # raced with another restart
            self._counters["worker_deaths"] += 1
            outstanding = [
                pending
                for pending in self._pending.values()
                if pending.worker_index == handle.index
                and not pending._event.is_set()
            ]
            process.join(timeout=0)
            handle.restarts += 1
            # The dead worker's pipe may still buffer responses, but every
            # request they could answer is replayed (or failed) below, and
            # a request completed twice resolves once — so retire the pipe
            # now rather than waiting for an EOF that, under fork, only
            # arrives once every later-spawned worker has also exited
            # (children inherit their elders' write ends).
            if handle.response_reader is not None:
                self._discard_reader(handle.response_reader)
                handle.response_reader = None
            if handle.restarts > self._restart_limit:
                handle.process = None
                for pending in outstanding:
                    self._pending.pop(pending.req_id, None)
                    self._counters["failed_requests"] += 1
                    pending.complete(
                        "error",
                        (
                            "WorkerUnavailableError",
                            f"worker {handle.index} died "
                            f"{handle.restarts} times; restart budget "
                            f"exhausted",
                            None,
                        ),
                        self._generation,
                        handle.index,
                    )
                return
            self._start_worker(handle)
            self._counters["restarts"] += 1
            for pending in outstanding:
                self._counters["replayed_requests"] += 1
                pending.replays += 1
                self._dispatch_locked(pending, handle.index)

    # -- request dispatch ------------------------------------------------------

    def _pick_worker(self) -> int:
        """Next *live* worker round-robin; caller holds ``self._lock``.

        A handle whose restart budget is exhausted has ``process set to
        None`` and no consumer on its queue — dispatching there would
        strand the request until timeout.  Skip such handles; if the
        whole fleet is gone, surface the typed transient error so the
        caller's retry layer takes over immediately.
        """
        for _ in range(len(self._workers)):
            index = next(self._round_robin) % len(self._workers)
            if self._workers[index].process is not None:
                return index
        raise WorkerUnavailableError(
            "no live worker: every worker exhausted its restart budget"
        )

    def _dispatch_locked(self, pending: PendingRequest, index: int) -> None:
        """Enqueue one request to one worker; caller holds ``self._lock``.

        The generation floor is read under the same lock every publish
        holds, and the queue is FIFO, so the worker always advances to
        the floor before it sees the request.
        """
        remaining = None
        if pending.deadline is not None:
            remaining = pending.deadline.remaining()
        pending.worker_index = index
        handle = self._workers[index]
        handle.requests.put(
            (
                pending.kind,
                pending.req_id,
                pending.payload,
                pending.max_solutions,
                remaining,
                self._generation,
            )
            if pending.kind in ("ask", "ask_many")
            else (pending.kind, pending.req_id)
        )

    def _submit(
        self, kind, payload, max_solutions=None, deadline=None, worker=None
    ) -> PendingRequest:
        scope = Deadline(deadline) if deadline is not None else None
        pending = PendingRequest(
            next(self._req_ids), kind, payload, max_solutions, scope
        )
        pending._abandon = self._forget
        with self._lock:
            # Checked under the lock: close() flips the flag and fails
            # the pendings under the same lock, so a racing submit can
            # never slip a request onto a worker being stopped.
            if self._closed:
                raise ExecutionError("serving tier is closed")
            index = worker if worker is not None else self._pick_worker()
            if self._workers[index].process is None:
                raise WorkerUnavailableError(
                    f"worker {index} exhausted its restart budget"
                )
            self._counters["requests"] += 1
            if kind == "ask_many":
                self._counters["batched_requests"] += 1
            self._pending[pending.req_id] = pending
            self._dispatch_locked(pending, index)
        return pending

    def _forget(self, pending: PendingRequest) -> None:
        """Drop a timed-out request so it cannot leak in ``_pending``."""
        with self._lock:
            self._pending.pop(pending.req_id, None)

    def submit(self, goal, max_solutions=None, deadline=None, worker=None):
        """Dispatch one goal; returns a :class:`PendingRequest` future."""
        return self._submit(
            "ask", _goal_text(goal), max_solutions, deadline, worker
        )

    def submit_many(self, goals, max_solutions=None, deadline=None,
                    worker=None):
        """Dispatch a goal batch to one worker (the batch fast path)."""
        return self._submit(
            "ask_many",
            [_goal_text(goal) for goal in goals],
            max_solutions,
            deadline,
            worker,
        )

    def ask(self, goal, max_solutions=None, deadline=None, timeout=60.0):
        """Answer one goal on some worker (blocking)."""
        return self.submit(goal, max_solutions, deadline).result(timeout)

    def ask_many(self, goals, max_solutions=None, deadline=None,
                 timeout=60.0):
        """Answer a batch on one worker as a single ``ask_many``."""
        return self.submit_many(goals, max_solutions, deadline).result(
            timeout
        )

    def _discard_reader(self, reader) -> None:
        """Retire one response pipe (idempotent; collector or restart)."""
        with self._lock:
            self._response_readers.discard(reader)
        try:
            reader.close()
        except OSError:
            pass

    def _collect(self) -> None:
        while not self._closed:
            with self._lock:
                readers = list(self._response_readers)
            if not readers:
                time.sleep(self._monitor_interval)
                continue
            try:
                ready = mp_connection.wait(
                    readers, timeout=self._monitor_interval
                )
            except (OSError, ValueError):
                continue  # a reader was retired mid-wait; rebuild the set
            for reader in ready:
                try:
                    item = reader.recv()
                except (EOFError, OSError):
                    self._discard_reader(reader)
                    continue
                req_id, worker_index, generation, status, payload = item
                with self._lock:
                    pending = self._pending.pop(req_id, None)
                if pending is None:
                    continue  # a replayed duplicate already resolved this
                pending.complete(status, payload, generation, worker_index)

    # -- writes: funnel to the owner, publish the new generation ---------------

    def consult(self, source: str) -> None:
        """Program change: consult on the owner, refresh every worker."""
        self._owner.consult(source)
        self._publish(refresh=True)

    def assert_fact(self, functor: str, *values) -> None:
        """Write one fact through the owner and make it fleet-visible."""
        self._owner.assert_fact(functor, *values)
        external = self._externalize(functor, len(values))
        self._publish(refresh=not external)

    def retract_fact(self, functor: str, *values) -> bool:
        found = self._owner.retract_fact(functor, *values)
        external = self._externalize(functor, len(values))
        self._publish(refresh=not external)
        return found

    def _externalize(self, functor: str, arity: int) -> bool:
        """Merge the owner's internal segment so the WAL file has the union.

        Workers read the shared file, not the owner's memory: a fact
        sitting in the owner's internal segment would be invisible to
        the whole fleet until some owner-side ask merged it.  The tier
        merges eagerly at write time instead — the same merge procedure
        the ask pipeline runs, just moved before the generation
        publish.

        Returns True when the functor is an externalizable schema
        relation, i.e. the shared file carries the write and a cheap
        generation advance suffices.  A non-base fact exists only in
        the program snapshot (``program_snapshot`` excludes base
        relations, nothing else), so the caller must publish a full
        refresh or live workers would stamp answers with a generation
        whose data they never received.
        """
        schema = self._owner.schema
        if not (
            schema.has_relation(functor)
            and schema.relation(functor).arity == arity
        ):
            return False
        if self._owner.kb.fact_count((functor, arity)):
            self._owner.merger.materialise_internal(functor)
        return True

    def _publish(self, refresh: bool) -> None:
        generation, program = self._owner.program_snapshot()
        with self._lock:
            self._generation = generation
            self._counters["generations_published"] += 1
            if refresh:
                self._program = program
                self._counters["refreshes_published"] += 1
                message = ("refresh", generation, program)
            else:
                self._program = program
                message = ("generation", generation)
            for handle in self._workers:
                if handle.process is not None:
                    handle.requests.put(message)

    def warm(self, goals) -> None:
        """Replace the fleet's warm-goal list and re-warm every worker."""
        texts = [_goal_text(goal) for goal in goals]
        with self._lock:
            self._warm_goals = texts
            for handle in self._workers:
                if handle.process is not None:
                    handle.requests.put(("warm", texts))

    # -- observability ---------------------------------------------------------

    def stats(self, timeout: float = 30.0) -> dict:
        """Fleet-wide counters with per-worker observe histograms merged.

        Each worker contributes its ``session.stats()`` snapshot; their
        raw log2-µs bucket counters (``Tracer.histogram_export``) are
        summed per shape and quantiled *after* the merge — the only
        correct order — alongside the owner's own histograms, so
        ``stats()["observe"]["histograms"]`` reads exactly like a
        single session's aggregate view.
        """
        futures = [
            self._submit("stats", None, worker=handle.index)
            for handle in self._workers
            if handle.process is not None
        ]
        per_worker = [future.result(timeout) for future in futures]
        exports = [snapshot["histograms_raw"] for snapshot in per_worker]
        exports.append(self._owner.tracer.histogram_export())
        merged = merge_histogram_exports(exports)
        observes = {
            snapshot["worker"]: snapshot["stats"]["observe"]
            for snapshot in per_worker
        }
        with self._lock:
            serving = dict(self._counters)
            serving["workers"] = len(self._workers)
            serving["generation"] = self._generation
            serving["pending"] = len(self._pending)
        spans = sum(observe["spans"] for observe in observes.values())
        return {
            "serving": serving,
            "observe": {
                "spans": spans,
                "histograms": merged,
                "workers": observes,
            },
            "owner": {
                "generation": self._owner.kb.generation,
                "observe": self._owner.tracer.stats_snapshot(),
            },
        }

    def traces(self, timeout: float = 30.0) -> list:
        """Every resident span across the fleet, each stamped ``worker``."""
        futures = [
            self._submit("traces", None, worker=handle.index)
            for handle in self._workers
            if handle.process is not None
        ]
        records = []
        for future in futures:
            records.extend(future.result(timeout))
        records.extend(self._owner.traces())
        records.sort(key=lambda record: record.get("started_at", 0.0))
        return records

    def export_trace(self, path, timeout: float = 30.0) -> int:
        """Write the fleet's merged traces + stats to ``path`` as JSON."""
        import json

        traces = self.traces(timeout)
        payload = {"observe": self.stats(timeout), "traces": traces}
        with open(path, "w", encoding="utf-8") as sink:
            json.dump(payload, sink, indent=1)
            sink.write("\n")
        return len(traces)

    # -- shutdown --------------------------------------------------------------

    def close(self) -> None:
        """Stop the fleet; the owner session stays open (the caller's)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            workers = list(self._workers)
            for pending in self._pending.values():
                pending.complete(
                    "error",
                    ("ExecutionError", "serving tier closed", None),
                    self._generation,
                    -1,
                )
            self._pending.clear()
        for handle in workers:
            if handle.process is None:
                continue
            try:
                handle.requests.put(("stop",))
            except (ValueError, OSError):
                pass
        for handle in workers:
            if handle.process is None:
                continue
            handle.process.join(timeout=_STOP_GRACE_SECONDS)
            if handle.process.is_alive():
                handle.process.kill()
                handle.process.join(timeout=_STOP_GRACE_SECONDS)
            handle.process.close()
            handle.process = None
        self._monitor.join(timeout=_STOP_GRACE_SECONDS)
        # The collector polls self._closed between waits, so it exits on
        # its own — no sentinel write that could block on worker state.
        self._collector.join(timeout=_STOP_GRACE_SECONDS)
        for handle in workers:
            if handle.response_reader is not None:
                self._discard_reader(handle.response_reader)
                handle.response_reader = None

    def __enter__(self) -> "ServingTier":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _goal_text(goal):
    """Goals ship as source text: terms do not need to cross processes."""
    if isinstance(goal, str):
        return goal
    from ..prolog.writer import term_to_string

    return term_to_string(goal)
