"""Local optimization: syntactic and semantic DBCL simplification (paper §6)."""

from .chase import ChaseOutcome, chase
from .costs import estimate_row_cardinality, greedy_row_order, order_rows
from .inequalities import InequalityGraph, InequalityOutcome, analyse_comparisons
from .minimize import MinimizeOutcome, minimize
from .pipeline import (
    ABLATION_LEVELS,
    SimplificationResult,
    SimplifyOptions,
    simplify,
)
from .refint import RefintOutcome, remove_dangling_rows
from .valuebounds import BoundViolation, bound_assumptions, check_constants

__all__ = [
    "ChaseOutcome",
    "chase",
    "estimate_row_cardinality",
    "greedy_row_order",
    "order_rows",
    "InequalityGraph",
    "InequalityOutcome",
    "analyse_comparisons",
    "MinimizeOutcome",
    "minimize",
    "ABLATION_LEVELS",
    "SimplificationResult",
    "SimplifyOptions",
    "simplify",
    "RefintOutcome",
    "remove_dangling_rows",
    "BoundViolation",
    "bound_assumptions",
    "check_constants",
]
