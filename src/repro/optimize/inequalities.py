"""Inequality-based simplification (paper section 6.1).

A graph procedure in the style of Rosenkrantz and Hunt (1980) over the
conjunction of comparison predicates:

* nodes are the symbols and constants occurring in comparisons;
* ``a <= b`` contributes a non-strict edge, ``a < b`` a strict edge
  (``>``/``>=`` are mirrored first, ``=`` contributes edges both ways);
* comparable constants contribute their implicit ordering edges.

On this graph the procedure detects

* **contradictions** — a cycle containing a strict edge (or two distinct
  constants forced equal);
* **derived equalities** — cycles of non-strict edges collapse their
  members into one equivalence class, yielding variable renamings
  ("A >= B and B >= C and C >= A is equivalent to A = B and B = C");
* **sharpenings** — ``a <= b`` plus ``a neq b`` becomes ``a < b``;
* **redundancies** — comparisons implied by the rest of the set (and by
  declared value bounds, which enter the graph as *assumptions* and never
  appear in the output).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Iterable, Optional, Sequence, Union

from ..dbcl.predicate import Comparison
from ..dbcl.symbols import (
    ConstSymbol,
    JoinableSymbol,
    TargetSymbol,
    VarSymbol,
    compare_values,
    is_constant_symbol,
)
from ..errors import OptimizationError

Node = JoinableSymbol


@dataclass
class InequalityOutcome:
    """Result of analysing a comparison set."""

    contradiction: bool = False
    reason: str = ""
    #: variable renamings derived from equality cycles (v -> representative)
    renamings: dict[JoinableSymbol, JoinableSymbol] = field(default_factory=dict)
    #: equalities between symbols neither of which can be renamed
    #: (two target symbols); emitted as explicit eq comparisons
    residual_equalities: list[tuple[JoinableSymbol, JoinableSymbol]] = field(
        default_factory=list
    )
    #: the simplified comparison list (meaningless if contradiction)
    comparisons: list[Comparison] = field(default_factory=list)
    changed: bool = False


class InequalityGraph:
    """The strictness-annotated ordering graph over comparison operands."""

    def __init__(self):
        # adjacency: node -> {node: strict?}; parallel edges keep max strictness
        self._edges: dict[Node, dict[Node, bool]] = {}
        self._nodes: set[Node] = set()

    def add_node(self, node: Node) -> None:
        self._nodes.add(node)
        self._edges.setdefault(node, {})

    def add_edge(self, low: Node, high: Node, strict: bool) -> None:
        """Record ``low <= high`` (or ``low < high`` when strict)."""
        self.add_node(low)
        self.add_node(high)
        current = self._edges[low].get(high)
        if current is None or (strict and not current):
            self._edges[low][high] = strict

    def add_comparison(self, comparison: Comparison) -> None:
        """Insert one DBCL comparison (neq is handled by the caller)."""
        op, left, right = comparison.op, comparison.left, comparison.right
        if op in ("greater", "geq"):
            mirrored = comparison.mirrored()
            op, left, right = mirrored.op, mirrored.left, mirrored.right
        if op == "less":
            self.add_edge(left, right, strict=True)
        elif op == "leq":
            self.add_edge(left, right, strict=False)
        elif op == "eq":
            self.add_edge(left, right, strict=False)
            self.add_edge(right, left, strict=False)
        else:
            raise OptimizationError(f"cannot graph comparison {comparison}")

    def add_constant_ordering(self) -> None:
        """Implicit edges between constants, in SQLite's total order."""
        constants = [n for n in self._nodes if isinstance(n, ConstSymbol)]
        for a, b in combinations(constants, 2):
            ordering = compare_values(a.value, b.value)
            if ordering < 0:
                self.add_edge(a, b, strict=True)
            elif ordering > 0:
                self.add_edge(b, a, strict=True)
            # ordering == 0 cannot happen for distinct ConstSymbol nodes.

    # -- reachability ------------------------------------------------------------

    def nodes(self) -> set[Node]:
        return set(self._nodes)

    def reach(self, start: Node) -> dict[Node, bool]:
        """Nodes reachable from ``start``; value True if via a strict edge.

        A node may first be found non-strictly and later strictly; the
        traversal upgrades entries, so the result is exact.
        """
        reached: dict[Node, bool] = {}
        stack: list[tuple[Node, bool]] = [(start, False)]
        while stack:
            node, strict = stack.pop()
            for successor, edge_strict in self._edges.get(node, {}).items():
                path_strict = strict or edge_strict
                known = reached.get(successor)
                if known is None or (path_strict and not known):
                    reached[successor] = path_strict
                    stack.append((successor, path_strict))
        return reached

    def implies(self, low: Node, high: Node, strict: bool) -> bool:
        """Does the graph imply ``low <= high`` (or ``<`` when strict)?"""
        if low == high:
            return not strict
        if isinstance(low, ConstSymbol) and isinstance(high, ConstSymbol):
            ordering = compare_values(low.value, high.value)
            return ordering < 0 if strict else ordering <= 0
        # Constant operands not yet in the graph still order against the
        # graph's constants (e.g. x <= 90000 implies x < 200000): integrate
        # them before searching.
        integrated = False
        for operand in (low, high):
            if isinstance(operand, ConstSymbol) and operand not in self._nodes:
                self.add_node(operand)
                integrated = True
        if integrated:
            self.add_constant_ordering()
        if low not in self._nodes:
            return False
        reached = self.reach(low)
        found = reached.get(high)
        if found is None:
            return False
        return found if strict else True


def _representative(members: Sequence[Node]) -> Node:
    """Pick the symbol an equivalence class collapses to.

    Constants win (constant propagation), then target symbols (they cannot
    be renamed), then the lexicographically smallest variable for
    determinism.
    """
    constants = [m for m in members if isinstance(m, ConstSymbol)]
    if constants:
        return constants[0]
    targets = [m for m in members if isinstance(m, TargetSymbol)]
    if targets:
        return sorted(targets, key=str)[0]
    return sorted(members, key=str)[0]


def _strongly_connected(graph: InequalityGraph) -> list[list[Node]]:
    """Tarjan SCCs over the ordering edges (iterative)."""
    index: dict[Node, int] = {}
    lowlink: dict[Node, int] = {}
    on_stack: set[Node] = set()
    stack: list[Node] = []
    components: list[list[Node]] = []
    counter = [0]

    for root in graph.nodes():
        if root in index:
            continue
        work: list[tuple[Node, Optional[Iterable]]] = [(root, None)]
        while work:
            node, iterator = work.pop()
            if iterator is None:
                index[node] = lowlink[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
                iterator = iter(list(graph._edges.get(node, {})))
            advanced = False
            for successor in iterator:
                if successor not in index:
                    work.append((node, iterator))
                    work.append((successor, None))
                    advanced = True
                    break
                if successor in on_stack:
                    lowlink[node] = min(lowlink[node], index[successor])
            if advanced:
                continue
            if lowlink[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return components


def analyse_comparisons(
    comparisons: Sequence[Comparison],
    assumptions: Sequence[Comparison] = (),
) -> InequalityOutcome:
    """Run the full inequality simplification.

    ``assumptions`` (value bounds) participate in contradiction and
    redundancy reasoning but are never emitted in the output comparison
    list.
    """
    outcome = InequalityOutcome()

    ordering = [c for c in comparisons if c.op != "neq"]
    neqs = [c for c in comparisons if c.op == "neq"]
    assumed_ordering = [c for c in assumptions if c.op != "neq"]

    graph = InequalityGraph()
    for comparison in ordering + assumed_ordering:
        graph.add_comparison(comparison)
    graph.add_constant_ordering()

    # -- contradictions and equality classes over the SCCs -------------------
    for component in _strongly_connected(graph):
        if len(component) < 2:
            continue
        # Any strict edge inside the component makes a < cycle.
        component_set = set(component)
        for node in component:
            for successor, strict in graph._edges.get(node, {}).items():
                if strict and successor in component_set:
                    outcome.contradiction = True
                    outcome.reason = (
                        f"cyclic ordering forces {node} < {node} via {successor}"
                    )
                    return outcome
        constants = {
            n.value for n in component if isinstance(n, ConstSymbol)
        }
        if len(constants) > 1:
            outcome.contradiction = True
            outcome.reason = f"distinct constants {sorted(map(str, constants))} forced equal"
            return outcome
        representative = _representative(component)
        for member in component:
            if member == representative:
                continue
            if isinstance(member, TargetSymbol):
                if isinstance(representative, ConstSymbol):
                    # A target equal to a constant stays in place; record the
                    # equality so the pipeline keeps the restriction.
                    outcome.residual_equalities.append((member, representative))
                else:
                    outcome.residual_equalities.append((member, representative))
            else:
                outcome.renamings[member] = representative

    # neq inside an equivalence class is a contradiction.
    rename = lambda s: outcome.renamings.get(s, s)
    for comparison in neqs:
        left, right = rename(comparison.left), rename(comparison.right)
        if left == right:
            outcome.contradiction = True
            outcome.reason = f"{comparison.left} <> {comparison.right} but they are forced equal"
            return outcome

    if outcome.renamings or outcome.residual_equalities:
        outcome.changed = True

    # -- rebuild the graph after renaming for sharpening/redundancy ----------
    def rename_comparison(comparison: Comparison) -> Comparison:
        return Comparison(
            comparison.op, rename(comparison.left), rename(comparison.right)
        )

    renamed_ordering = [rename_comparison(c) for c in ordering]
    renamed_assumed = [rename_comparison(c) for c in assumed_ordering]
    renamed_neqs = [rename_comparison(c) for c in neqs]

    base_graph = InequalityGraph()
    for comparison in renamed_ordering + renamed_assumed:
        base_graph.add_comparison(comparison)
    base_graph.add_constant_ordering()

    # Sharpen: a <= b plus a <> b gives a < b (paper's A >= B >= C, A <> C).
    sharpened: list[Comparison] = []
    used_neq: set[int] = set()
    for position, comparison in enumerate(renamed_neqs):
        left, right = comparison.left, comparison.right
        if base_graph.implies(left, right, strict=False) and not base_graph.implies(
            left, right, strict=True
        ):
            sharpened.append(Comparison("less", left, right))
            used_neq.add(position)
            outcome.changed = True
        elif base_graph.implies(right, left, strict=False) and not base_graph.implies(
            right, left, strict=True
        ):
            sharpened.append(Comparison("less", right, left))
            used_neq.add(position)
            outcome.changed = True

    candidate_ordering = renamed_ordering + sharpened
    remaining_neqs = [
        c for i, c in enumerate(renamed_neqs)
        if i not in used_neq
    ]

    # -- drop ground comparisons and redundancies ------------------------------
    kept: list[Comparison] = []
    for position, comparison in enumerate(candidate_ordering):
        if comparison.left == comparison.right:
            if comparison.op in ("eq", "leq", "geq"):
                outcome.changed = True
                continue  # trivially true
            outcome.contradiction = True
            outcome.reason = f"{comparison} compares a symbol with itself"
            return outcome
        if comparison.is_ground:
            if comparison.evaluate_ground():
                outcome.changed = True
                continue
            outcome.contradiction = True
            outcome.reason = f"ground comparison {comparison} is false"
            return outcome
        # Redundant if implied by everything else (assumptions + the other
        # kept/pending ordering comparisons).
        others = InequalityGraph()
        for other in kept + candidate_ordering[position + 1 :] + renamed_assumed:
            others.add_comparison(other)
        others.add_constant_ordering()
        strict = comparison.op == "less"
        low, high = comparison.left, comparison.right
        if comparison.op in ("greater", "geq"):
            low, high = high, low
            strict = comparison.op == "greater"
        if comparison.op == "eq":
            implied = others.implies(low, high, False) and others.implies(
                high, low, False
            )
        else:
            implied = others.implies(low, high, strict)
        if implied:
            outcome.changed = True
            continue
        kept.append(comparison)

    # neq redundancy: implied by a strict ordering either way.
    final_graph = InequalityGraph()
    for comparison in kept + renamed_assumed:
        final_graph.add_comparison(comparison)
    final_graph.add_constant_ordering()
    for comparison in remaining_neqs:
        if comparison.is_ground:
            if comparison.evaluate_ground():
                outcome.changed = True
                continue
            outcome.contradiction = True
            outcome.reason = f"ground comparison {comparison} is false"
            return outcome
        left, right = comparison.left, comparison.right
        if final_graph.implies(left, right, True) or final_graph.implies(
            right, left, True
        ):
            outcome.changed = True
            continue
        kept.append(comparison)

    # Equalities that could not become renamings (they involve target
    # symbols) must survive as explicit eq comparisons — unless the kept
    # set already implies them.
    for left, right in outcome.residual_equalities:
        if final_graph.implies(left, right, False) and final_graph.implies(
            right, left, False
        ):
            continue
        kept.append(Comparison("eq", left, right))

    outcome.comparisons = kept
    return outcome
