"""Tokenizer and parser for the Prolog subset used by the front-end.

The reader accepts the syntax appearing in the paper: facts, rules with
``:-``, conjunction ``,``, disjunction ``;``, negation ``not/1`` and ``\\+``,
cut ``!``, lists, anonymous variables ``_``, quoted atoms, numbers, and the
comparison operators (``<``, ``>``, ``=<``, ``>=``, ``=``, ``\\=``) which are
normalised to the named predicates of
:data:`repro.prolog.terms.COMPARISON_PREDICATES` (``less/2`` etc.) so that
later pipeline stages only ever see one spelling.

This is a classical recursive-descent parser over a hand-written tokenizer;
full operator-precedence parsing (user-defined ops) is not needed for the
paper's programs and is deliberately left out.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Optional

from ..errors import PrologSyntaxError
from .terms import (
    CUT,
    EMPTY_LIST,
    OPERATOR_TO_PREDICATE,
    Atom,
    Clause,
    Number,
    PString,
    Struct,
    Term,
    Variable,
    make_list,
)

_SYMBOLIC = {
    ":-", "?-", "-->",
    ",", ";", "!", "|",
    "(", ")", "[", "]",
    "=..", "==", "\\==", "=:=", "=\\=",
    "=<", ">=", "<", ">", "=", "\\=",
    "\\+", "+", "-", "*", "/", ".",
}

# Longest-match-first ordering for symbolic tokens.
_SYMBOLIC_SORTED = sorted(_SYMBOLIC, key=len, reverse=True)


@dataclass(frozen=True, slots=True)
class Token:
    """A lexical token with source position for error reporting."""

    kind: str  # 'atom' | 'var' | 'number' | 'string' | 'punct' | 'end'
    text: str
    line: int
    column: int


class Tokenizer:
    """Converts Prolog source text into a token stream."""

    def __init__(self, text: str):
        self._text = text
        self._pos = 0
        self._line = 1
        self._column = 1

    def tokens(self) -> Iterator[Token]:
        """Yield all tokens, ending with a single ``end`` token."""
        while True:
            self._skip_layout()
            if self._pos >= len(self._text):
                yield Token("end", "", self._line, self._column)
                return
            yield self._next_token()

    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        if index < len(self._text):
            return self._text[index]
        return ""

    def _advance(self, count: int = 1) -> str:
        chunk = self._text[self._pos : self._pos + count]
        for char in chunk:
            if char == "\n":
                self._line += 1
                self._column = 1
            else:
                self._column += 1
        self._pos += count
        return chunk

    def _skip_layout(self) -> None:
        while self._pos < len(self._text):
            char = self._peek()
            if char in " \t\r\n":
                self._advance()
            elif char == "%":
                while self._pos < len(self._text) and self._peek() != "\n":
                    self._advance()
            elif char == "/" and self._peek(1) == "*":
                self._advance(2)
                while self._pos < len(self._text) and not (
                    self._peek() == "*" and self._peek(1) == "/"
                ):
                    self._advance()
                if self._pos >= len(self._text):
                    raise PrologSyntaxError(
                        "unterminated block comment", self._line, self._column
                    )
                self._advance(2)
            else:
                return

    def _next_token(self) -> Token:
        line, column = self._line, self._column
        char = self._peek()

        if char.isdigit():
            return self._read_number(line, column)
        if char == "_" or char.isalpha():
            return self._read_name(line, column)
        if char == "'":
            return self._read_quoted_atom(line, column)
        if char == '"':
            return self._read_string(line, column)

        # End-of-clause dot: a '.' followed by layout or EOF.
        if char == "." and (self._peek(1) in "" or self._peek(1) in " \t\r\n%" or self._peek(1) == ""):
            self._advance()
            return Token("punct", ".", line, column)

        for symbol in _SYMBOLIC_SORTED:
            if self._text.startswith(symbol, self._pos):
                self._advance(len(symbol))
                return Token("punct", symbol, line, column)

        raise PrologSyntaxError(f"unexpected character {char!r}", line, column)

    def _read_number(self, line: int, column: int) -> Token:
        start = self._pos
        while self._peek().isdigit():
            self._advance()
        if self._peek() == "." and self._peek(1).isdigit():
            self._advance()
            while self._peek().isdigit():
                self._advance()
        return Token("number", self._text[start : self._pos], line, column)

    def _read_name(self, line: int, column: int) -> Token:
        start = self._pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self._text[start : self._pos]
        first = text[0]
        if first == "_" or first.isupper():
            return Token("var", text, line, column)
        return Token("atom", text, line, column)

    def _read_quoted_atom(self, line: int, column: int) -> Token:
        return Token("atom", self._read_quoted("'"), line, column)

    def _read_string(self, line: int, column: int) -> Token:
        return Token("string", self._read_quoted('"'), line, column)

    def _read_quoted(self, quote: str) -> str:
        self._advance()  # opening quote
        chars: list[str] = []
        while True:
            if self._pos >= len(self._text):
                raise PrologSyntaxError(
                    "unterminated quoted token", self._line, self._column
                )
            char = self._peek()
            if char == quote:
                if self._peek(1) == quote:  # doubled quote escapes itself
                    chars.append(quote)
                    self._advance(2)
                    continue
                self._advance()
                return "".join(chars)
            if char == "\\":
                self._advance()
                escape = self._advance()
                chars.append({"n": "\n", "t": "\t", "\\": "\\", quote: quote}.get(escape, escape))
                continue
            chars.append(self._advance())


class Parser:
    """Recursive-descent parser producing :class:`Clause` and :class:`Term`."""

    _anon_counter = itertools.count(1)

    def __init__(self, text: str):
        self._tokens = list(Tokenizer(text).tokens())
        self._index = 0

    # -- token helpers ----------------------------------------------------

    def _current(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        if token.kind != "end":
            self._index += 1
        return token

    def _expect(self, kind: str, text: Optional[str] = None) -> Token:
        token = self._current()
        if token.kind != kind or (text is not None and token.text != text):
            wanted = text or kind
            raise PrologSyntaxError(
                f"expected {wanted!r}, found {token.text or 'end of input'!r}",
                token.line,
                token.column,
            )
        return self._advance()

    def _at(self, kind: str, text: Optional[str] = None) -> bool:
        token = self._current()
        return token.kind == kind and (text is None or token.text == text)

    # -- public entry points ----------------------------------------------

    def parse_program(self) -> list[Clause]:
        """Parse a whole program: a sequence of ``.``-terminated clauses."""
        clauses = []
        while not self._at("end"):
            clauses.append(self.parse_clause())
        return clauses

    def parse_clause(self) -> Clause:
        """Parse one clause (fact, rule, or directive body after ``?-``)."""
        if self._at("punct", ":-") or self._at("punct", "?-"):
            self._advance()
            body = self._parse_term(1200)
            self._expect("punct", ".")
            return Clause(Atom("?-"), body)
        head = self._parse_term(999)
        if self._at("punct", ":-"):
            self._advance()
            body = self._parse_term(1200)
            self._expect("punct", ".")
            return Clause(head, body)
        self._expect("punct", ".")
        return Clause(head)

    def parse_goal(self) -> Term:
        """Parse a single goal term (no trailing dot required)."""
        goal = self._parse_term(1200)
        if self._at("punct", "."):
            self._advance()
        if not self._at("end"):
            token = self._current()
            raise PrologSyntaxError(
                f"trailing input after goal: {token.text!r}", token.line, token.column
            )
        return goal

    # -- grammar ----------------------------------------------------------

    # A tiny operator-precedence core: binary operators with their
    # priorities, all right-associative except comparisons (non-assoc).
    _BINARY = {
        ":-": 1200,
        ";": 1100,
        ",": 1000,
        "=": 700, "\\=": 700, "==": 700, "\\==": 700,
        "=:=": 700, "=\\=": 700, "<": 700, ">": 700, "=<": 700, ">=": 700,
        "=..": 700, "is": 700,
        "+": 500, "-": 500,
        "*": 400, "/": 400, "mod": 400,
    }
    _NON_ASSOC = {
        ":-",
        "=", "\\=", "==", "\\==", "=:=", "=\\=", "<", ">", "=<", ">=", "=..", "is",
    }
    # Operators spelled as alphabetic atoms rather than symbolic punctuation.
    _ATOM_OPERATORS = {"is", "mod"}

    def _parse_term(self, max_priority: int) -> Term:
        left = self._parse_primary()
        while True:
            token = self._current()
            is_atom_operator = token.kind == "atom" and token.text in self._ATOM_OPERATORS
            if token.kind != "punct" and not is_atom_operator:
                return left
            priority = self._BINARY.get(token.text)
            if priority is None or priority > max_priority:
                return left
            self._advance()
            if token.text in self._NON_ASSOC:
                right = self._parse_term(priority - 1)
            else:
                right = self._parse_term(priority)
            left = self._combine(token.text, left, right)

    def _combine(self, operator: str, left: Term, right: Term) -> Term:
        # Comparison operators normalise to named predicates so the rest of
        # the pipeline sees a single canonical spelling.
        if operator in OPERATOR_TO_PREDICATE:
            return Struct(OPERATOR_TO_PREDICATE[operator], (left, right))
        return Struct(operator, (left, right))

    def _parse_primary(self) -> Term:
        token = self._current()

        if token.kind == "number":
            self._advance()
            text = token.text
            return Number(float(text) if "." in text else int(text))

        if token.kind == "string":
            self._advance()
            return PString(token.text)

        if token.kind == "var":
            self._advance()
            if token.text == "_":
                # Each bare underscore is a distinct variable.
                return Variable(f"_Anon{next(self._anon_counter)}")
            return Variable(token.text)

        if token.kind == "atom":
            self._advance()
            if self._at("punct", "(") and self._no_space_before():
                return self._parse_compound(token.text)
            return Atom(token.text)

        if token.kind == "punct":
            if token.text == "(":
                self._advance()
                inner = self._parse_term(1200)
                self._expect("punct", ")")
                return inner
            if token.text == "[":
                return self._parse_list()
            if token.text == "!":
                self._advance()
                return CUT
            if token.text == "\\+":
                self._advance()
                argument = self._parse_term(900)
                return Struct("not", (argument,))
            if token.text == "-":
                self._advance()
                operand = self._parse_primary()
                if isinstance(operand, Number):
                    return Number(-operand.value)
                return Struct("-", (operand,))
            if token.text == "*":
                # DBCL writes '*' for non-applicable tableau cells; in a
                # primary position it is the atom '*', never multiplication.
                self._advance()
                return Atom("*")

        raise PrologSyntaxError(
            f"unexpected token {token.text or 'end of input'!r}",
            token.line,
            token.column,
        )

    def _no_space_before(self) -> bool:
        # The tokenizer discards layout, so a '(' directly following an atom
        # is treated as a call; `foo (X)` is rare enough not to matter here.
        return True

    def _parse_compound(self, functor: str) -> Term:
        self._expect("punct", "(")
        args = [self._parse_term(999)]
        while self._at("punct", ","):
            self._advance()
            args.append(self._parse_term(999))
        self._expect("punct", ")")
        return Struct(functor, tuple(args))

    def _parse_list(self) -> Term:
        self._expect("punct", "[")
        if self._at("punct", "]"):
            self._advance()
            return EMPTY_LIST
        items = [self._parse_term(999)]
        while self._at("punct", ","):
            self._advance()
            items.append(self._parse_term(999))
        tail: Term = EMPTY_LIST
        if self._at("punct", "|"):
            self._advance()
            tail = self._parse_term(999)
        self._expect("punct", "]")
        return make_list(items, tail)


def parse_program(text: str) -> list[Clause]:
    """Parse Prolog source text into a list of clauses."""
    return Parser(text).parse_program()


def parse_clause(text: str) -> Clause:
    """Parse a single clause."""
    parser = Parser(text)
    clause = parser.parse_clause()
    if not parser._at("end"):
        token = parser._current()
        raise PrologSyntaxError(
            f"trailing input after clause: {token.text!r}", token.line, token.column
        )
    return clause


def parse_goal(text: str) -> Term:
    """Parse a goal (query body) such as ``works_dir_for(X, smiley), less(S, 40000)``."""
    return Parser(text).parse_goal()


def parse_term(text: str) -> Term:
    """Parse a single term."""
    return Parser(text).parse_goal()
