"""Property-based tests (hypothesis) for core invariants.

The key soundness property of the whole system is at the bottom:
for arbitrary conjunctive queries over arbitrary generated databases,
the *optimized* SQL returns exactly the same answers as the *direct*
translation — Algorithm 2 must never change a query's meaning.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.dbcl import Comparison, ConstSymbol, TargetSymbol, VarSymbol
from repro.dbms import generate_org, make_loaded_database
from repro.metaevaluate import Metaevaluator
from repro.optimize import analyse_comparisons, chase, simplify
from repro.prolog import KnowledgeBase, parse_clause, var
from repro.prolog.terms import Atom, Clause, Number, Struct, Variable
from repro.prolog.unify import unify
from repro.prolog.writer import clause_to_string
from repro.schema import (
    SAME_MANAGER_SOURCE,
    WORKS_DIR_FOR_SOURCE,
    empdep_constraints,
    empdep_schema,
)
from repro.sql import translate

# ---------------------------------------------------------------------------
# term / unification strategies
# ---------------------------------------------------------------------------

atoms = st.sampled_from([Atom("a"), Atom("b"), Atom("smiley"), Atom("jones")])
numbers = st.integers(min_value=-5, max_value=5).map(Number)
variables = st.sampled_from([var("X"), var("Y"), var("Z")])


def terms(max_depth=2):
    base = st.one_of(atoms, numbers, variables)
    if max_depth == 0:
        return base
    return st.one_of(
        base,
        st.builds(
            lambda f, args: Struct(f, tuple(args)),
            st.sampled_from(["f", "g"]),
            st.lists(terms(max_depth - 1), min_size=1, max_size=3),
        ),
    )


class TestUnificationProperties:
    @given(terms(), terms())
    @settings(max_examples=200)
    def test_unifier_makes_terms_equal(self, left, right):
        # With the occurs check on, the computed unifier really unifies.
        # (Without it, X = f(X) builds a cyclic binding whose deep
        # application would diverge — standard Prolog behaviour that the
        # metaevaluator never triggers.)
        subst = unify(left, right, occurs_check=True)
        if subst is not None:
            assert subst.apply(left) == subst.apply(right)

    @given(variables)
    @settings(max_examples=10)
    def test_occurs_check_blocks_cyclic_binding(self, variable):
        cyclic = Struct("f", (variable,))
        assert unify(variable, cyclic, occurs_check=True) is None
        assert unify(variable, cyclic) is not None  # classic Prolog

    @given(terms(), terms())
    @settings(max_examples=200)
    def test_unification_symmetric(self, left, right):
        assert (unify(left, right) is None) == (unify(right, left) is None)

    @given(terms())
    @settings(max_examples=100)
    def test_self_unification(self, term):
        assert unify(term, term) is not None

    @given(terms())
    @settings(max_examples=100)
    def test_ground_substitution_idempotent(self, term):
        subst = unify(var("W"), term)
        once = subst.apply(var("W"))
        assert subst.apply(once) == once


class TestWriterParserRoundTrip:
    @given(terms())
    @settings(max_examples=200)
    def test_clause_roundtrip(self, term):
        clause = Clause(Struct("p", (term,)))
        text = clause_to_string(clause)
        reparsed = parse_clause(text)
        # Round-trip up to printing (variable ordinals may render inline).
        assert clause_to_string(reparsed) == text


# ---------------------------------------------------------------------------
# workload generator invariants
# ---------------------------------------------------------------------------


class TestWorkloadProperties:
    @given(
        depth=st.integers(min_value=0, max_value=3),
        branching=st.integers(min_value=1, max_value=3),
        extra_staff=st.integers(min_value=1, max_value=3),
        seed=st.integers(min_value=0, max_value=10_000),
        acyclic=st.booleans(),
    )
    @settings(max_examples=30, deadline=None)
    def test_constraints_always_hold(self, depth, branching, extra_staff, seed, acyclic):
        staff = branching + extra_staff
        org = generate_org(
            depth=depth,
            branching=branching,
            staff_per_dept=staff,
            seed=seed,
            acyclic_top=acyclic,
        )
        enos = [e.eno for e in org.employees]
        nams = [e.nam for e in org.employees]
        assert len(set(enos)) == len(enos)
        assert len(set(nams)) == len(nams)
        assert all(10000 <= e.sal <= 90000 for e in org.employees)
        dnos = {d.dno for d in org.departments}
        assert all(e.dno in dnos for e in org.employees)
        mgrs = [d.mgr for d in org.departments]
        assert len(set(mgrs)) == len(mgrs)
        if not acyclic:
            assert all(m in set(enos) for m in mgrs)

    @given(seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=20, deadline=None)
    def test_oracle_transitivity(self, seed):
        org = generate_org(depth=2, branching=2, staff_per_dept=3, seed=seed)
        closure = org.works_for_pairs()
        direct = org.works_dir_for_pairs()
        for low, mid in direct:
            for mid2, high in direct:
                if mid == mid2 and low != high:
                    assert (low, high) in closure


# ---------------------------------------------------------------------------
# inequality analysis: semantic preservation
# ---------------------------------------------------------------------------

_SYMBOLS = [VarSymbol("A"), VarSymbol("B"), VarSymbol("C")]
_OPERANDS = _SYMBOLS + [ConstSymbol(0), ConstSymbol(5)]

comparison_lists = st.lists(
    st.builds(
        Comparison,
        st.sampled_from(["eq", "neq", "less", "greater", "leq", "geq"]),
        st.sampled_from(_OPERANDS),
        st.sampled_from(_OPERANDS),
    ),
    max_size=5,
)


def _satisfies(comparisons, assignment) -> bool:
    def value(symbol):
        if isinstance(symbol, ConstSymbol):
            return symbol.value
        return assignment[symbol]

    for c in comparisons:
        left, right = value(c.left), value(c.right)
        ok = {
            "eq": left == right,
            "neq": left != right,
            "less": left < right,
            "greater": left > right,
            "leq": left <= right,
            "geq": left >= right,
        }[c.op]
        if not ok:
            return False
    return True


class TestInequalityProperties:
    @given(
        comparisons=comparison_lists,
        values=st.tuples(
            st.integers(min_value=-2, max_value=7),
            st.integers(min_value=-2, max_value=7),
            st.integers(min_value=-2, max_value=7),
        ),
    )
    @settings(max_examples=300)
    def test_analysis_preserves_semantics(self, comparisons, values):
        """Any assignment satisfies the input iff it satisfies the output.

        The output is the kept comparisons *plus* the derived renamings
        interpreted as equalities.
        """
        try:
            outcome = analyse_comparisons(comparisons)
        except Exception:  # cross-type orderings raise; not under test here
            return
        assignment = dict(zip(_SYMBOLS, values))
        input_ok = _satisfies(comparisons, assignment)
        if outcome.contradiction:
            assert not input_ok
            return
        renaming_equalities = [
            Comparison("eq", source, target)
            for source, target in outcome.renamings.items()
        ]
        output_ok = _satisfies(
            list(outcome.comparisons) + renaming_equalities, assignment
        )
        assert input_ok == output_ok


# ---------------------------------------------------------------------------
# end-to-end soundness: optimized SQL == direct SQL
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def soundness_env():
    schema = empdep_schema()
    constraints = empdep_constraints(schema)
    database, org = make_loaded_database(
        depth=3, branching=2, staff_per_dept=4, seed=99, schema=schema
    )
    kb = KnowledgeBase()
    kb.consult(WORKS_DIR_FOR_SOURCE)
    kb.consult(SAME_MANAGER_SOURCE)
    evaluator = Metaevaluator(schema, kb)
    yield evaluator, constraints, database, org
    database.close()


class TestOptimizerSoundness:
    @given(
        shape=st.integers(min_value=0, max_value=3),
        who=st.integers(min_value=0, max_value=59),
        threshold=st.integers(min_value=0, max_value=30).map(lambda k: k * 10_000),
    )
    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_simplified_query_same_answers(
        self, soundness_env, shape, who, threshold
    ):
        evaluator, constraints, database, org = soundness_env
        name = org.employees[who % len(org.employees)].nam
        goals = [
            f"same_manager(X, {name})",
            f"works_dir_for(X, {name}), empl(_, X, S, _), less(S, {threshold})",
            f"works_dir_for(X, Y), empl(_, X, S, _), geq(S, {threshold})",
            f"works_dir_for(X, {name}), works_dir_for(Y, X)",
        ]
        predicate = evaluator.metaevaluate(goals[shape])
        result = simplify(predicate, constraints)
        direct_rows = set(database.execute(translate(predicate, distinct=True)))
        if result.is_empty:
            assert direct_rows == set()
            return
        optimized_rows = set(
            database.execute(translate(result.predicate, distinct=True))
        )
        assert optimized_rows == direct_rows

    @given(
        who=st.integers(min_value=0, max_value=59),
        threshold=st.integers(min_value=0, max_value=30).map(lambda k: k * 10_000),
    )
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_simplify_idempotent(self, soundness_env, who, threshold):
        evaluator, constraints, database, org = soundness_env
        name = org.employees[who % len(org.employees)].nam
        predicate = evaluator.metaevaluate(
            f"works_dir_for(X, {name}), empl(_, X, S, _), less(S, {threshold})"
        )
        once = simplify(predicate, constraints)
        if once.is_empty:
            return
        twice = simplify(once.predicate, constraints)
        assert not twice.is_empty
        assert twice.predicate.canonical_key() == once.predicate.canonical_key()

    @given(
        who=st.integers(min_value=0, max_value=59),
        threshold_a=st.integers(min_value=1, max_value=8).map(lambda k: k * 10_000),
        threshold_b=st.integers(min_value=1, max_value=8).map(lambda k: k * 10_000),
    )
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_containment_implies_answer_subset(
        self, soundness_env, who, threshold_a, threshold_b
    ):
        """If contains(a, b) then answers(b) ⊆ answers(a) on live data."""
        from repro.dbcl import contains

        evaluator, constraints, database, org = soundness_env
        name = org.employees[who % len(org.employees)].nam
        a = evaluator.metaevaluate(
            f"works_dir_for(X, {name}), empl(_, X, S, _), less(S, {threshold_a})"
        )
        b = evaluator.metaevaluate(
            f"works_dir_for(X, {name}), empl(_, X, S, _), less(S, {threshold_b})"
        )
        if contains(a, b):
            rows_a = set(database.execute(translate(a, distinct=True)))
            rows_b = set(database.execute(translate(b, distinct=True)))
            assert rows_b <= rows_a

    @given(who=st.integers(min_value=0, max_value=59))
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_chase_idempotent(self, soundness_env, who):
        evaluator, constraints, database, org = soundness_env
        name = org.employees[who % len(org.employees)].nam
        predicate = evaluator.metaevaluate(f"same_manager(X, {name})")
        once = chase(predicate, constraints)
        twice = chase(once.predicate, constraints)
        assert not twice.changed

    @given(
        who=st.integers(min_value=0, max_value=59),
        renumber=st.integers(min_value=1, max_value=50),
    )
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_canonical_key_renaming_invariant(self, soundness_env, who, renumber):
        evaluator, constraints, database, org = soundness_env
        name = org.employees[who % len(org.employees)].nam
        predicate = evaluator.metaevaluate(f"same_manager(X, {name})")
        mapping = {
            symbol: VarSymbol(f"R{renumber}", i)
            for i, symbol in enumerate(predicate.var_symbols())
        }
        renamed = predicate.rename(mapping)
        assert renamed.canonical_key() == predicate.canonical_key()
        assert renamed.canonical_form() == predicate.canonical_form()


# ---------------------------------------------------------------------------
# metamorphic serving properties (ROADMAP E20 harness seed)
# ---------------------------------------------------------------------------

from repro.coupling import PrologDbSession  # noqa: E402
from repro.coupling.global_opt import CachePolicy  # noqa: E402
from repro.schema import ALL_VIEWS_SOURCE  # noqa: E402

#: One small shared org: the *schedules* vary per example, not the data.
_META_ORG = generate_org(depth=2, branching=2, staff_per_dept=3, seed=29)
_META_NAMES = tuple(employee.nam for employee in _META_ORG.employees)

#: Goal templates, each closed over one employee-name constant.
_META_TEMPLATES = (
    "works_dir_for(X, {name})",
    "works_dir_for({name}, Y)",
    "empl(E, {name}, S, D)",
    "same_manager(X, {name})",
    "works_dir_for(X, Y)",
)


def _meta_goal(template_index: int, name_index: int) -> str:
    template = _META_TEMPLATES[template_index % len(_META_TEMPLATES)]
    return template.format(name=_META_NAMES[name_index % len(_META_NAMES)])


def _meta_fact(slot: int) -> tuple:
    """A deterministic empl tuple for mutation op ``slot``."""
    return (900 + slot, f"hypo{slot:02d}", 21000 + 500 * slot, 1 + slot % 3)


def _meta_session(warm: bool) -> PrologDbSession:
    session = PrologDbSession(
        plan_cache=warm,
        cache_policy=CachePolicy(enabled=warm),
    )
    session.load_org(_META_ORG)
    session.consult(ALL_VIEWS_SOURCE)
    return session


_meta_ops = st.one_of(
    st.tuples(
        st.just("ask"),
        st.integers(min_value=0, max_value=len(_META_TEMPLATES) - 1),
        st.integers(min_value=0, max_value=len(_META_NAMES) - 1),
    ),
    st.tuples(st.just("assert"), st.integers(min_value=0, max_value=5)),
    st.tuples(st.just("retract"), st.integers(min_value=0, max_value=5)),
)


class TestMetamorphicServing:
    """Warm ≡ cold and batched ≡ serial over generated ask/mutation
    schedules — shrinking hands back the minimal divergent schedule."""

    @given(schedule=st.lists(_meta_ops, min_size=1, max_size=10))
    @settings(max_examples=12, deadline=None)
    def test_warm_equals_cold_under_interleaved_mutations(self, schedule):
        warm = _meta_session(warm=True)
        cold = _meta_session(warm=False)
        try:
            asks = 0
            for op in schedule:
                if op[0] == "ask":
                    goal = _meta_goal(op[1], op[2])
                    asks += 1
                    assert answer_sets(warm.ask(goal)) == answer_sets(
                        cold.ask(goal)
                    ), goal
                elif op[0] == "assert":
                    warm.assert_fact("empl", *_meta_fact(op[1]))
                    cold.assert_fact("empl", *_meta_fact(op[1]))
                else:
                    assert warm.retract_fact(
                        "empl", *_meta_fact(op[1])
                    ) == cold.retract_fact("empl", *_meta_fact(op[1]))
            # the E20 harness contract: every generated ask left a trace
            assert warm.stats()["observe"]["spans"] == asks
            assert len(warm.traces()) == min(asks, warm.tracer.ring.size)
        finally:
            warm.close()
            cold.close()

    @given(
        goals=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=len(_META_TEMPLATES) - 1),
                st.integers(min_value=0, max_value=len(_META_NAMES) - 1),
            ),
            min_size=2,
            max_size=12,
        )
    )
    @settings(max_examples=12, deadline=None)
    def test_batched_equals_serial(self, goals):
        session = _meta_session(warm=True)
        try:
            texts = [_meta_goal(t, n) for t, n in goals]
            serial = [session.ask(goal) for goal in texts]
            batched = session.ask_many(texts)
            for goal, lone, grouped in zip(texts, serial, batched):
                assert answer_sets(lone) == answer_sets(grouped), goal
            # every goal traced: the serial pass and the ask_many pass
            assert session.stats()["observe"]["spans"] == 2 * len(texts)
        finally:
            session.close()


def answer_sets(answers):
    return {frozenset(answer.items()) for answer in answers}


# ---------------------------------------------------------------------------
# consistent query answering (ROADMAP E19)
# ---------------------------------------------------------------------------

from repro.cqa import repair_instances, split_blocks  # noqa: E402
from repro.dbms.sqlite_backend import ExternalDatabase  # noqa: E402

#: Goal pool spanning both CQA regimes: the first four are self-join-free
#: and FO-rewritable; the last self-joins empl and forces the block-wise
#: repair enumerator.
_CQA_GOALS = (
    "empl(E, N, S, D)",
    "empl(1, N, S, D)",
    "empl(E, N, S, 10)",
    "empl(E, N, S, D), dept(D, F, M)",
    "empl(E, N, S, D), empl(M, N2, S2, D2), dept(D, F, M)",
)
_CQA_DEPT = [(10, "sales", 1), (20, "eng", 2)]

# eno collisions are the point: up to 6 rows over 3 key values yields
# plenty of violating blocks but at most a handful of repairs.  Salaries
# stay inside the declared valuebound [10000, 90000].
_cqa_rows = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=3),
        st.sampled_from(["ann", "bob", "cal", "dee"]),
        st.sampled_from([20000, 30000, 40000]),
        st.sampled_from([10, 20]),
    ),
    min_size=1,
    max_size=6,
)


class TestConsistentAnswerProperties:
    """``ask_consistent`` ≡ intersection of plain ``ask`` over every
    explicitly materialized repair, for randomized inconsistent stores —
    across both the rewriting and the enumeration regime."""

    @given(
        rows=_cqa_rows,
        goal_index=st.integers(min_value=0, max_value=len(_CQA_GOALS) - 1),
    )
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_ask_consistent_equals_repair_intersection(
        self, rows, goal_index
    ):
        goal = _CQA_GOALS[goal_index]
        schema = empdep_schema()
        constraints = empdep_constraints(schema)
        database = ExternalDatabase(schema, constraints=constraints)
        database.insert_rows("empl", rows)
        database.insert_rows("dept", _CQA_DEPT)
        with PrologDbSession(
            schema=schema, constraints=constraints, database=database
        ) as session:
            certain = answer_sets(session.ask_consistent(goal))

        fixed, blocks = {}, {}
        for name, data in (("empl", rows), ("dept", _CQA_DEPT)):
            key = constraints.primary_key(name)
            attributes = tuple(schema.relation(name).attributes)
            positions = [attributes.index(a) for a in key]
            fixed[name], blocks[name] = split_blocks(list(data), positions)
        reference = None
        for instance in repair_instances(fixed, blocks):
            repair_db = ExternalDatabase(schema, constraints=constraints)
            for name, data in instance.items():
                repair_db.insert_rows(name, data)
            with PrologDbSession(
                schema=schema, constraints=constraints, database=repair_db
            ) as repair_session:
                found = answer_sets(repair_session.ask(goal))
            reference = found if reference is None else reference & found
            if not reference:
                break
        assert certain == (reference or set())
