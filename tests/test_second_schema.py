"""End-to-end run on a second schema (suppliers–parts).

The mechanism must be schema-independent: nothing in the pipeline may
assume ``empdep``.  This module builds the classic suppliers–parts
catalog, declares analogous constraints, and drives metaevaluation,
Algorithm 2, SQL generation, execution, and recursion over it.
"""

import pytest

from repro.coupling import PrologDbSession
from repro.dbms import ExternalDatabase
from repro.metaevaluate import Metaevaluator
from repro.optimize import simplify
from repro.prolog import KnowledgeBase, var
from repro.schema import (
    ConstraintSet,
    FuncDep,
    RefInt,
    ValueBound,
    make_schema,
)
from repro.sql import translate

VIEWS = """
supplies_city(Sname, City) :- supplier(S, Sname, _), shipment(S, P, _),
                              part(P, _, City).
heavy_pair(X, Y) :- shipment(S, X, Q1), shipment(S, Y, Q2),
                    greater(Q1, Q2).
"""


@pytest.fixture(scope="module")
def sp_schema():
    return make_schema(
        "spdb",
        {
            "supplier": ["sno", "sname", "scity"],
            "part": ["pno", "pname", "pcity"],
            "shipment": ["sno", "pno", "qty"],
        },
        attribute_types={
            "sno": "int", "sname": "text", "scity": "text",
            "pno": "int", "pname": "text", "pcity": "text",
            "qty": "int",
        },
    )


@pytest.fixture(scope="module")
def sp_constraints(sp_schema):
    return ConstraintSet(
        sp_schema,
        value_bounds=[ValueBound("shipment", "qty", 1, 1000)],
        funcdeps=[
            FuncDep("supplier", ("sno",), ("sname", "scity")),
            FuncDep("supplier", ("sname",), ("sno",)),
            FuncDep("part", ("pno",), ("pname", "pcity")),
            FuncDep("shipment", ("sno", "pno"), ("qty",)),
        ],
        refints=[
            RefInt("shipment", ("sno",), "supplier", ("sno",)),
            RefInt("shipment", ("pno",), "part", ("pno",)),
        ],
    )


@pytest.fixture(scope="module")
def sp_database(sp_schema):
    database = ExternalDatabase(sp_schema)
    database.insert_rows(
        "supplier",
        [(1, "smith", "london"), (2, "jones", "paris"), (3, "blake", "paris")],
    )
    database.insert_rows(
        "part",
        [(10, "nut", "london"), (20, "bolt", "paris"), (30, "screw", "rome")],
    )
    database.insert_rows(
        "shipment",
        [(1, 10, 300), (1, 20, 200), (2, 20, 400), (3, 30, 100), (2, 10, 50)],
    )
    yield database
    database.close()


@pytest.fixture(scope="module")
def sp_evaluator(sp_schema):
    kb = KnowledgeBase()
    kb.consult(VIEWS)
    return Metaevaluator(sp_schema, kb)


class TestSecondSchemaPipeline:
    def test_schema_list(self, sp_schema):
        assert sp_schema.schema_list() == [
            "spdb", "sno", "sname", "scity", "pno", "pname", "pcity", "qty",
        ]

    def test_view_metaevaluates(self, sp_evaluator):
        predicate = sp_evaluator.metaevaluate(
            "supplies_city(N, london)", targets=[var("N")]
        )
        assert [row.tag for row in predicate.rows] == [
            "supplier", "shipment", "part",
        ]

    def test_execution(self, sp_evaluator, sp_database):
        predicate = sp_evaluator.metaevaluate(
            "supplies_city(N, london)", targets=[var("N")]
        )
        rows = sp_database.execute(translate(predicate, distinct=True))
        # nut (london) is shipped by smith (via s1) and jones (via s2).
        assert {r[0] for r in rows} == {"smith", "jones"}

    def test_valuebound_contradiction(self, sp_evaluator, sp_constraints):
        predicate = sp_evaluator.metaevaluate(
            "shipment(S, P, Q), greater(Q, 5000)", targets=[var("S")]
        )
        result = simplify(predicate, sp_constraints)
        assert result.is_empty

    def test_refint_dangling_removal(self, sp_evaluator, sp_constraints):
        # "Suppliers having any shipment of any part": the part row dangles
        # (shipment.pno is backed by refint into part).
        predicate = sp_evaluator.metaevaluate(
            "supplier(S, N, _), shipment(S, P, _), part(P, _, _)",
            targets=[var("N")],
        )
        result = simplify(predicate, sp_constraints)
        tags = [row.tag for row in result.predicate.rows]
        assert "part" not in tags
        # ... and the shipment row survives (it restricts: S must ship).
        assert "shipment" in tags

    def test_chase_on_composite_key(self, sp_evaluator, sp_constraints):
        # Two shipment rows agreeing on (sno, pno) merge their qty.
        predicate = sp_evaluator.metaevaluate(
            "shipment(S, P, Q1), shipment(S, P, Q2), greater(Q1, Q2)",
            targets=[var("S")],
        )
        result = simplify(predicate, sp_constraints)
        # qty is functionally determined: Q1 = Q2, so Q1 > Q2 contradicts.
        assert result.is_empty

    def test_inequality_join_survives(self, sp_evaluator, sp_constraints, sp_database):
        predicate = sp_evaluator.metaevaluate(
            "heavy_pair(X, Y)", targets=[var("X"), var("Y")]
        )
        result = simplify(predicate, sp_constraints)
        assert not result.is_empty
        rows = sp_database.execute(translate(result.predicate, distinct=True))
        # Pairs of parts from one supplier with strictly decreasing qty:
        # s1: (10, 20) since 300 > 200; s2: (20, 10) since 400 > 50.
        assert set(rows) == {(10, 20), (20, 10)}

    def test_session_on_second_schema(self, sp_schema, sp_constraints):
        session = PrologDbSession(schema=sp_schema, constraints=sp_constraints)
        session.database.insert_rows(
            "supplier", [(1, "smith", "london")]
        )
        session.database.insert_rows("part", [(10, "nut", "london")])
        session.database.insert_rows("shipment", [(1, 10, 300)])
        session.consult(VIEWS)
        answers = session.ask("supplies_city(N, london)")
        assert answers == [{"N": "smith"}]
        session.close()

    def test_recursion_on_second_schema(self, sp_schema, sp_constraints):
        # A part 'contains' hierarchy: bom(Part, Subpart) through shipment
        # reinterpreted — simpler: define a containment base table via
        # shipment with supplier as linking node is contrived; instead use
        # a dedicated acyclic graph over part numbers stored in shipment
        # (sno as parent, pno as child) with qty ignored.
        session = PrologDbSession(schema=sp_schema, constraints=sp_constraints)
        session.database.insert_rows(
            "shipment",
            [(1, 2, 1), (2, 3, 1), (3, 4, 1), (2, 5, 1)],
        )
        session.database.insert_rows(
            "supplier",
            [(n, f"s{n}", "x") for n in range(1, 6)],
        )
        session.database.insert_rows(
            "part",
            [(n, f"p{n}", "x") for n in range(1, 6)],
        )
        session.consult(
            """
            contains(X, Y) :- shipment(X, Y, _).
            part_of(Low, High) :- contains(High, Low).
            part_of(Low, High) :- contains(High, Mid), part_of(Low, Mid).
            """
        )
        run = session.solve_recursive("part_of", high=1, strategy="topdown")
        lows = {l for l, h in run.pairs}
        assert lows == {2, 3, 4, 5}
        session.close()
