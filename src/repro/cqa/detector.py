"""Key-violation detection for consistent query answering (ROADMAP E19).

The detector is the gatekeeper of every ``ask_consistent``: it decides,
per base relation, whether the store actually violates the relation's
primary key — and therefore whether certain-answer machinery is needed
at all.  The decision comes from **one** GROUP-BY/HAVING probe per
relation::

    SELECT a1, ..., an
    FROM (SELECT DISTINCT a1, ..., an FROM R)
    WHERE (k1, ..., km) IN (
        SELECT k1, ..., km
        FROM (SELECT DISTINCT a1, ..., an FROM R)
        GROUP BY k1, ..., km HAVING COUNT(*) > 1)

which returns exactly the rows of the key-violating *blocks* (sets of
distinct tuples agreeing on the key).  The inner ``DISTINCT`` makes the
probe bag-tolerant: duplicate identical rows are storage noise, not an
integrity violation — a repair keeps the tuple either way.

Probe results are cached against the backend's per-relation
``data_generation`` counter, the same freshness key the planner's
``relation_statistics`` uses: a clean store pays one probe per relation
and then answers every subsequent cleanliness check with a dictionary
lookup until the relation actually mutates.  Probes run inside the
backend's ``fault_context("cqa_probe")`` so the fault-injection harness
can target them independently of ordinary reads.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

Row = tuple


@dataclass(frozen=True)
class RelationViolations:
    """One relation's key-violation snapshot at a data generation.

    ``blocks`` holds the violating blocks only — each a tuple of ≥ 2
    distinct rows (relation-column order) sharing the ``key`` value in
    the matching position of ``key_values``.  An empty ``blocks`` means
    the relation is consistent with respect to its primary key.
    """

    relation: str
    key: tuple[str, ...]
    generation: int
    key_values: tuple[Row, ...]
    blocks: tuple[tuple[Row, ...], ...]

    @property
    def is_clean(self) -> bool:
        return not self.blocks

    @property
    def block_count(self) -> int:
        return len(self.blocks)

    @property
    def violating_rows(self) -> int:
        return sum(len(block) for block in self.blocks)


class ViolationDetector:
    """Finds and caches key-violating blocks per base relation."""

    def __init__(self, database, constraints, stats=None):
        self.database = database
        self.constraints = constraints
        self.stats = stats
        self._keys: dict[str, tuple[str, ...]] = {}
        self._cache: dict[str, RelationViolations] = {}
        self._lock = threading.Lock()

    # -- key derivation --------------------------------------------------------

    def key_of(self, relation: str) -> tuple[str, ...]:
        """The relation's primary key (derived once, FDs are immutable)."""
        key = self._keys.get(relation)
        if key is None:
            key = self.constraints.primary_key(relation)
            self._keys[relation] = key
        return key

    # -- probing ---------------------------------------------------------------

    def violations(self, relation: str) -> RelationViolations:
        """Violating blocks of ``relation``, probe-once per generation."""
        generation = self.database.data_generation(relation)
        with self._lock:
            cached = self._cache.get(relation)
        if cached is not None and cached.generation == generation:
            if self.stats is not None:
                self.stats.incr("probe_cache_hits")
            return cached
        snapshot = self._probe(relation, generation)
        with self._lock:
            self._cache[relation] = snapshot
        return snapshot

    def _probe(self, relation: str, generation: int) -> RelationViolations:
        key = self.key_of(relation)
        attributes = tuple(self.database.schema.relation(relation).attributes)
        if len(key) == len(attributes):
            # The whole tuple is the key: every distinct row is its own
            # block, so no probe can ever find a violation.
            return RelationViolations(relation, key, generation, (), ())
        if self.stats is not None:
            self.stats.incr("probes")
        text = self._probe_sql(relation, key, attributes)
        with self.database.fault_context("cqa_probe"):
            rows = self.database.execute_prepared(text)
        key_positions = [attributes.index(a) for a in key]
        grouped: dict[Row, list[Row]] = {}
        for row in rows:
            block_key = tuple(row[i] for i in key_positions)
            grouped.setdefault(block_key, []).append(tuple(row))
        key_values = []
        blocks = []
        for block_key in sorted(grouped, key=repr):
            key_values.append(block_key)
            blocks.append(tuple(grouped[block_key]))
        return RelationViolations(
            relation, key, generation, tuple(key_values), tuple(blocks)
        )

    @staticmethod
    def _probe_sql(
        relation: str, key: Sequence[str], attributes: Sequence[str]
    ) -> str:
        columns = ", ".join(attributes)
        key_columns = ", ".join(key)
        key_tuple = key_columns if len(key) == 1 else f"({key_columns})"
        distinct = f"SELECT DISTINCT {columns} FROM {relation}"
        return (
            f"SELECT {columns} FROM ({distinct}) "
            f"WHERE {key_tuple} IN "
            f"(SELECT {key_columns} FROM ({distinct}) "
            f"GROUP BY {key_columns} HAVING COUNT(*) > 1)"
        )

    # -- aggregate views -------------------------------------------------------

    def dirty_relations(self, relations: Iterable[str]) -> list[str]:
        """The subset of ``relations`` holding at least one violation."""
        return [
            name
            for name in relations
            if not self.violations(name).is_clean
        ]

    def invalidate(self, relation: Optional[str] = None) -> None:
        """Drop cached probe results (one relation, or all)."""
        with self._lock:
            if relation is None:
                self._cache.clear()
            else:
                self._cache.pop(relation, None)
