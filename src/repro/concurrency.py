"""Concurrency primitives for the serving layer.

The paper's system was a single 1984 session; serving "heavy traffic"
means many threads asking one session concurrently.  Three primitives
carry the whole design:

* :class:`StripedLock` — a fixed array of locks selected by key hash, so
  per-entry critical sections in the plan/result caches contend only when
  two threads touch the *same* shape, not on one global mutex;
* :class:`ReentrantRWLock` — many concurrent readers or one writer, with
  writer preference and same-thread reentrancy (a writer may re-enter the
  write side, and may read while writing — mutation listeners and nested
  ``bulk_update`` blocks need both);
* the locking *discipline* (documented here because the code enforcing it
  is spread across modules): the :class:`~repro.prolog.knowledge_base.
  KnowledgeBase` RW lock is the outermost lock; cache stripes, backend
  write mutex, and stats locks are leaves acquired inside it and never
  hold anything else while blocking.  Readers (warm external asks) take
  the read side; every mutation — assert/retract/consult, materialize
  delta application, segment merges, plan compilation — runs under the
  write side.  No code path upgrades read→write while holding read; the
  session releases the read lock and restarts on the write side instead.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator


class StripedLock:
    """A fixed set of reentrant locks addressed by key hash.

    ``for_key(k)`` always returns the same lock for equal keys, so
    compound read-modify-write sequences on one cache entry serialize,
    while operations on different entries proceed in parallel.  The
    caches pair their stripes with one dedicated *structure* lock for
    whole-dict operations (clear, evict, iterate), acquired stripe →
    structure and never the other way.  :meth:`all` — every stripe in
    index order — exists for callers without such a structure lock.
    """

    __slots__ = ("_locks",)

    def __init__(self, stripes: int = 16):
        self._locks = tuple(threading.RLock() for _ in range(stripes))

    def for_key(self, key: object) -> threading.RLock:
        return self._locks[hash(key) % len(self._locks)]

    @contextmanager
    def all(self) -> Iterator[None]:
        """Hold every stripe (in index order) for a structural operation."""
        for lock in self._locks:
            lock.acquire()
        try:
            yield
        finally:
            for lock in reversed(self._locks):
                lock.release()


class LockedCounters:
    """Mixin for stats dataclasses with lock-guarded integer counters.

    Subclasses declare a ``_lock`` field (``threading.Lock``) and name
    the counters an atomic :meth:`snapshot` copies in the plain class
    attribute ``_snapshot_fields``.  Shared by the plan-cache, result-
    cache, backend-execution, and maintenance stats so the locking and
    snapshot logic exists exactly once.
    """

    _snapshot_fields: tuple = ()

    def incr(self, counter: str, amount: int = 1) -> None:
        """Atomically bump one counter by name."""
        with self._lock:
            setattr(self, counter, getattr(self, counter) + amount)

    def snapshot(self) -> dict:
        """One atomic copy of every counter in ``_snapshot_fields``."""
        with self._lock:
            return {
                name: getattr(self, name) for name in self._snapshot_fields
            }


class Deadline:
    """A monotonic-clock budget shared down a call chain.

    Created once at the top of an ask and consulted by every layer below
    it (retry sleeps clamp to :meth:`remaining`, the backend's progress
    handler interrupts the running statement once :attr:`expired`).
    Immutable after construction so it can be read without locking from
    the progress-handler callback, which runs on the querying thread but
    inside the SQLite VM.
    """

    __slots__ = ("until",)

    def __init__(self, seconds: float):
        self.until = time.monotonic() + max(0.0, seconds)

    def remaining(self) -> float:
        """Seconds left; never negative."""
        return max(0.0, self.until - time.monotonic())

    @property
    def expired(self) -> bool:
        return time.monotonic() >= self.until

    def clamp(self, seconds: float) -> float:
        """Shrink a proposed sleep/wait to what the budget still allows."""
        return max(0.0, min(seconds, self.until - time.monotonic()))


class ReentrantRWLock:
    """Many readers / one writer, reentrant per thread, writer-preferring.

    * a thread may acquire the read side multiple times (nested asks);
    * a thread may acquire the write side multiple times (``consult``
      calling ``assertz``, listeners mutating bookkeeping);
    * a thread holding the write side may also take the read side (the
      cold ask path re-enters read-only helpers);
    * a waiting writer blocks *new* reader threads (no writer starvation
      under a steady ask stream) but never a thread that already holds
      the lock in either mode;
    * read→write upgrade is refused with ``RuntimeError`` unless the
      thread is the sole reader — two upgrading readers would deadlock,
      so the session's discipline is release-and-restart instead.
    """

    def __init__(self):
        self._cond = threading.Condition()
        self._writer: int | None = None
        self._write_count = 0
        self._write_waiters = 0
        self._readers: dict[int, int] = {}

    # -- read side ----------------------------------------------------------

    def acquire_read(self) -> None:
        me = threading.get_ident()
        with self._cond:
            while True:
                if self._writer == me:
                    break  # write implies read
                if me in self._readers:
                    break  # reentrant read must not wait on a queued writer
                if self._writer is None and not self._write_waiters:
                    break
                self._cond.wait()
            self._readers[me] = self._readers.get(me, 0) + 1

    def release_read(self) -> None:
        me = threading.get_ident()
        with self._cond:
            count = self._readers.get(me)
            if not count:
                raise RuntimeError("release_read without acquire_read")
            if count == 1:
                del self._readers[me]
            else:
                self._readers[me] = count - 1
            self._cond.notify_all()

    @contextmanager
    def read(self) -> Iterator[None]:
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    # -- write side ---------------------------------------------------------

    def acquire_write(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._write_count += 1
                return
            if me in self._readers and (
                len(self._readers) > 1 or self._writer is not None
            ):
                raise RuntimeError(
                    "read->write upgrade would deadlock; release the read "
                    "lock and retry on the write side"
                )
            self._write_waiters += 1
            try:
                while self._writer is not None or any(
                    thread != me for thread in self._readers
                ):
                    self._cond.wait()
            finally:
                self._write_waiters -= 1
            self._writer = me
            self._write_count = 1

    def release_write(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer != me:
                raise RuntimeError("release_write by non-owner")
            self._write_count -= 1
            if self._write_count == 0:
                self._writer = None
                self._cond.notify_all()

    @contextmanager
    def write(self) -> Iterator[None]:
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    # -- introspection (tests) ----------------------------------------------

    def held_for_write(self) -> bool:
        """Does the *current thread* hold the write side?"""
        return self._writer == threading.get_ident()
