"""Rendering terms and clauses back to Prolog source text.

The writer produces text the reader can parse back (round-trip property is
tested), quoting atoms where required and printing comparison predicates in
their canonical named form.
"""

from __future__ import annotations

from .terms import (
    Atom,
    Clause,
    Number,
    PString,
    Struct,
    Term,
    Variable,
    conjuncts,
    is_list,
    list_items,
)

_UNQUOTED_PUNCT = {"[]", "!", ";", ",", ".", ":-"}


def _atom_needs_quotes(name: str) -> bool:
    if name in _UNQUOTED_PUNCT:
        return False
    if not name:
        return True
    first = name[0]
    if first.islower() and all(c.isalnum() or c == "_" for c in name):
        return False
    return True


def atom_to_string(name: str) -> str:
    """Render an atom name, quoting when necessary."""
    if _atom_needs_quotes(name):
        escaped = name.replace("\\", "\\\\").replace("'", "\\'")
        return f"'{escaped}'"
    return name


def term_to_string(term: Term) -> str:
    """Render a term as parseable Prolog text."""
    if isinstance(term, Atom):
        return atom_to_string(term.name)
    if isinstance(term, Number):
        return str(term.value)
    if isinstance(term, PString):
        escaped = term.value.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    if isinstance(term, Variable):
        return str(term)
    if isinstance(term, Struct):
        return _struct_to_string(term)
    raise TypeError(f"not a term: {term!r}")


def _struct_to_string(term: Struct) -> str:
    if term.functor == "." and term.arity == 2 and is_list(term):
        items = ", ".join(term_to_string(item) for item in list_items(term))
        return f"[{items}]"
    if term.functor == "," and term.arity == 2:
        parts = [term_to_string(goal) for goal in conjuncts(term)]
        return "(" + ", ".join(parts) + ")"
    if term.functor == ";" and term.arity == 2:
        left, right = term.args
        return f"({term_to_string(left)} ; {term_to_string(right)})"
    args = ", ".join(term_to_string(arg) for arg in term.args)
    return f"{atom_to_string(term.functor)}({args})"


def goal_list_to_string(goals: list[Term]) -> str:
    """Render a flat goal list as a comma-separated body."""
    return ", ".join(term_to_string(goal) for goal in goals)


def clause_to_string(clause: Clause) -> str:
    """Render a clause, fact or rule, with the terminating dot."""
    head = term_to_string(clause.head)
    if clause.is_fact:
        return f"{head}."
    body = goal_list_to_string(clause.body_goals())
    return f"{head} :- {body}."


def program_to_string(clauses: list[Clause]) -> str:
    """Render a program, one clause per line."""
    return "\n".join(clause_to_string(clause) for clause in clauses)
