"""E1 — Examples 3-3 / 4-1: Prolog-to-DBCL metaevaluation.

Paper claim: ``works_dir_for`` + query metaevaluates to a 4-row tableau
with one comparison; ``same_manager(t_X, jones)`` yields 6 relation rows.
The benchmark times the metaevaluation itself (the delayed-execution
collection machinery of section 4).
"""

from repro.metaevaluate import Metaevaluator
from repro.prolog import var


def test_e1_works_dir_for_tableau(small_session, benchmark):
    session, org = small_session
    evaluator = session.metaevaluator
    employee = org.employees[0].nam
    goal = (
        f"works_dir_for(X, {employee}), empl(_, X, S, _), less(S, 40000)"
    )

    predicate = benchmark(
        lambda: evaluator.metaevaluate(goal, targets=[var("X")])
    )
    rows = [row.tag for row in predicate.rows]
    print(f"\n[E1] works_dir_for tableau rows: {rows}, "
          f"comparisons: {len(predicate.comparisons)}")
    assert rows == ["empl", "dept", "empl", "empl"]
    assert len(predicate.comparisons) == 1


def test_e1_same_manager_tableau(small_session, benchmark):
    session, org = small_session
    evaluator = session.metaevaluator
    employee = org.employees[0].nam

    predicate = benchmark(
        lambda: evaluator.metaevaluate(
            f"same_manager(X, {employee})", targets=[var("X")]
        )
    )
    print(f"\n[E1] same_manager rows: {len(predicate.rows)} "
          f"(paper: 6), joins: {predicate.join_count()}")
    assert len(predicate.rows) == 6
    assert [row.tag for row in predicate.rows] == [
        "empl", "dept", "empl", "empl", "dept", "empl",
    ]
