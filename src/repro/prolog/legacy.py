"""Pinned pre-optimization reference implementation of the resolution path.

This module freezes the engine's original hot path exactly as it stood
before the persistent-substitution / indexed-candidate overhaul:

* :class:`LegacySubstitution` — the original copy-on-bind substitution
  (every ``bind`` duplicates the whole binding dict) with the original
  recursive ``apply``;
* :class:`LegacyEngine` — an :class:`~repro.prolog.engine.Engine` whose
  ``_solve_call`` reproduces the original behaviour: candidate clauses
  are materialised with ``list(...)`` on every call, the goal is *not*
  resolved under the substitution before index lookup (so bound-variable
  arguments defeat first-argument indexing), and every clause — ground
  facts included — is passed through :func:`rename_apart`.

It exists for two reasons and must not be "improved":

1. ``tests/test_engine_equivalence.py`` differentially tests the
   optimized engine against this one on randomized programs — identical
   answer sequences and cut behaviour are required;
2. ``benchmarks/bench_e11_engine.py`` and ``benchmarks/run_all.py`` use
   it as the measured baseline for the recorded speedups in
   ``BENCH_engine.json``.

The builtins and the unification algorithm are shared with the live
engine; both are written against the substitution *protocol* (``walk``,
``bind``, ``apply``), so threading a :class:`LegacySubstitution` through
them reproduces the original cost profile faithfully.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Optional

from ..errors import CutSignal, ExistenceError
from .engine import Engine
from .terms import Struct, Term, Variable, rename_apart
from .unify import unify


class LegacySubstitution:
    """The original immutable dict-backed substitution (copy on bind)."""

    __slots__ = ("_bindings",)

    def __init__(self, bindings: Optional[Mapping[Variable, Term]] = None):
        self._bindings: dict[Variable, Term] = dict(bindings) if bindings else {}

    def __len__(self) -> int:
        return len(self._bindings)

    def __contains__(self, variable: Variable) -> bool:
        return variable in self._bindings

    def __iter__(self):
        return iter(self._bindings)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LegacySubstitution):
            return NotImplemented
        return self._bindings == other._bindings

    def __repr__(self) -> str:
        inner = ", ".join(f"{var}={term}" for var, term in self._bindings.items())
        return f"LegacySubstitution({{{inner}}})"

    def items(self):
        return self._bindings.items()

    def bind(self, variable: Variable, term: Term) -> "LegacySubstitution":
        """Return a new substitution extended with ``variable -> term``.

        This is the O(n)-per-bind copy the optimized engine replaced.
        """
        extended = dict(self._bindings)
        extended[variable] = term
        return LegacySubstitution(extended)

    def walk(self, term: Term) -> Term:
        while isinstance(term, Variable):
            bound = self._bindings.get(term)
            if bound is None:
                return term
            term = bound
        return term

    def apply(self, term: Term) -> Term:
        """The original recursive deep substitution (recurses per depth)."""
        term = self.walk(term)
        if isinstance(term, Struct):
            return Struct(term.functor, tuple(self.apply(arg) for arg in term.args))
        return term

    def restrict(self, variables: Iterable[Variable]) -> dict[Variable, Term]:
        return {v: self.apply(v) for v in variables}


LEGACY_EMPTY_SUBSTITUTION = LegacySubstitution()


class LegacyEngine(Engine):
    """Engine running the original, pre-overhaul resolution hot path."""

    EMPTY = LEGACY_EMPTY_SUBSTITUTION

    def _solve_call(self, goal, rest, subst, depth):
        """Original behaviour: unresolved-goal index lookup, copied
        candidate list, ``rename_apart`` on every clause."""
        indicator = (
            goal.indicator if isinstance(goal, Struct) else (goal.name, 0)
        )
        clauses = [c for c in self.kb.clauses_for(goal) if c is not None]
        if not clauses and self.strict_procedures and not self.kb.has_procedure(
            indicator
        ):
            raise ExistenceError(f"unknown procedure {indicator[0]}/{indicator[1]}")
        body_depth = depth + 1
        for clause in clauses:
            renamed = rename_apart(clause)
            unified = unify(goal, renamed.head, subst)
            if unified is None:
                continue
            try:
                for result in self._solve_goals(
                    renamed.body_goals(), unified, body_depth
                ):
                    yield from self._solve_goals(rest, result, depth)
            except CutSignal as signal:
                if signal.depth == body_depth:
                    return  # cut committed to this clause; drop alternatives
                raise
