"""DBCL: the set-oriented, variable-free intermediate language (paper §3)."""

from .builder import TableauBuilder
from .containment import contains, equivalent, find_homomorphism
from .grammar import format_dbcl, parse_dbcl
from .predicate import (
    COMPARISON_OPS,
    MIRRORED_OPS,
    NEGATED_OPS,
    Comparison,
    DbclPredicate,
    Occurrence,
    RelRow,
)
from .symbols import (
    STAR,
    ConstSymbol,
    JoinableSymbol,
    Star,
    Symbol,
    TargetSymbol,
    VarSymbol,
    is_constant_symbol,
    is_star,
    is_variable_symbol,
    parse_symbol,
)

__all__ = [
    "TableauBuilder",
    "contains",
    "equivalent",
    "find_homomorphism",
    "format_dbcl",
    "parse_dbcl",
    "COMPARISON_OPS",
    "MIRRORED_OPS",
    "NEGATED_OPS",
    "Comparison",
    "DbclPredicate",
    "Occurrence",
    "RelRow",
    "STAR",
    "ConstSymbol",
    "JoinableSymbol",
    "Star",
    "Symbol",
    "TargetSymbol",
    "VarSymbol",
    "is_constant_symbol",
    "is_star",
    "is_variable_symbol",
    "parse_symbol",
]
