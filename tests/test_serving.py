"""The concurrent batched serving layer (PR 4).

Covers the set-oriented ``ask_many`` path (grouping, the ``IN (VALUES
…)`` parameter-batch statement, demultiplexing, and every fallback), the
reader–writer locking discipline under a multi-threaded hammer (answers
always equal *some* serial interleaving, stats never torn, no stale
plan-cache hits across generation bumps), the pooled read connections of
the backend, and the concurrency primitives themselves.
"""

import threading

import pytest

from repro.concurrency import ReentrantRWLock, StripedLock
from repro.coupling import PrologDbSession
from repro.coupling.global_opt import CachePolicy, goal_shape
from repro.dbms import ExternalDatabase, generate_org
from repro.prolog.reader import parse_goal
from repro.schema import ALL_VIEWS_SOURCE, empdep_schema
from repro.sql.ast import (
    ColumnRef,
    Condition,
    InValuesCondition,
    Parameter,
    SelectItem,
    SqlQuery,
    TableRef,
)
from repro.sql.printer import print_sql
from repro.sql.translate import batch_variant

pytestmark = pytest.mark.smoke


def answer_set(answers):
    return {frozenset(a.items()) for a in answers}


def make_session(org, result_cache: bool = True) -> PrologDbSession:
    session = PrologDbSession(
        cache_policy=CachePolicy(enabled=result_cache)
    )
    session.load_org(org)
    session.consult(ALL_VIEWS_SOURCE)
    return session


@pytest.fixture(scope="module")
def org():
    return generate_org(depth=3, branching=2, staff_per_dept=4, seed=11)


@pytest.fixture()
def session(org):
    session = make_session(org)
    yield session
    session.close()


# -- the IN (VALUES …) SQL machinery ------------------------------------------------


class TestBatchVariant:
    def _query(self, where):
        return SqlQuery(
            select=(SelectItem(ColumnRef("v1", "nam"), label="nam"),),
            from_tables=(TableRef("empl", "v1"), TableRef("empl", "v2")),
            where=tuple(where),
            distinct=True,
        )

    def test_single_parameter(self):
        query = self._query([Condition("eq", ColumnRef("v2", "nam"), Parameter(0))])
        variant = batch_variant(query, (0,), 3)
        text = print_sql(variant, oneline=True)
        assert "v2.nam IN (VALUES (?), (?), (?))" in text
        assert variant.parameter_order() == (0, 0, 0)
        # the anchor column is projected for demultiplexing
        assert text.startswith("SELECT DISTINCT v1.nam, v2.nam FROM")

    def test_non_anchor_occurrences_substituted(self):
        # v1.nam <> ?  becomes  v1.nam <> v2.nam  (anchor substitution)
        query = self._query(
            [
                Condition("eq", ColumnRef("v2", "nam"), Parameter(0)),
                Condition("neq", ColumnRef("v1", "nam"), Parameter(0)),
            ]
        )
        variant = batch_variant(query, (0,), 2)
        text = print_sql(variant, oneline=True)
        assert "(v1.nam <> v2.nam)" in text
        assert text.count("?") == 2

    def test_two_parameters_row_values(self):
        query = self._query(
            [
                Condition("eq", ColumnRef("v1", "nam"), Parameter(0)),
                Condition("eq", ColumnRef("v2", "nam"), Parameter(1)),
            ]
        )
        variant = batch_variant(query, (0, 1), 2)
        text = print_sql(variant, oneline=True)
        assert "(v1.nam, v2.nam) IN (VALUES (?, ?), (?, ?))" in text
        assert variant.parameter_order() == (0, 1, 0, 1)

    def test_parameter_without_equality_anchor_unbatchable(self):
        query = self._query([Condition("less", ColumnRef("v1", "nam"), Parameter(0))])
        assert batch_variant(query, (0,), 2) is None

    def test_in_values_condition_validates(self):
        from repro.errors import TranslationError

        with pytest.raises(TranslationError):
            InValuesCondition(columns=(), parameter_rows=((0,),))
        with pytest.raises(TranslationError):
            InValuesCondition(
                columns=(ColumnRef("v1", "nam"),), parameter_rows=((0, 1),)
            )

    def test_executes_on_sqlite(self, org):
        schema = empdep_schema()
        database = ExternalDatabase(schema)
        database.insert_rows(
            "empl", [(1, "a", 10, 1), (2, "b", 20, 1), (3, "c", 30, 2)]
        )
        query = SqlQuery(
            select=(SelectItem(ColumnRef("v1", "sal"), label="sal"),),
            from_tables=(TableRef("empl", "v1"),),
            where=(Condition("eq", ColumnRef("v1", "nam"), Parameter(0)),),
            distinct=True,
        )
        variant = batch_variant(query, (0,), 2)
        rows = database.execute_prepared(database.prepare(variant), ["a", "c"])
        assert sorted(rows) == [(10, "a"), (30, "c")]
        database.close()


# -- ask_many -----------------------------------------------------------------------


class TestAskMany:
    def test_identical_to_serial_warm(self, session, org):
        names = [e.nam for e in org.employees][:10]
        goals = [f"works_dir_for(X, {n})" for n in names]
        goals += [f"same_manager(X, {n})" for n in names]
        serial = [session.ask(g) for g in goals]
        batched = session.ask_many(goals)
        for a, b in zip(serial, batched):
            assert answer_set(a) == answer_set(b)
        assert session.plans.stats.batch_executions >= 2
        assert session.plans.stats.batched_asks >= 16

    def test_cold_group_warms_then_batches(self, org):
        session = make_session(org)
        names = [e.nam for e in org.employees][:8]
        goals = [f"works_dir_for(X, {n})" for n in names]
        batched = session.ask_many(goals)
        for goal, answers in zip(goals, batched):
            assert answer_set(answers) == answer_set(session.ask(goal))
        # two serial warm-ups, the rest in one batch
        assert session.plans.stats.batch_executions == 1
        assert session.plans.stats.batched_asks == len(goals) - 2
        session.close()

    def test_mixed_bag_falls_back_correctly(self, session, org):
        boss = org.root_manager_name()
        name = org.employees[0].nam
        goals = [
            f"works_dir_for(X, {name})",      # batchable
            f"works_dir_for(X, {name})",      # duplicate of above
            f"works_for(X, {boss})",          # recursive: serial fallback
            "specialist(X, Y)",               # engine: serial fallback
            f"same_manager(X, {name})",
            f"works_dir_for(X, {boss})",
        ]
        serial = [session.ask(g) for g in goals]
        batched = session.ask_many(goals)
        for a, b in zip(serial, batched):
            assert answer_set(a) == answer_set(b)

    def test_constant_sensitive_shape_serial_fallback(self, session, org):
        # The threshold reaches a comparison, so the shape caches exact
        # variants; ask_many must fall back and still be identical.
        goals = [
            f"empl(E, X, S, D), less(S, {t})" for t in (30000, 50000, 70000)
        ]
        serial = [session.ask(g) for g in goals]
        before = session.plans.stats.batch_executions
        batched = session.ask_many(goals)
        for a, b in zip(serial, batched):
            assert answer_set(a) == answer_set(b)
        assert session.plans.stats.batch_executions == before

    def test_empty_and_unshapeable(self, session):
        assert session.ask_many([]) == []
        # nested structure: no shape, serial path answers it
        batched = session.ask_many(["member(X, [a, b])"])
        assert answer_set(batched[0]) == answer_set(session.ask("member(X, [a, b])"))

    def test_max_solutions(self, session, org):
        names = [e.nam for e in org.employees][:6]
        goals = [f"same_manager(X, {n})" for n in names]
        for goal in goals:
            session.ask(goal)
        batched = session.ask_many(goals, max_solutions=1)
        for answers in batched:
            assert len(answers) <= 1
        full = session.ask_many(goals)
        for limited, complete in zip(batched, full):
            assert answer_set(limited) <= answer_set(complete)

    def test_valuebound_violating_member_is_empty(self, session):
        # sal has a declared bound; an impossible constant must answer []
        # without poisoning the rest of the batch.
        goals = [
            "empl(E, X, 25000, D)",
            "empl(E, X, 35000, D)",
            "empl(E, X, 40000, D)",
        ]
        serial = [session.ask(g) for g in goals]
        batched = session.ask_many(goals)
        for a, b in zip(serial, batched):
            assert answer_set(a) == answer_set(b)

    def test_batch_sees_writes(self, session, org):
        dept = org.departments[0]
        manager = next(
            e.nam for e in org.employees if e.eno == dept.mgr
        )
        goals = [f"works_dir_for(X, {manager})"] * 4
        before = session.ask_many(goals)
        session.assert_fact("empl", 99_991, "syn_batch", 30_000, dept.dno)
        after = session.ask_many(goals)
        assert {a["X"] for a in after[0]} == {a["X"] for a in before[0]} | {
            "syn_batch"
        }
        session.retract_fact("empl", 99_991, "syn_batch", 30_000, dept.dno)
        again = session.ask_many(goals)
        assert answer_set(again[0]) == answer_set(before[0])


# -- thread-safety hammer ------------------------------------------------------------


class TestConcurrentServing:
    def test_hammer_asks_vs_writes(self, org):
        """N threads ask while a writer asserts/retracts.

        Gates the satellite claims: no torn stats, no stale plan-cache
        hits across generation bumps, and every observed answer equals
        one of the serial checkpoint states.
        """
        session = make_session(org)
        dept = org.departments[-1]
        manager = next(e.nam for e in org.employees if e.eno == dept.mgr)
        probe = parse_goal(f"works_dir_for(X, {manager})")
        other = parse_goal(f"same_manager(X, {org.employees[3].nam})")
        base = answer_set(session.ask(probe))
        session.ask(other)

        rows = [(88_000 + i, f"ham{i}", 20_000 + i, dept.dno) for i in range(8)]
        # The writer asserts rows in order then retracts them in order, so
        # a serializable reader can only ever observe base ∪ prefix (the
        # assert phase) or base ∪ suffix (the retract phase).
        members = [frozenset({("X", row[1])}) for row in rows]
        valid = {
            frozenset(base | set(members[:k])) for k in range(len(members) + 1)
        } | {
            frozenset(base | set(members[k:])) for k in range(len(members) + 1)
        }
        errors: list = []
        observed: set = set()
        observed_lock = threading.Lock()

        def reader():
            try:
                local = set()
                for _ in range(120):
                    local.add(frozenset(answer_set(session.ask(probe))))
                    session.ask(other)
                with observed_lock:
                    observed.update(local)
            except Exception as error:  # pragma: no cover
                errors.append(repr(error))

        def writer():
            try:
                for row in rows:
                    session.assert_fact("empl", *row)
                for row in rows:
                    session.retract_fact("empl", *row)
            except Exception as error:  # pragma: no cover
                errors.append(repr(error))

        threads = [threading.Thread(target=reader) for _ in range(4)]
        threads.append(threading.Thread(target=writer))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not errors, errors
        # every observed answer equals some serial interleaving's state
        stray = {state for state in observed if state not in valid}
        assert not stray, stray
        # the final state must be exact (the writer removed everything)
        assert answer_set(session.ask(probe)) == base

        stats = session.stats()
        # untorn counters keep their cross-field invariants
        db = stats["database"]
        assert db["queries_executed"] >= db["prepared_executions"]
        plan = stats["plan_cache"]
        assert plan["hits"] > 0 and plan["invalidations"] > 0
        result = stats["result_cache"]
        assert result["stored"] <= result["misses"]
        session.close()

    def test_no_stale_plan_hits_across_generations(self, org):
        """A write between two warm asks must be visible to the second."""
        session = make_session(org)
        dept = org.departments[0]
        manager = next(e.nam for e in org.employees if e.eno == dept.mgr)
        goal = f"works_dir_for(X, {manager})"
        session.ask(goal)
        before = answer_set(session.ask(goal))
        session.assert_fact("empl", 77_001, "stale_probe", 30_000, dept.dno)
        after = answer_set(session.ask(goal))
        assert frozenset({("X", "stale_probe")}) in after
        session.retract_fact("empl", 77_001, "stale_probe", 30_000, dept.dno)
        assert answer_set(session.ask(goal)) == before
        session.close()

    def test_concurrent_ask_many(self, org):
        """Batched serving from several threads stays identical."""
        session = make_session(org)
        names = [e.nam for e in org.employees]
        goals = [f"works_dir_for(X, {n})" for n in names[:12]]
        expected = [answer_set(session.ask(g)) for g in goals]
        errors: list = []

        def worker():
            try:
                for _ in range(20):
                    for got, want in zip(session.ask_many(goals), expected):
                        assert answer_set(got) == want
            except Exception as error:  # pragma: no cover
                errors.append(repr(error))

        threads = [threading.Thread(target=worker) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, errors
        session.close()


# -- pooled backend -----------------------------------------------------------------


class TestPooledBackend:
    def test_per_thread_read_connections(self, org):
        # result caching off so every ask really reaches the backend
        session = make_session(org, result_cache=False)
        name = org.employees[0].nam
        session.ask(f"works_dir_for(X, {name})")
        session.ask(f"works_dir_for(X, {name})")

        def reader():
            session.ask(f"works_dir_for(X, {name})")

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # main thread + 3 workers each got a pooled connection
        assert session.database.pool_peak >= 3
        session.close()

    def test_dead_threads_retire_their_connections(self, org):
        import gc

        session = make_session(org, result_cache=False)
        name = org.employees[0].nam
        session.ask(f"works_dir_for(X, {name})")
        session.ask(f"works_dir_for(X, {name})")
        for _ in range(6):
            thread = threading.Thread(
                target=lambda: session.ask(f"works_dir_for(X, {name})")
            )
            thread.start()
            thread.join()
        del thread
        gc.collect()
        assert session.database.pool_peak >= 2
        # thread-per-request churn must not accumulate open connections
        assert session.database.pool_size <= 2
        session.close()

    def test_readers_see_committed_writes(self):
        database = ExternalDatabase(empdep_schema())
        database.insert_rows("empl", [(1, "a", 10, 1)])
        seen = []

        def reader():
            seen.append(database.execute("SELECT nam FROM empl"))

        thread = threading.Thread(target=reader)
        thread.start()
        thread.join()
        assert seen == [[("a",)]]
        database.close()

    def test_file_backed_uses_wal(self, tmp_path):
        database = ExternalDatabase(
            empdep_schema(), path=str(tmp_path / "serving.db")
        )
        mode = database.execute("SELECT 1")  # warm a reader connection
        journal = database._connection.execute("PRAGMA journal_mode").fetchone()
        assert journal[0] == "wal"
        assert mode == [(1,)]
        database.close()

    def test_transaction_reads_own_writes(self):
        database = ExternalDatabase(empdep_schema())
        with database.transaction():
            database.insert_rows("empl", [(5, "tx", 10, 1)])
            # inside the bracket the owning connection must see the row
            assert database.row_count("empl") == 1
        database.close()

    def test_stats_snapshot_is_atomic_copy(self):
        database = ExternalDatabase(empdep_schema())
        database.execute("SELECT count(*) FROM empl")
        snap = database.stats.snapshot()
        assert set(snap) == {
            "queries_executed",
            "rows_fetched",
            "sql_prints",
            "prepared_executions",
            "commits",
            "stats_refreshes",
            "stats_hits",
            "pragma_optimizes",
        }
        database.execute("SELECT count(*) FROM empl")
        assert database.stats.snapshot()["queries_executed"] == (
            snap["queries_executed"] + 1
        )
        assert snap["queries_executed"] == 1  # the copy did not move
        database.close()


# -- concurrency primitives ----------------------------------------------------------


class TestPrimitives:
    def test_rwlock_reentrant_write_and_read_in_write(self):
        lock = ReentrantRWLock()
        with lock.write():
            with lock.write():
                with lock.read():
                    assert lock.held_for_write()

    def test_rwlock_many_readers(self):
        lock = ReentrantRWLock()
        inside = threading.Barrier(3, timeout=5)

        def reader():
            with lock.read():
                inside.wait()  # all three must be inside simultaneously

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    def test_rwlock_writer_excludes_readers(self):
        lock = ReentrantRWLock()
        order = []
        ready = threading.Event()

        def writer():
            with lock.write():
                ready.set()
                order.append("write-start")
                threading.Event().wait(0.05)
                order.append("write-end")

        def reader():
            ready.wait(5)
            with lock.read():
                order.append("read")

        w = threading.Thread(target=writer)
        r = threading.Thread(target=reader)
        w.start()
        r.start()
        w.join()
        r.join()
        assert order == ["write-start", "write-end", "read"]

    def test_rwlock_sole_reader_upgrade(self):
        lock = ReentrantRWLock()
        with lock.read():
            with lock.write():
                assert lock.held_for_write()

    def test_striped_lock_same_key_same_lock(self):
        stripes = StripedLock(8)
        assert stripes.for_key("k") is stripes.for_key("k")
        with stripes.all():
            pass  # must not deadlock against itself


# -- stats --------------------------------------------------------------------------


def test_session_stats_snapshot_consistent(session, org):
    name = org.employees[0].nam
    session.ask(f"works_dir_for(X, {name})")
    stats = session.stats()
    for group in ("plan_cache", "result_cache", "database"):
        assert all(isinstance(value, int) for value in stats[group].values())
    assert "batched_asks" in stats["plan_cache"]
    assert "batch_executions" in stats["plan_cache"]
