"""The coupled PROLOG–DBMS session (the whole of paper Figure 1).

:class:`PrologDbSession` is the public front door of this library.  It
owns the internal Prolog engine and knowledge base, the external SQLite
database, the metaevaluator, the local optimizer, and the global
optimizer, and it wires up the paper's ``metaevaluate/4`` amalgamated
predicate so expert-system programs can trigger database fetches from
inside Prolog clauses (the ``partner`` rule of Example 4-1).

Typical use::

    session = PrologDbSession()
    session.load_org(generate_org(depth=3, branching=2, staff_per_dept=4))
    session.consult(WORKS_DIR_FOR_SOURCE)
    answers = session.ask("works_dir_for(X, 'emp00001')")

``ask`` classifies the goal (internal / external / recursive), runs the
appropriate pipeline, and returns answer bindings as plain Python dicts.
``explain`` returns the full translation trace (DBCL, simplified DBCL,
SQL) without executing, which the examples and EXPERIMENTS.md use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence, Union

from ..dbcl.grammar import format_dbcl
from ..dbcl.predicate import DbclPredicate
from ..dbms.internal_db import assert_answers, term_to_value
from ..dbms.merge import SegmentMerger
from ..dbms.sqlite_backend import ExternalDatabase
from ..dbms.workload import OrgHierarchy, load_org
from ..errors import CouplingError, MetaevaluationError
from ..metaevaluate.recursion import (
    is_recursive_goal,
    recursive_indicators,
)
from ..metaevaluate.translator import Metaevaluator
from ..optimize.pipeline import SimplificationResult, SimplifyOptions, simplify
from ..prolog.engine import Engine
from ..prolog.knowledge_base import KnowledgeBase
from ..prolog.reader import parse_goal
from ..prolog.terms import (
    Atom,
    Struct,
    Term,
    Variable,
    conjoin,
    goal_indicator,
    list_items,
    variables_of,
)
from ..prolog.unify import Substitution, unify
from ..schema.catalog import DatabaseSchema
from ..schema.constraints import ConstraintSet
from ..schema.empdep import empdep_constraints, empdep_schema
from ..sql.ast import SqlQuery
from ..sql.printer import print_sql
from ..sql.translate import translate
from .global_opt import CachePolicy, ExecutionPlan, ResultCache, plan_goal
from .recursion_exec import RecursionRun, TransitiveClosure

Value = Union[int, float, str, None]


@dataclass
class TranslationTrace:
    """Everything the pipeline produced for one goal (``explain``)."""

    goal: Term
    dbcl: DbclPredicate
    simplification: SimplificationResult
    sql: SqlQuery

    @property
    def dbcl_text(self) -> str:
        return format_dbcl(self.dbcl)

    @property
    def optimized_dbcl_text(self) -> str:
        return format_dbcl(self.simplification.predicate)

    @property
    def sql_text(self) -> str:
        return print_sql(self.sql)


class PrologDbSession:
    """A tightly-coupled expert-system / relational-database session."""

    def __init__(
        self,
        schema: Optional[DatabaseSchema] = None,
        constraints: Optional[ConstraintSet] = None,
        database: Optional[ExternalDatabase] = None,
        optimize: bool = True,
        cache_policy: Optional[CachePolicy] = None,
    ):
        self.schema = schema if schema is not None else empdep_schema()
        self.constraints = (
            constraints
            if constraints is not None
            else empdep_constraints(self.schema)
        )
        self.database = (
            database if database is not None else ExternalDatabase(self.schema)
        )
        self.optimize = optimize
        self.kb = KnowledgeBase()
        self.engine = Engine(self.kb)
        self.metaevaluator = Metaevaluator(self.schema, self.kb)
        self.merger = SegmentMerger(self.kb, self.database)
        self.cache = ResultCache(cache_policy)
        self._closures: dict[tuple[str, int], TransitiveClosure] = {}
        self._register_metaevaluate_builtin()

    # -- program loading ---------------------------------------------------------

    def consult(self, source: str) -> None:
        """Load Prolog clauses (views, rules, facts) into the session."""
        self.kb.consult(source)
        self._closures.clear()

    def load_org(self, org: OrgHierarchy) -> None:
        """Load a generated organisation into the external database."""
        load_org(self.database, org)
        self.cache.invalidate()

    def assert_fact(self, functor: str, *values) -> None:
        """Add an internal fact (expert-system knowledge).

        Facts asserted under a *base relation* name form an internal
        database segment; the merge procedure (paper section 2) pushes
        them to the external DBMS before the next query over that
        relation, so cached results covering it are invalidated here.
        """
        self.kb.assert_fact(functor, *values)
        if self.schema.has_relation(functor):
            self.cache.invalidate()

    def _merge_internal_segments(self, predicate: DbclPredicate) -> None:
        """Push internal facts for the predicate's relations to the DBMS.

        The paper's alternative storage strategy ("storing query results
        in the external database system, to keep a clean separation"):
        any base relation with internally asserted tuples is materialised
        externally so the generated SQL sees the union of both segments.
        """
        for tag in {row.tag for row in predicate.rows}:
            if not self.schema.has_relation(tag):
                continue
            relation = self.schema.relation(tag)
            if self.kb.fact_count((tag, relation.arity)):
                self.merger.materialise_internal(tag)

    # -- the paper's amalgamated metaevaluate/4 ------------------------------------

    def _register_metaevaluate_builtin(self) -> None:
        session = self

        def builtin_metaevaluate(engine, goal, subst, depth):
            """metaevaluate(Program, [Goal], Options, DBCL) — paper §4."""
            assert isinstance(goal, Struct)
            _program, goal_list, options, dbcl_out = goal.args
            goals = list_items(subst.apply(goal_list))
            if len(goals) != 1:
                raise CouplingError("metaevaluate/4 expects a one-goal list")
            inner = goals[0]
            use_optim = subst.apply(options) != Atom("no_optim")
            predicate, rows = session._fetch_view(inner, optimize=use_optim)
            from ..prolog.reader import parse_term

            if predicate is None:
                # All branches were fact branches: the answers are already
                # in the internal database from an earlier metaevaluation.
                dbcl_term: Term = Atom("already_evaluated")
            else:
                dbcl_term = parse_term(format_dbcl(predicate).rstrip(". \n"))
            extended = unify(dbcl_out, dbcl_term, subst)
            if extended is not None:
                yield extended

        self.engine.register_builtin("metaevaluate", 4, builtin_metaevaluate)

    def _fetch_view(
        self, goal: Term, optimize: bool = True
    ) -> tuple[Optional[DbclPredicate], list[tuple]]:
        """Metaevaluate a single-view goal, execute it, assert the answers.

        A view that was metaevaluated before carries its previous answers
        as asserted facts; unfolding now yields extra *fact branches* with
        no database calls.  Those answers are already in the internal
        database, so only the rule branch is compiled.
        """
        targets = [v for v in variables_of(goal) if not v.is_anonymous]
        name = self.metaevaluator._default_name(goal)
        branches = [
            branch
            for branch in self.metaevaluator.collect_branches(goal)
            if branch.dbcalls
        ]
        if not branches:
            return None, []  # everything already answered internally
        if len(branches) > 1:
            raise CouplingError(
                f"metaevaluate/4 on disjunctive view {name}; use "
                "ask_disjunctive instead"
            )
        predicate = self.metaevaluator.branch_to_dbcl(branches[0], name, targets)
        options = (
            SimplifyOptions()
            if (optimize and self.optimize)
            else SimplifyOptions.none()
        )
        result = simplify(predicate, self.constraints, options)
        if result.is_empty:
            return result.original, []
        final = result.predicate
        rows = self.cache.lookup(final)
        if rows is None:
            self._merge_internal_segments(final)
            rows = self.database.execute(translate(final, distinct=True))
            self.cache.store(final, rows)
        assert_answers(self.kb, goal, final, targets, rows)
        return final, rows

    # -- query answering --------------------------------------------------------------

    def ask(
        self, goal: Union[str, Term], max_solutions: Optional[int] = None
    ) -> list[dict[str, Value]]:
        """Answer a goal, routing each part to the right evaluator."""
        if isinstance(goal, str):
            goal = parse_goal(goal)
        goal_vars = [v for v in variables_of(goal) if not v.is_anonymous]

        if self._is_recursive(goal):
            return self._ask_recursive(goal)

        try:
            plan = plan_goal(self.kb, self.schema, goal)
        except CouplingError:
            # A "mixed" goal interleaves database and internal knowledge in
            # one view — the paper's programs handle these themselves by
            # calling metaevaluate/4 inside the rule (the partner example),
            # so ordinary Prolog resolution is the correct evaluator.
            return self._answers_from_engine(goal, goal_vars, max_solutions)
        if plan.is_pure_internal:
            return self._answers_from_engine(goal, goal_vars, max_solutions)

        external_goal = conjoin(plan.external)
        fetch_targets = [
            v
            for v in variables_of(external_goal)
            if not v.is_anonymous and v in set(plan.interface_variables)
        ]
        predicate = self.metaevaluator.metaevaluate(
            external_goal, targets=fetch_targets
        )
        options = SimplifyOptions() if self.optimize else SimplifyOptions.none()
        result = simplify(predicate, self.constraints, options)
        if result.is_empty:
            return []
        final = result.predicate
        rows = self.cache.lookup(final)
        if rows is None:
            self._merge_internal_segments(final)
            rows = self.database.execute(translate(final, distinct=True))
            self.cache.store(final, rows)

        if plan.is_pure_external:
            answers = self._rows_to_answers(final, fetch_targets, rows, goal_vars)
            if max_solutions is not None:
                return answers[:max_solutions]
            return answers

        # Mixed: assert the external answers under a fresh interface
        # predicate, then let Prolog combine them with internal knowledge.
        interface_name = f"$ext_{abs(hash(final.canonical_key())) % 10_000_000}"
        interface_goal = Struct(
            interface_name, tuple(fetch_targets)
        )
        self.kb.retract_all((interface_name, len(fetch_targets)))
        assert_answers(self.kb, interface_goal, final, fetch_targets, rows)
        rewritten = conjoin([interface_goal] + plan.internal)
        return self._answers_from_engine(rewritten, goal_vars, max_solutions)

    def _answers_from_engine(
        self,
        goal: Term,
        goal_vars: Sequence[Variable],
        max_solutions: Optional[int],
    ) -> list[dict[str, Value]]:
        def lenient(term: Term) -> Value:
            # Constants convert to plain values; anything else (an unbound
            # variable, a structured term such as a bound DBCL predicate)
            # is rendered as text so answers stay JSON-friendly.
            try:
                return term_to_value(term)
            except CouplingError:
                if isinstance(term, Variable):
                    return None
                from ..prolog.writer import term_to_string

                return term_to_string(term)

        answers = []
        wanted = set(goal_vars)
        for binding in self.engine.solve(goal, max_solutions=max_solutions):
            answers.append(
                {
                    variable.name: lenient(term)
                    for variable, term in binding.items()
                    if variable in wanted
                }
            )
        return answers

    def _rows_to_answers(
        self,
        predicate: DbclPredicate,
        targets: Sequence[Variable],
        rows: Sequence[tuple],
        goal_vars: Sequence[Variable],
    ) -> list[dict[str, Value]]:
        names = [t.name for t in predicate.target_symbols()]
        wanted = {v.name for v in goal_vars}
        answers = []
        seen: set[tuple] = set()
        for row in rows:
            answer = {
                name: value for name, value in zip(names, row) if name in wanted
            }
            key = tuple(sorted(answer.items()))
            if key not in seen:
                seen.add(key)
                answers.append(answer)
        return answers

    # -- recursion -----------------------------------------------------------------------

    def _is_recursive(self, goal: Term) -> bool:
        return is_recursive_goal(self.kb, self.schema, goal)

    def closure_for(self, view_name: str) -> TransitiveClosure:
        """The (cached) transitive-closure executor for a recursive view."""
        indicator = (view_name, 2)
        executor = self._closures.get(indicator)
        if executor is None:
            executor = TransitiveClosure(
                self.kb,
                self.schema,
                self.constraints,
                self.database,
                indicator,
                optimize=self.optimize,
            )
            self._closures[indicator] = executor
        return executor

    def _ask_recursive(self, goal: Term) -> list[dict[str, Value]]:
        from ..prolog.terms import conjuncts

        goals = conjuncts(goal)
        if len(goals) != 1 or not isinstance(goals[0], Struct):
            raise CouplingError(
                "recursive goals must be a single view call; combine "
                "results in Prolog afterwards"
            )
        call = goals[0]
        indicator = call.indicator
        if indicator not in recursive_indicators(self.kb, self.schema):
            raise CouplingError(
                f"goal reaches recursion through {indicator}; call the "
                "recursive view directly"
            )
        low_arg, high_arg = call.args
        low = low_arg.name if isinstance(low_arg, Atom) else None
        high = high_arg.name if isinstance(high_arg, Atom) else None
        run = self.closure_for(indicator[0]).solve(low=low, high=high)
        answers = []
        for pair_low, pair_high in sorted(run.pairs):
            answer: dict[str, Value] = {}
            if isinstance(low_arg, Variable):
                answer[low_arg.name] = pair_low
            if isinstance(high_arg, Variable):
                answer[high_arg.name] = pair_high
            answers.append(answer)
        return answers

    def solve_recursive(
        self,
        view_name: str,
        low: Optional[str] = None,
        high: Optional[str] = None,
        strategy: str = "auto",
        max_levels: int = 64,
    ) -> RecursionRun:
        """Direct access to the recursion strategies (benchmarks use this)."""
        return self.closure_for(view_name).solve(
            low=low, high=high, strategy=strategy, max_levels=max_levels
        )

    # -- extensions (paper section 7) ------------------------------------------------------

    def ask_disjunctive(self, goal: Union[str, Term]) -> list[dict[str, Value]]:
        """Answer a goal over a disjunctive view via per-conjunct UNION."""
        from ..extensions.disjunction import translate_disjunctive

        if isinstance(goal, str):
            goal = parse_goal(goal)
        targets = [v for v in variables_of(goal) if not v.is_anonymous]
        options = SimplifyOptions() if self.optimize else SimplifyOptions.none()
        translation = translate_disjunctive(
            self.metaevaluator, goal, self.constraints, targets=targets,
            options=options,
        )
        rows = self.database.execute(translation.union)
        live = [p for p in translation.simplified if p is not None]
        if not live:
            return []
        names = [t.name for t in live[0].target_symbols()]
        seen: set[tuple] = set()
        answers = []
        for row in rows:
            if row not in seen:
                seen.add(row)
                answers.append(dict(zip(names, row)))
        return answers

    def ask_with_negation(self, goal: Union[str, Term]) -> list[dict[str, Value]]:
        """Answer ``positive, not(view(...))`` via a NOT IN complement."""
        from ..extensions.negation import translate_with_negation

        if isinstance(goal, str):
            goal = parse_goal(goal)
        targets = [v for v in variables_of(goal) if not v.is_anonymous]
        options = SimplifyOptions() if self.optimize else SimplifyOptions.none()
        translation = translate_with_negation(
            self.metaevaluator, goal, self.constraints, targets=targets,
            options=options,
        )
        rows = self.database.execute(translation.query)
        names = [item.label or item.column.attribute for item in translation.query.select]
        # Targets were projected in goal-variable order by the translator.
        target_names = [
            t.name
            for t in translation.positive.target_symbols()
            if t.name in {v.name for v in targets}
        ]
        answers = []
        seen: set[tuple] = set()
        for row in rows:
            if row not in seen:
                seen.add(row)
                answers.append(dict(zip(target_names, row)))
        return answers

    def ask_stepwise(self, goal: Union[str, Term]):
        """Tuple-substitution evaluation for mixed conjunctions."""
        from ..extensions.stepwise import StepwiseEvaluator

        options = SimplifyOptions() if self.optimize else SimplifyOptions.none()
        evaluator = StepwiseEvaluator(
            self.metaevaluator,
            self.engine,
            self.database,
            self.constraints,
            options=options,
        )
        return evaluator.evaluate(goal)

    # -- inspection ------------------------------------------------------------------------

    def explain(self, goal: Union[str, Term]) -> TranslationTrace:
        """The full translation trace for an external goal (no execution)."""
        if isinstance(goal, str):
            goal = parse_goal(goal)
        targets = [v for v in variables_of(goal) if not v.is_anonymous]
        predicate = self.metaevaluator.metaevaluate(goal, targets=targets)
        options = SimplifyOptions() if self.optimize else SimplifyOptions.none()
        result = simplify(predicate, self.constraints, options)
        if result.is_empty:
            from ..sql.ast import empty_query

            sql = empty_query()
        else:
            sql = translate(result.predicate, distinct=True)
        return TranslationTrace(
            goal=goal, dbcl=predicate, simplification=result, sql=sql
        )

    def close(self) -> None:
        self.database.close()

    def __enter__(self) -> "PrologDbSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
