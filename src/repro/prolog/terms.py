"""Prolog term representation.

The term language is the standard first-order one: atoms, numbers, strings,
variables, and compound terms (structs).  Lists are sugar over the ``'.'/2``
functor with ``[]`` as the empty list, exactly as in classical Prolog.

Terms are immutable; substitutions are applied functionally (see
:mod:`repro.prolog.unify`), which keeps backtracking in the engine simple and
makes terms safe to use as dictionary keys throughout the translator.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence, Union

Term = Union["Atom", "Number", "PString", "Variable", "Struct"]

_ANON_COUNTER = itertools.count(1)


@dataclass(frozen=True, slots=True)
class Atom:
    """A Prolog atom (symbolic constant), e.g. ``smiley`` or ``empl``."""

    name: str

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"Atom({self.name!r})"


@dataclass(frozen=True, slots=True)
class Number:
    """An integer or float constant."""

    value: Union[int, float]

    def __str__(self) -> str:
        return str(self.value)

    def __repr__(self) -> str:
        return f"Number({self.value!r})"


@dataclass(frozen=True, slots=True)
class PString:
    """A quoted string constant (kept distinct from atoms for SQL literals)."""

    value: str

    def __str__(self) -> str:
        return f"'{self.value}'"

    def __repr__(self) -> str:
        return f"PString({self.value!r})"


@dataclass(frozen=True, slots=True)
class Variable:
    """A logic variable.

    ``name`` is the source name (``X``, ``_Medium``); ``ordinal`` makes
    renamed-apart copies distinct.  Ordinal 0 is reserved for variables that
    appear literally in source text.
    """

    name: str
    ordinal: int = 0

    def __str__(self) -> str:
        if self.ordinal:
            return f"{self.name}_{self.ordinal}"
        return self.name

    def __repr__(self) -> str:
        return f"Variable({self.name!r}, {self.ordinal})"

    @property
    def is_anonymous(self) -> bool:
        """True for ``_`` variables, which never join anything."""
        return self.name.startswith("_")


@dataclass(frozen=True, slots=True)
class Struct:
    """A compound term ``functor(arg1, ..., argn)``."""

    functor: str
    args: tuple[Term, ...]

    def __str__(self) -> str:
        from .writer import term_to_string

        return term_to_string(self)

    def __repr__(self) -> str:
        return f"Struct({self.functor!r}, {self.args!r})"

    @property
    def arity(self) -> int:
        return len(self.args)

    @property
    def indicator(self) -> tuple[str, int]:
        """The ``functor/arity`` pair identifying the procedure."""
        return (self.functor, len(self.args))


EMPTY_LIST = Atom("[]")
TRUE = Atom("true")
FAIL = Atom("fail")
CUT = Atom("!")

#: Comparison predicate names recognised throughout the pipeline, with the
#: operator symbol each maps to.  Both the named predicates (``less/2``) and
#: the infix operators (``<``) parse to the named form.
COMPARISON_PREDICATES: dict[str, str] = {
    "eq": "=",
    "neq": "<>",
    "less": "<",
    "greater": ">",
    "leq": "<=",
    "geq": ">=",
}

#: Inverse mapping from operator symbol to canonical predicate name.
OPERATOR_TO_PREDICATE: dict[str, str] = {
    "=": "eq",
    "=:=": "eq",
    "==": "eq",
    "\\=": "neq",
    "\\==": "neq",
    "<": "less",
    ">": "greater",
    "=<": "leq",
    ">=": "geq",
}


def atom(name: str) -> Atom:
    """Build an atom."""
    return Atom(name)


def var(name: str, ordinal: int = 0) -> Variable:
    """Build a variable."""
    return Variable(name, ordinal)


def fresh_var(base: str = "_G") -> Variable:
    """Build a variable guaranteed distinct from every other fresh variable."""
    return Variable(base, next(_ANON_COUNTER))


def struct(functor: str, *args: Term) -> Struct:
    """Build a compound term."""
    return Struct(functor, tuple(args))


def number(value: Union[int, float]) -> Number:
    """Build a numeric constant."""
    return Number(value)


def make_list(items: Sequence[Term], tail: Term = EMPTY_LIST) -> Term:
    """Build a Prolog list term from a Python sequence."""
    result = tail
    for item in reversed(items):
        result = Struct(".", (item, result))
    return result


def list_items(term: Term) -> list[Term]:
    """Decompose a proper Prolog list into its items.

    Raises :class:`ValueError` for improper lists (non-``[]`` tail).
    """
    items: list[Term] = []
    while True:
        if term == EMPTY_LIST:
            return items
        if isinstance(term, Struct) and term.functor == "." and term.arity == 2:
            items.append(term.args[0])
            term = term.args[1]
            continue
        raise ValueError(f"not a proper list: {term!r}")


def is_list(term: Term) -> bool:
    """True if ``term`` is a proper list."""
    while isinstance(term, Struct) and term.functor == "." and term.arity == 2:
        term = term.args[1]
    return term == EMPTY_LIST


def is_callable(term: Term) -> bool:
    """True if ``term`` can appear as a goal (atom or compound)."""
    return isinstance(term, (Atom, Struct))


def is_constant(term: Term) -> bool:
    """True for ground leaf terms usable as database values."""
    return isinstance(term, (Atom, Number, PString))


def is_ground(term: Term) -> bool:
    """True if ``term`` contains no variables."""
    stack = [term]
    while stack:
        current = stack.pop()
        if isinstance(current, Variable):
            return False
        if isinstance(current, Struct):
            stack.extend(current.args)
    return True


def constant_value(term: Term) -> Union[str, int, float]:
    """Extract the Python value of a constant term."""
    if isinstance(term, Atom):
        return term.name
    if isinstance(term, Number):
        return term.value
    if isinstance(term, PString):
        return term.value
    raise ValueError(f"not a constant: {term!r}")


def goal_indicator(term: Term) -> tuple[str, int]:
    """Return the procedure indicator ``(functor, arity)`` of a goal."""
    if isinstance(term, Atom):
        return (term.name, 0)
    if isinstance(term, Struct):
        return term.indicator
    raise ValueError(f"not callable: {term!r}")


def variables_of(term: Term) -> list[Variable]:
    """All variables of a term, in left-to-right order, without duplicates."""
    seen: dict[Variable, None] = {}
    _collect_variables(term, seen)
    return list(seen)


def _collect_variables(term: Term, into: dict[Variable, None]) -> None:
    stack = [term]
    while stack:
        current = stack.pop()
        if isinstance(current, Variable):
            into.setdefault(current, None)
        elif isinstance(current, Struct):
            # Push in reverse so left-to-right order is preserved on pop.
            stack.extend(reversed(current.args))


def conjuncts(term: Term) -> list[Term]:
    """Flatten a right-nested ``','/2`` conjunction into a goal list."""
    goals: list[Term] = []
    stack = [term]
    while stack:
        current = stack.pop()
        if isinstance(current, Struct) and current.functor == "," and current.arity == 2:
            stack.append(current.args[1])
            stack.append(current.args[0])
        else:
            goals.append(current)
    return goals


def conjoin(goals: Sequence[Term]) -> Term:
    """Inverse of :func:`conjuncts`: build a ``','`` chain from a goal list."""
    if not goals:
        return TRUE
    result = goals[-1]
    for goal in reversed(goals[:-1]):
        result = Struct(",", (goal, result))
    return result


def disjuncts(term: Term) -> list[Term]:
    """Flatten a ``';'/2`` disjunction into a list of branches."""
    branches: list[Term] = []
    stack = [term]
    while stack:
        current = stack.pop()
        if isinstance(current, Struct) and current.functor == ";" and current.arity == 2:
            stack.append(current.args[1])
            stack.append(current.args[0])
        else:
            branches.append(current)
    return branches


def term_size(term: Term) -> int:
    """Number of nodes in the term tree (used for resource guards)."""
    size = 0
    stack = [term]
    while stack:
        current = stack.pop()
        size += 1
        if isinstance(current, Struct):
            stack.extend(current.args)
    return size


def subterms(term: Term) -> Iterator[Term]:
    """Iterate over every subterm, preorder."""
    stack = [term]
    while stack:
        current = stack.pop()
        yield current
        if isinstance(current, Struct):
            stack.extend(reversed(current.args))


@dataclass(frozen=True, slots=True)
class Clause:
    """A Prolog clause ``head :- body`` (facts have body ``true``).

    ``is_ground_fact`` is precomputed at construction: the resolution
    engine uses it to skip :func:`rename_apart` entirely (a variable-free
    clause needs no renaming) and the knowledge base uses it to maintain
    its ground-fact hash set for O(1) duplicate checks.
    """

    head: Term
    body: Term = TRUE
    #: True iff the body is ``true`` and the head contains no variables.
    is_ground_fact: bool = field(init=False, compare=False, repr=False, default=False)

    def __post_init__(self):
        object.__setattr__(
            self, "is_ground_fact", self.body == TRUE and is_ground(self.head)
        )

    def __str__(self) -> str:
        from .writer import clause_to_string

        return clause_to_string(self)

    @property
    def indicator(self) -> tuple[str, int]:
        return goal_indicator(self.head)

    @property
    def is_fact(self) -> bool:
        return self.body == TRUE

    def body_goals(self) -> list[Term]:
        """The body as a flat goal list (empty for facts)."""
        if self.body == TRUE:
            return []
        return conjuncts(self.body)


def clause_variables(clause: Clause) -> list[Variable]:
    """All variables of a clause, head first."""
    seen: dict[Variable, None] = {}
    _collect_variables(clause.head, seen)
    _collect_variables(clause.body, seen)
    return list(seen)


def rename_apart(clause: Clause) -> Clause:
    """Return a copy of ``clause`` whose variables are globally fresh.

    Called before every resolution step so that bindings made while proving
    one goal can never leak into an unrelated use of the same clause.
    """
    mapping: dict[Variable, Variable] = {}

    def rename(term: Term) -> Term:
        if isinstance(term, Variable):
            if term not in mapping:
                mapping[term] = fresh_var(term.name)
            return mapping[term]
        if isinstance(term, Struct):
            return Struct(term.functor, tuple(rename(arg) for arg in term.args))
        return term

    return Clause(rename(clause.head), rename(clause.body))
