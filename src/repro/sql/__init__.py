"""DBCL → SQL translation, syntax trees, printers, and dialects (paper §5)."""

from .ast import (
    ColumnRef,
    Condition,
    Literal,
    NotInCondition,
    Parameter,
    SelectItem,
    SqlQuery,
    TableRef,
    UnionQuery,
    empty_query,
)
from .dialects import DIALECTS, QuelDialect, SqlDialect, SqliteDialect, get_dialect
from .printer import print_sql, print_union
from .translate import SqlTranslator, translate

__all__ = [
    "ColumnRef",
    "Condition",
    "Literal",
    "NotInCondition",
    "Parameter",
    "SelectItem",
    "SqlQuery",
    "TableRef",
    "UnionQuery",
    "empty_query",
    "DIALECTS",
    "QuelDialect",
    "SqlDialect",
    "SqliteDialect",
    "get_dialect",
    "print_sql",
    "print_union",
    "SqlTranslator",
    "translate",
]
