"""Counters for the fault-tolerant execution layer.

One :class:`ResilienceStats` instance lives on the backend and is shared
by every layer that participates in fault handling — the retry loop, the
circuit breakers, the session's degradation ladder, and the materialize
manager's quarantine/heal lifecycle — so ``session.stats()["resilience"]``
is a single consistent snapshot of how rough the run actually was.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field

from ..concurrency import LockedCounters

#: Bound on the per-process event journal used by the tracer.  Old events
#: fall off the left; a span only consumes events newer than its mark, so
#: the bound just needs to cover the events one ask can plausibly emit
#: times the number of concurrently active asks.
_EVENT_JOURNAL_SIZE = 4096


@dataclass
class ResilienceStats(LockedCounters):
    """Cumulative fault-handling counters (lock-guarded, snapshot-safe).

    Besides the cumulative counters, every ``incr`` is journalled as an
    ``(seq, thread, counter, amount)`` event so the tracer can attribute
    fault handling to the individual ask that suffered it: a span records
    ``event_seq`` when it opens and consumes :meth:`events_since` when it
    commits.  The unlocked ``event_seq`` read on the span-open fast path
    is deliberate — a stale read only means an event lands in the journal
    window the span re-filters by thread, never a torn value (ints are
    replaced atomically).
    """

    #: statement-level retries performed by the backend retry loop.
    retries: int = 0
    #: total seconds slept in exponential backoff (float).
    backoff_seconds: float = 0.0
    #: circuit-breaker transitions, per edge of the state machine.
    breaker_opens: int = 0
    breaker_half_opens: int = 0
    breaker_closes: int = 0
    #: answers produced by a lower rung of the degradation ladder than
    #: the planner's first choice (CTE → frontier → in-memory engine).
    degraded_answers: int = 0
    #: warm plans evicted after a permanent prepared-statement failure
    #: (each is followed by exactly one cold recompile).
    plan_invalidations: int = 0
    #: asks that ran out of deadline budget (typed ``DeadlineExceeded``).
    deadline_exceeded: int = 0
    #: poisoned pooled connections retired instead of recycled.
    poisoned_retired: int = 0
    #: read-pool waits that expired into ``PoolExhaustedError``.
    pool_timeouts: int = 0
    #: maintained views quarantined after a failed maintenance delta.
    quarantines: int = 0
    #: quarantined views rebuilt back to serving condition.
    heals: int = 0
    #: torn maintenance detected by generation-stamp verification.
    torn_detected: int = 0
    #: whole-ask retries performed by the session after a transient error.
    ask_retries: int = 0
    #: faults actually delivered by a :class:`FaultInjectingBackend`.
    faults_injected: int = 0
    #: monotonically increasing id of the last journalled event.
    event_seq: int = 0
    _events: deque = field(
        default_factory=lambda: deque(maxlen=_EVENT_JOURNAL_SIZE),
        repr=False,
        compare=False,
    )
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def incr(self, counter: str, amount: int = 1) -> None:
        """Bump one counter and journal the event for span attribution."""
        with self._lock:
            setattr(self, counter, getattr(self, counter) + amount)
            self.event_seq += 1
            self._events.append(
                (self.event_seq, threading.get_ident(), counter, amount)
            )

    def events_since(self, mark: int, thread_ident: int) -> dict:
        """Aggregated counter deltas this thread caused after ``mark``."""
        with self._lock:
            events = [
                event
                for event in self._events
                if event[0] > mark and event[1] == thread_ident
            ]
        consumed: dict = {}
        for _seq, _thread, counter, amount in events:
            consumed[counter] = consumed.get(counter, 0) + amount
        return consumed

    _snapshot_fields = (
        "retries",
        "backoff_seconds",
        "breaker_opens",
        "breaker_half_opens",
        "breaker_closes",
        "degraded_answers",
        "plan_invalidations",
        "deadline_exceeded",
        "poisoned_retired",
        "pool_timeouts",
        "quarantines",
        "heals",
        "torn_detected",
        "ask_retries",
        "faults_injected",
    )
