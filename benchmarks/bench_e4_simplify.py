"""E4 — Example 6-2: full Algorithm 2 and its execution payoff.

Paper claims reproduced:

* the 6-row ``same_manager`` tableau collapses to 2 rows — "four out of
  five join operations have been avoided";
* optimized and direct SQL return identical answers;
* on growing databases the optimized query wins by a growing margin
  (the paper's substrate was a mainframe DBMS; ours is SQLite, so only
  the *shape* — who wins — is asserted, and times are printed).
"""

import time

import pytest

from conftest import make_session
from repro.optimize import simplify
from repro.prolog import var
from repro.sql import translate


def test_e4_rows_and_joins(small_session, benchmark):
    session, org = small_session
    employee = org.employees[0].nam
    predicate = session.metaevaluator.metaevaluate(
        f"same_manager(X, {employee})", targets=[var("X")]
    )

    result = benchmark(lambda: simplify(predicate, session.constraints))
    direct = translate(predicate)
    optimized = translate(result.predicate)
    print(f"\n[E4] rows {result.rows_before} -> {result.rows_after} "
          f"(paper: 6 -> 2); joins {direct.join_term_count} -> "
          f"{optimized.join_term_count} (paper: 5 -> 1)")
    assert result.rows_before == 6
    assert result.rows_after == 2
    assert direct.join_term_count == 5
    assert optimized.join_term_count == 1


@pytest.mark.parametrize(
    "depth,branching,staff",
    [(2, 2, 4), (3, 2, 5), (3, 3, 5), (4, 3, 5), (5, 3, 5)],
)
def test_e4_execution_sweep(depth, branching, staff, benchmark):
    """Direct vs optimized execution across database sizes."""
    session, org = make_session(depth=depth, branching=branching, staff_per_dept=staff)
    try:
        employee = org.employees[0].nam
        predicate = session.metaevaluator.metaevaluate(
            f"same_manager(X, {employee})", targets=[var("X")]
        )
        result = simplify(predicate, session.constraints)
        direct_sql = translate(predicate, distinct=True)
        optimized_sql = translate(result.predicate, distinct=True)

        start = time.perf_counter()
        direct_rows = set(session.database.execute(direct_sql))
        direct_ms = (time.perf_counter() - start) * 1000
        start = time.perf_counter()
        optimized_rows = set(session.database.execute(optimized_sql))
        optimized_ms = (time.perf_counter() - start) * 1000

        assert direct_rows == optimized_rows  # identical answers
        print(f"\n[E4] employees={org.employee_count:>5} "
              f"direct={direct_ms:8.2f}ms optimized={optimized_ms:8.2f}ms "
              f"speedup={direct_ms / max(optimized_ms, 1e-9):6.1f}x")

        benchmark(lambda: session.database.execute(optimized_sql))
    finally:
        session.close()


def test_e4_direct_execution_baseline(medium_session, benchmark):
    """The 6-way join the optimizer avoids, timed for the report."""
    session, org = medium_session
    employee = org.employees[0].nam
    predicate = session.metaevaluator.metaevaluate(
        f"same_manager(X, {employee})", targets=[var("X")]
    )
    direct_sql = translate(predicate, distinct=True)
    benchmark(lambda: session.database.execute(direct_sql))
