"""Validation and statistics tests for the SQL syntax trees."""

import pytest

from repro.errors import TranslationError
from repro.sql import (
    ColumnRef,
    Condition,
    Literal,
    NotInCondition,
    SelectItem,
    SqlQuery,
    TableRef,
    UnionQuery,
    empty_query,
    print_sql,
    print_union,
)


def _simple_query(select_attr="nam", alias="v1"):
    return SqlQuery(
        select=(SelectItem(ColumnRef(alias, select_attr)),),
        from_tables=(TableRef("empl", alias),),
    )


class TestAstValidation:
    def test_duplicate_aliases_rejected(self):
        with pytest.raises(TranslationError):
            SqlQuery(
                select=(),
                from_tables=(TableRef("empl", "v1"), TableRef("dept", "v1")),
            )

    def test_empty_from_rejected(self):
        with pytest.raises(TranslationError):
            SqlQuery(select=(), from_tables=())

    def test_empty_marker_allows_no_from(self):
        query = empty_query()
        assert query.is_empty
        assert "1 = 0" in print_sql(query)

    def test_unknown_operator_rejected(self):
        with pytest.raises(TranslationError):
            Condition("like", ColumnRef("v1", "nam"), Literal("x"))

    def test_not_in_arity_checked(self):
        sub = _simple_query()
        with pytest.raises(TranslationError):
            NotInCondition(
                (ColumnRef("v1", "nam"), ColumnRef("v1", "eno")), sub
            )

    def test_union_arity_checked(self):
        one = _simple_query()
        two = SqlQuery(
            select=(
                SelectItem(ColumnRef("v1", "nam")),
                SelectItem(ColumnRef("v1", "eno")),
            ),
            from_tables=(TableRef("empl", "v1"),),
        )
        with pytest.raises(TranslationError):
            UnionQuery((one, two))

    def test_union_ignores_empty_branches(self):
        union = UnionQuery((_simple_query(), empty_query()))
        assert len(union.live_branches) == 1

    def test_union_all_empty_renders_false(self):
        union = UnionQuery((empty_query(), empty_query()))
        assert "1 = 0" in print_union(union)


class TestStatistics:
    def test_join_term_detection(self):
        join = Condition("eq", ColumnRef("v1", "dno"), ColumnRef("v2", "dno"))
        restriction = Condition("eq", ColumnRef("v1", "nam"), Literal("x"))
        same_alias = Condition("less", ColumnRef("v1", "sal"), ColumnRef("v1", "eno"))
        query = SqlQuery(
            select=(SelectItem(ColumnRef("v1", "nam")),),
            from_tables=(TableRef("empl", "v1"), TableRef("dept", "v2")),
            where=(join, restriction, same_alias),
        )
        assert query.join_term_count == 1
        assert query.restriction_count == 2
        assert join.is_equijoin
        assert not restriction.is_join
        assert not same_alias.is_join  # intra-variable comparison

    def test_select_item_label(self):
        item = SelectItem(ColumnRef("v1", "nam"), label="boss")
        assert str(item) == "v1.nam AS boss"
        plain = SelectItem(ColumnRef("v1", "nam"), label="nam")
        assert str(plain) == "v1.nam"

    def test_literal_quoting(self):
        assert str(Literal("it's")) == "'it''s'"
        assert str(Literal(5)) == "5"
        assert str(Literal(2.5)) == "2.5"


class TestNotInRendering:
    def test_single_column(self):
        base = _simple_query()
        sub = _simple_query(alias="n1")
        query = SqlQuery(
            select=base.select,
            from_tables=base.from_tables,
            extra_conditions=(NotInCondition((ColumnRef("v1", "nam"),), sub),),
        )
        text = print_sql(query, oneline=True)
        assert "v1.nam NOT IN (SELECT n1.nam FROM empl n1)" in text

    def test_multi_column_parenthesised(self):
        sub = SqlQuery(
            select=(
                SelectItem(ColumnRef("n1", "nam")),
                SelectItem(ColumnRef("n1", "eno")),
            ),
            from_tables=(TableRef("empl", "n1"),),
        )
        base = _simple_query()
        query = SqlQuery(
            select=base.select,
            from_tables=base.from_tables,
            extra_conditions=(
                NotInCondition(
                    (ColumnRef("v1", "nam"), ColumnRef("v1", "eno")), sub
                ),
            ),
        )
        text = print_sql(query, oneline=True)
        assert "(v1.nam, v1.eno) NOT IN" in text
