"""A fixed-size, lock-striped ring buffer for completed trace spans.

The ring is the memory bound of the whole observability layer: however
long a session serves, at most ``size`` span objects are retained, and
a new span simply overwrites the slot of the span ``size`` ids before
it.  Slots are addressed by span id, so ids double as the eviction
order; stripes keep concurrent serving threads from contending on one
global mutex while still making each slot's read-modify-write atomic
(the tear-freedom the 4-thread hammer test pins).

Only *completed* spans are ever stored — the tracer finishes a span
before calling :meth:`store` — so readers can never observe a span
with its duration or answer count missing.
"""

from __future__ import annotations

from typing import Optional

from ..concurrency import StripedLock


class TraceRing:
    """Completed spans, newest-wins, bounded at ``size`` objects."""

    __slots__ = ("size", "_slots", "_stripes")

    def __init__(self, size: int = 1024, stripes: int = 8):
        if size < 1:
            raise ValueError("trace ring needs at least one slot")
        self.size = size
        self._slots: list = [None] * size
        self._stripes = StripedLock(min(stripes, size))

    def store(self, span) -> None:
        """File one completed span under its id's slot."""
        index = span.span_id % self.size
        with self._stripes.for_key(index):
            self._slots[index] = span

    def store_many(self, spans) -> None:
        """File a drained batch under one stripe sweep.

        Acquiring every stripe once per batch instead of one stripe per
        span keeps the amortized cost of a deferred drain a fraction of
        per-span filing.
        """
        size = self.size
        slots = self._slots
        with self._stripes.all():
            for span in spans:
                slots[span.span_id % size] = span

    def spans(self) -> list:
        """The resident spans, oldest first (ascending span id).

        Group spans (one ``ask_many`` batch execution covering several
        goals) occupy a single slot but span a range of ids; callers
        expand them.  The snapshot holds every stripe, so no slot is
        observed mid-store.
        """
        with self._stripes.all():
            resident = [span for span in self._slots if span is not None]
        resident.sort(key=lambda span: span.span_id)
        return resident

    def newest(self) -> Optional[object]:
        spans = self.spans()
        return spans[-1] if spans else None

    def clear(self) -> None:
        with self._stripes.all():
            for index in range(self.size):
                self._slots[index] = None
