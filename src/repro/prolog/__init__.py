"""The Prolog substrate: terms, reader, unification, engine, internal DB.

This subpackage is a self-contained Prolog interpreter implementing the
subset the paper's expert-system host language requires (SLD resolution,
cut, negation-as-failure, assert/retract, comparison builtins).  The
database coupling layers build on it without modification.
"""

from .engine import Engine, StepBudgetExceeded
from .knowledge_base import KnowledgeBase
from .reader import parse_clause, parse_goal, parse_program, parse_term
from .terms import (
    Atom,
    Clause,
    Number,
    PString,
    Struct,
    Term,
    Variable,
    atom,
    conjoin,
    conjuncts,
    disjuncts,
    fresh_var,
    goal_indicator,
    is_constant,
    make_list,
    list_items,
    number,
    struct,
    var,
    variables_of,
)
from .unify import EMPTY_SUBSTITUTION, Substitution, match, unify, unifiable
from .writer import clause_to_string, program_to_string, term_to_string

__all__ = [
    "Engine",
    "StepBudgetExceeded",
    "KnowledgeBase",
    "parse_clause",
    "parse_goal",
    "parse_program",
    "parse_term",
    "Atom",
    "Clause",
    "Number",
    "PString",
    "Struct",
    "Term",
    "Variable",
    "atom",
    "conjoin",
    "conjuncts",
    "disjuncts",
    "fresh_var",
    "goal_indicator",
    "is_constant",
    "make_list",
    "list_items",
    "number",
    "struct",
    "var",
    "variables_of",
    "EMPTY_SUBSTITUTION",
    "Substitution",
    "match",
    "unify",
    "unifiable",
    "clause_to_string",
    "program_to_string",
    "term_to_string",
]
