"""Counting-based maintenance of non-recursive materialized views.

A registered view compiles once through the existing pipeline
(metaevaluate → DBCL → simplify → SQL) and loads its result as a
**support-counted** multiset: each distinct answer row carries the number
of derivations (join combinations) producing it.  Updates then apply
*delta rules* instead of recomputing:

For a view ``V`` whose tableau references relation ``R`` at occurrences
``o1..ok``, a single-tuple change ``t`` of ``R`` contributes::

    ΔV = Σ over non-empty S ⊆ {o1..ok} of (-1)^(|S|+1) · Q_S(t)

where ``Q_S(t)`` is the view body with every occurrence in ``S`` pinned
to ``t`` (inclusion–exclusion over the occurrences handles self-joins
exactly).  Each ``Q_S`` is compiled **once** per view into a
parameterized prepared statement — the pinning constants are PR 2
``Parameter`` leaves bound per delta — and evaluated:

* for an **insert**, against the post-insert state (the manager applies
  the tuple to the store first), with alternating signs as above;
* for a **delete**, against the pre-delete state (the manager applies
  the tuple after), with the same alternating signs.

Both follow from expanding the join product over ``R ± t``; with the
visible union kept duplicate-free (merge semantics), the pinned tuple
matches exactly one stored row, so no multiplicity scaling is needed.

Support counts make deletion exact: a distinct answer row disappears
only when its last derivation dies — the property plain
invalidate-and-recompute pays a full query for.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from itertools import combinations
from typing import Optional, Sequence

from ..coupling.global_opt import marker_for
from ..dbcl.predicate import Comparison, DbclPredicate
from ..dbcl.symbols import ConstSymbol, is_star
from ..dbms.sqlite_backend import ExternalDatabase
from ..errors import CouplingError
from ..optimize.pipeline import SimplifyOptions, simplify
from ..prolog.terms import Struct, Term, Variable
from ..schema.constraints import ConstraintSet
from ..sql.translate import translate
from .delta import DELETE, INSERT, Delta, ViewStats

#: Self-join fan-out guard: a relation referenced more than this many
#: times in one view would need 2^k - 1 delta rules per update.
MAX_OCCURRENCES = 4


@dataclass(frozen=True)
class DeltaRule:
    """One prepared delta query ``Q_S`` for a view.

    ``bind_order`` lists delta-tuple positions in the prepared
    statement's ``?`` order; ``required`` pins positions whose tableau
    cell was a constant — a delta tuple differing there contributes
    nothing and the rule is skipped without touching the DBMS.
    """

    relation: str
    occurrences: tuple[int, ...]
    sign: int
    sql_text: str
    bind_order: tuple[int, ...]
    required: tuple[tuple[int, object], ...]

    def applies_to(self, row: Sequence) -> bool:
        return all(row[position] == value for position, value in self.required)

    def bind(self, row: Sequence) -> list:
        return [row[position] for position in self.bind_order]


class MaterializedView:
    """A non-recursive view maintained with counting delta rules."""

    recursive = False

    def __init__(
        self,
        name: str,
        goal: Term,
        args: Sequence[Variable],
        predicate: DbclPredicate,
        original: DbclPredicate,
        database: ExternalDatabase,
        constraints: ConstraintSet,
    ):
        self.name = name
        self.goal = goal
        self.args = tuple(args)
        #: The simplified predicate the counts are defined over.
        self.predicate = predicate
        #: The pre-simplification predicate (bound-check replay only).
        self.original = original
        self.database = database
        self.constraints = constraints
        self.storage = "memory"
        self.backend_table: Optional[str] = None
        self.stale = False
        #: Quarantined: a maintenance delta failed, so the counts are no
        #: longer trusted; the manager serves this view by recompute and
        #: rebuilds it at the next write-side opportunity.
        self.quarantined = False
        #: Maintenance generation: advanced once per successfully applied
        #: delta or refresh, and stamped into the backend count table in
        #: the same transaction as the backend delta — a stamp mismatch
        #: is proof of torn maintenance.
        self.applied_generation = 0
        self.stats = ViewStats()

        self.select_names = [t.name for t in predicate.target_symbols()]
        #: goal-argument position -> select column (None when the
        #: argument never reached a database call and projects nothing).
        self.position_column: list[Optional[int]] = [
            self.select_names.index(arg.name)
            if arg.name in self.select_names
            else None
            for arg in self.args
        ]
        #: base relations read (delta subscriptions)
        self.relations = frozenset(row.tag for row in predicate.rows)
        #: select column -> (relation, attribute) cells of the target in
        #: the *unsimplified* predicate, replaying ``check_constants`` for
        #: constants bound at ask time (mirrors CompiledPlan.bind).
        self.column_cells: dict[int, tuple[tuple[str, str], ...]] = (
            self._target_cells(original)
        )

        self.counts: Counter = Counter()
        #: Lazily built per-column hash indexes over the distinct rows,
        #: maintained incrementally alongside the counts; constant-bound
        #: asks probe a bucket instead of scanning the whole view.
        self._indexes: dict[int, dict[object, set[tuple]]] = {}
        self._rules: dict[str, tuple[DeltaRule, ...]] = self._compile_rules()
        self._load_sql = self._prepare_load()

    # -- compilation --------------------------------------------------------

    def _target_cells(
        self, predicate: DbclPredicate
    ) -> dict[int, tuple[tuple[str, str], ...]]:
        cells: dict[int, list[tuple[str, str]]] = {}
        for column_index, symbol in enumerate(predicate.target_symbols()):
            if symbol.name not in self.select_names:
                continue
            select_column = self.select_names.index(symbol.name)
            for occurrence in predicate.occurrences().get(symbol, ()):
                cells.setdefault(select_column, []).append(
                    (
                        predicate.rows[occurrence.row].tag,
                        predicate.attribute_of_column(occurrence.column),
                    )
                )
        return {column: tuple(found) for column, found in cells.items()}

    def _prepare_load(self) -> str:
        sql = translate(self.predicate, distinct=False)
        return self.database.prepare(sql)

    def _compile_rules(self) -> dict[str, tuple[DeltaRule, ...]]:
        """One inclusion–exclusion rule set per referenced relation."""
        schema = self.predicate.schema
        rules: dict[str, list[DeltaRule]] = {}
        for relation_name in sorted(self.relations):
            relation = schema.relation(relation_name)
            occurrences = [
                index
                for index, row in enumerate(self.predicate.rows)
                if row.tag == relation_name
            ]
            if len(occurrences) > MAX_OCCURRENCES:
                raise CouplingError(
                    f"view {self.name}: {relation_name} referenced "
                    f"{len(occurrences)} times; too many delta rules"
                )
            parameter_map = {
                str(marker_for(position)): position
                for position in range(relation.arity)
            }
            for size in range(1, len(occurrences) + 1):
                for subset in combinations(occurrences, size):
                    rule = self._compile_rule(
                        relation_name, relation, subset, parameter_map
                    )
                    rules.setdefault(relation_name, []).append(rule)
        return {name: tuple(found) for name, found in rules.items()}

    def _compile_rule(
        self, relation_name, relation, subset, parameter_map
    ) -> DeltaRule:
        schema = self.predicate.schema
        extra: list[Comparison] = []
        seen: set[tuple] = set()
        required: list[tuple[int, object]] = []
        for row_index in subset:
            row = self.predicate.rows[row_index]
            for position, attribute in enumerate(relation.attributes):
                entry = row.entries[schema.column_of(attribute)]
                if is_star(entry):
                    continue
                if isinstance(entry, ConstSymbol):
                    required.append((position, entry.value))
                    continue
                comparison = Comparison(
                    "eq", entry, ConstSymbol(marker_for(position))
                )
                key = (comparison.op, comparison.left, comparison.right)
                if key not in seen:
                    seen.add(key)
                    extra.append(comparison)
        pinned = self.predicate.replace(
            comparisons=tuple(self.predicate.comparisons) + tuple(extra)
        )
        sql = translate(pinned, distinct=False, parameters=parameter_map)
        return DeltaRule(
            relation=relation_name,
            occurrences=tuple(subset),
            sign=1 if len(subset) % 2 else -1,
            sql_text=self.database.prepare(sql),
            bind_order=sql.parameter_order(),
            required=tuple(
                sorted(set(required), key=lambda item: (item[0], str(item[1])))
            ),
        )

    # -- loading ------------------------------------------------------------

    def refresh(self) -> None:
        """Recompute the counts from scratch (registration, staleness, heal).

        Backend first, memory second: a failure while rewriting the
        backend table leaves the in-memory state untouched and the view
        still stale/quarantined — never half-refreshed.
        """
        rows = self.database.execute_prepared(self._load_sql)
        counts = Counter(rows)
        next_generation = self.applied_generation + 1
        if self.backend_table is not None:
            self.database.set_materialized_rows(
                self.backend_table, counts.items(), generation=next_generation
            )
        self.counts = counts
        self._indexes.clear()
        self.applied_generation = next_generation
        self.stale = False
        self.quarantined = False
        self.stats.refreshes += 1

    @property
    def row_count(self) -> int:
        return len(self.counts)

    def distinct_rows(self) -> list[tuple]:
        return list(self.counts)

    # -- storage promotion --------------------------------------------------

    def promote_to_backend(self, table_name: str) -> None:
        """Create and fill this view's backend count table."""
        attributes = [
            self.column_cells.get(column, (("", self.select_names[column]),))[0][1]
            for column in range(len(self.select_names))
        ]
        self.database.create_materialized(table_name, attributes)
        self.database.set_materialized_rows(
            table_name, self.counts.items(), generation=self.applied_generation
        )
        self.backend_table = table_name
        self.storage = "backend"

    def verify_generation(self) -> bool:
        """Do backend and memory agree on the maintenance generation?

        Memory-only views cannot tear across stores (the memory mutation
        is applied after all failure-prone work) and always verify; for
        backend-stored views a stamp mismatch means one store holds a
        delta the other missed — torn maintenance, grounds for
        quarantine.
        """
        if self.backend_table is None:
            return True
        stored = self.database.materialized_generation(self.backend_table)
        return stored is None or stored == self.applied_generation

    # -- maintenance --------------------------------------------------------

    def apply_delta(self, delta: Delta) -> tuple[list[tuple], list[tuple]]:
        """Fold one base-relation delta into the counts.

        Returns ``(appeared, disappeared)`` — the distinct answer rows
        whose support crossed zero, which is the delta a *subscriber*
        (e.g. a recursive view over this one) observes.

        Application is two-phase so a failure can never tear the view:
        phase one runs the (read-only) delta-rule queries and validates
        the support arithmetic without touching any state; phase two
        applies the backend delta transactionally — stamped with the new
        maintenance generation inside the same transaction — and only
        then mutates the in-memory counts.  An exception anywhere leaves
        both stores at the old generation together.
        """
        changes: Counter = Counter()
        outer_sign = 1 if delta.kind == INSERT else -1
        for rule in self._rules.get(delta.relation, ()):
            if not rule.applies_to(delta.row):
                continue
            produced = self.database.execute_prepared(
                rule.sql_text, rule.bind(delta.row)
            )
            self.stats.delta_executions += 1
            sign = rule.sign * outer_sign
            for produced_row in produced:
                changes[produced_row] += sign
        effective = {row: change for row, change in changes.items() if change}
        for row, change in effective.items():
            if self.counts[row] + change < 0:
                raise CouplingError(
                    f"view {self.name}: negative support for {row!r}"
                )
        next_generation = self.applied_generation + 1
        if self.backend_table is not None and effective:
            self.database.apply_materialized_delta(
                self.backend_table,
                list(effective.items()),
                generation=next_generation,
            )
        appeared: list[tuple] = []
        disappeared: list[tuple] = []
        for row, change in effective.items():
            before = self.counts[row]
            after = before + change
            if after == 0:
                del self.counts[row]
                disappeared.append(row)
            else:
                self.counts[row] = after
                if before == 0:
                    appeared.append(row)
        self.applied_generation = next_generation
        self.stats.deltas_applied += 1
        self.stats.rows_added += len(appeared)
        self.stats.rows_removed += len(disappeared)
        for column, index in self._indexes.items():
            for row in appeared:
                index.setdefault(row[column], set()).add(row)
            for row in disappeared:
                bucket = index.get(row[column])
                if bucket is not None:
                    bucket.discard(row)
        return appeared, disappeared

    # -- serving ------------------------------------------------------------

    def answers(self, goal: Struct) -> Optional[list[dict]]:
        """Answer bindings for a goal over this view, or None if unservable.

        Mirrors the cold pipeline's ``_rows_to_answers``: constants
        restrict (with the valuebound replay a fresh compilation's
        ``check_constants`` would apply), repeated variables join, and
        answers project + dedupe on the goal's variable names.
        """
        from ..coupling.global_opt import _constant_value

        filters: list[tuple[int, object]] = []  # (select column, value)
        outputs: list[tuple[int, str]] = []  # (select column, variable name)
        by_name: dict[str, int] = {}
        for position, argument in enumerate(goal.args):
            column = self.position_column[position]
            if isinstance(argument, Variable):
                if argument.is_anonymous:
                    continue
                if column is None:
                    # The compiled view never projected this argument; the
                    # cold path omits it from answers, and plain row
                    # projection below does the same.
                    continue
                earlier = by_name.get(argument.name)
                if earlier is not None:
                    filters.append((column, ("join", earlier)))
                else:
                    by_name[argument.name] = column
                    outputs.append((column, argument.name))
                continue
            value = _constant_value(argument)
            if value is None or column is None:
                return None  # structured constant / unprojected restriction
            for relation, attribute in self.column_cells.get(column, ()):
                bound = self.constraints.bound_for(relation, attribute)
                if bound is not None and not bound.contains(value):
                    return []
            filters.append((column, ("const", value)))

        answers: list[dict] = []
        seen: set[tuple] = set()
        for row in self._candidate_rows(filters):
            ok = True
            for column, condition in filters:
                kind, operand = condition
                if kind == "const":
                    if row[column] != operand:
                        ok = False
                        break
                else:
                    if row[column] != row[operand]:
                        ok = False
                        break
            if not ok:
                continue
            answer = {name: row[column] for column, name in outputs}
            key = tuple(sorted(answer.items()))
            if key not in seen:
                seen.add(key)
                answers.append(answer)
        self.stats.maintained_asks += 1
        return answers

    def _candidate_rows(self, filters):
        """Candidate rows for a filtered ask: an index bucket when possible.

        The first constant filter's column gets a hash index built on
        demand and kept current by :meth:`apply_delta`; without constant
        filters the full distinct row set is scanned.
        """
        for column, condition in filters:
            if condition[0] != "const":
                continue
            index = self._indexes.get(column)
            if index is None:
                index = {}
                for row in self.counts:
                    index.setdefault(row[column], set()).add(row)
                self._indexes[column] = index
            return index.get(condition[1], ())
        return self.counts
