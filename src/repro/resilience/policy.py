"""Retry policy and circuit breaker for the fault-tolerant layer.

:class:`FaultPolicy` is the single knob bundle every retry decision
reads: attempt budget, exponential-backoff shape, jitter, breaker
thresholds, and the session-level whole-ask retry bound.  It is frozen —
a policy is configuration, not state — and ``FaultPolicy.disabled()``
yields the zero-overhead baseline the benchmarks compare against.

:class:`CircuitBreaker` is the classic closed → open → half-open state
machine, one instance per connection class (read pool vs. owning write
connection), so a failing read substrate stops being hammered while
writes proceed, and vice versa.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass

from .stats import ResilienceStats


@dataclass(frozen=True)
class FaultPolicy:
    """Immutable retry/backoff/breaker configuration.

    Defaults are tuned for an embedded SQLite substrate where transient
    conditions (shared-cache locks, injected bursts) clear in
    milliseconds: five attempts with 1 ms → 50 ms exponential backoff
    ride out any realistic lock burst while adding nothing measurable to
    a healthy hot path.
    """

    #: statement-level attempts before giving up with a typed
    #: ``TransientBackendError`` (the session may still retry the ask).
    max_attempts: int = 5
    base_backoff: float = 0.001
    backoff_multiplier: float = 2.0
    max_backoff: float = 0.05
    #: symmetric jitter fraction: a computed backoff ``b`` becomes a
    #: uniform draw from ``[b*(1-jitter), b*(1+jitter)]`` so retrying
    #: threads decorrelate instead of stampeding in lockstep.
    jitter: float = 0.25
    #: consecutive failures that trip a breaker open.
    breaker_threshold: int = 8
    #: seconds an open breaker waits before admitting a half-open probe.
    breaker_cooldown: float = 0.05
    #: whole-ask retries the session performs when a statement-level
    #: budget is exhausted — bounds convergence on eventually-healing
    #: fault schedules without ever looping forever.
    max_ask_retries: int = 64
    #: pause between whole-ask retries (also jittered).
    ask_retry_pause: float = 0.002
    #: patience window for lock-type errors (locked/busy): genuine
    #: shared-cache contention clears when the writer commits, so lock
    #: errors retry until this much wall clock has passed even after
    #: ``max_attempts``, matching the pre-resilience reader behaviour.
    lock_patience: float = 2.0
    #: master switch: False short-circuits every fault-handling branch,
    #: giving the overhead benchmarks their baseline.
    enabled: bool = True

    def backoff(self, attempt: int) -> float:
        """Jittered exponential backoff for the given retry ordinal."""
        pause = min(
            self.max_backoff,
            self.base_backoff * self.backoff_multiplier ** attempt,
        )
        if self.jitter:
            pause *= 1.0 + self.jitter * (2.0 * random.random() - 1.0)
        return max(0.0, pause)

    @classmethod
    def disabled(cls) -> "FaultPolicy":
        """The no-resilience baseline: one bare attempt, no machinery."""
        return cls(enabled=False, max_attempts=1, jitter=0.0)


class CircuitBreaker:
    """Closed → open → half-open breaker for one connection class.

    The closed-state fast path reads one attribute without locking (a
    stale read costs at most one extra attempt against a just-opened
    breaker — harmless); every transition runs under the lock.  Breakers
    exist so a substrate that is *down* (not merely contended) stops
    absorbing full retry ladders per statement: once open, callers fail
    fast until the cooldown admits a single half-open probe, whose
    outcome closes or re-opens the breaker.
    """

    def __init__(
        self,
        threshold: int,
        cooldown: float,
        stats: ResilienceStats | None = None,
        name: str = "",
    ):
        self.threshold = max(1, threshold)
        self.cooldown = cooldown
        self.name = name
        self._stats = stats
        self._lock = threading.Lock()
        self._state = "closed"
        self._failures = 0
        self._opened_at = 0.0

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def allow(self) -> bool:
        """May a caller attempt the backend right now?"""
        if self._state == "closed":  # lock-free hot path; stale is benign
            return True
        with self._lock:
            if self._state == "closed":
                return True
            if self._state == "open":
                if time.monotonic() - self._opened_at < self.cooldown:
                    return False
                self._state = "half-open"
                if self._stats is not None:
                    self._stats.incr("breaker_half_opens")
            return True  # half-open: admit the probe

    def retry_after(self) -> float:
        """Seconds until an open breaker will admit a probe (0 if not open)."""
        with self._lock:
            if self._state != "open":
                return 0.0
            return max(0.0, self.cooldown - (time.monotonic() - self._opened_at))

    def success(self) -> None:
        if self._state == "closed" and self._failures == 0:
            return  # steady-state: no lock traffic
        with self._lock:
            if self._state != "closed":
                self._state = "closed"
                if self._stats is not None:
                    self._stats.incr("breaker_closes")
            self._failures = 0

    def failure(self) -> None:
        with self._lock:
            self._failures += 1
            tripping = (
                self._state == "half-open"
                or self._failures >= self.threshold
            )
            if tripping:
                if self._state != "open" and self._stats is not None:
                    self._stats.incr("breaker_opens")
                self._state = "open"
                self._opened_at = time.monotonic()
