"""E15 — backend pushdown: recursive CTEs + statistics-driven planning.

Claims regression-gated here (and recorded in ``BENCH_pushdown.json`` by
``benchmarks/run_all.py``):

* on the E7-shaped 300-chain closure workload the single prepared
  ``WITH RECURSIVE`` statement answers **>= 3x** faster than the prepared
  setrel frontier loop (which issues one round-trip + one commit per
  level — ~300 of each on this chain);
* the CTE path issues **zero** commits: the fixpoint is one SELECT-shaped
  statement on a pooled read connection, no intermediate-relation swaps;
* a randomized differential over bound-low and bound-high probes, with
  employee churn between rounds, is **identical** across the CTE
  pushdown, both frontier directions, and the maintained
  ``IncrementalClosure`` (PR 3's path, untouched);
* ``ask_many`` batches warm recursive shapes through the batch-seeded
  CTE (no serial fallback) with answers identical to serial ``ask()``;
* the statistics-driven planner picks the pushdown tier (CTE — or,
  since PR 7, the interval probe on tree-shaped data) on this workload
  and records why.

The pytest entry points gate the relaxed (quick-size) thresholds;
``run_all.py`` applies the strict full-size gates.
"""

import random
import time

import pytest

from repro.coupling import PrologDbSession
from repro.dbms import generate_org
from repro.schema import ALL_VIEWS_SOURCE

#: (chain depth, staff per dept, timing iterations, max levels, min speedup)
FULL_SIZES = (300, 2, 3, 400, 3.0)
QUICK_SIZES = (120, 2, 2, 200, 2.0)

#: (org depth, branching, staff, probes, churn rounds)
FULL_DIFF = (4, 3, 5, 24, 3)
QUICK_DIFF = (3, 2, 4, 10, 2)

#: (org depth, branching, staff, goals in the batch)
FULL_BATCH = (4, 3, 5, 24)
QUICK_BATCH = (3, 2, 4, 8)


def make_chain_org(depth: int, staff: int):
    """A single chain of ``depth`` departments: recursion depth == depth."""
    return generate_org(
        depth=depth, branching=1, staff_per_dept=staff, seed=5
    )


def make_session(org) -> PrologDbSession:
    session = PrologDbSession()
    session.load_org(org)
    session.consult(ALL_VIEWS_SOURCE)
    return session


def answer_set(answers) -> set:
    return {frozenset(a.items()) for a in answers}


def bench_chain_closure(org, iterations: int, max_levels: int) -> dict:
    """CTE pushdown vs the prepared frontier loop on the deep chain."""
    session = make_session(org)
    leaf = org.leaf_employee_name()
    closure = session.closure_for("works_for")
    # Preparation (metaevaluate + print) happens before timing on both
    # sides: the comparison is pure execution mechanics.
    closure.step_queries()
    closure.cte_queries()
    plan = closure.plan(low=leaf, high=None)

    started = time.perf_counter()
    for _ in range(iterations):
        frontier = session.solve_recursive(
            "works_for", low=leaf, strategy="bottomup", max_levels=max_levels
        )
    frontier_seconds = time.perf_counter() - started

    session.database.stats.reset()
    started = time.perf_counter()
    for _ in range(iterations):
        cte = session.solve_recursive(
            "works_for", low=leaf, strategy="cte", max_levels=max_levels
        )
    cte_seconds = time.perf_counter() - started
    db_stats = session.database.stats.snapshot()

    assert cte.pairs == frontier.pairs
    record = {
        "chain_depth": org.max_depth,
        "employees": org.employee_count,
        "iterations": iterations,
        "answers": len(cte.pairs),
        "frontier_levels": frontier.stats.levels,
        "frontier_seconds": round(frontier_seconds, 4),
        "cte_seconds": round(cte_seconds, 4),
        "speedup": round(frontier_seconds / cte_seconds, 2),
        "cte_commits": db_stats["commits"],
        "cte_sql_prints": db_stats["sql_prints"],
        "cte_statements_per_solve": db_stats["prepared_executions"]
        // iterations,
        "planner_strategy": plan.strategy,
        "planner_estimated_edge_rows": plan.estimated_edge_rows,
        "identical": cte.pairs == frontier.pairs,
    }
    session.close()
    return record


def differential_check(
    depth: int,
    branching: int,
    staff: int,
    probes: int,
    churn_rounds: int,
    seed: int,
) -> dict:
    """CTE vs both frontier directions vs the maintained closure.

    Probes alternate bound-low / bound-high over randomly chosen
    employees; between rounds random employees are hired and fired on
    *both* sessions (the maintained one applies IncrementalClosure
    deltas — semi-naive inserts, DRed deletes — while the plain one
    invalidates and its statistics service refreshes lazily).
    """
    rng = random.Random(seed)
    org = generate_org(
        depth=depth, branching=branching, staff_per_dept=staff, seed=5
    )
    plain = make_session(org)
    maintained = make_session(org)
    maintained.materialize.view("works_for(X, Y)")
    closure = plain.closure_for("works_for")
    depts = [d.dno for d in org.departments]
    names = [e.nam for e in org.employees]

    checked = 0
    mismatches = []
    hired: list[tuple] = []
    for round_index in range(churn_rounds):
        for _ in range(probes // churn_rounds or 1):
            name = rng.choice(names)
            bound_high = rng.random() < 0.5
            low, high = (None, name) if bound_high else (name, None)
            cte = closure.solve(low=low, high=high, strategy="cte").pairs
            bottomup = closure.solve(
                low=low, high=high, strategy="bottomup"
            ).pairs
            topdown = closure.solve(
                low=low, high=high, strategy="topdown"
            ).pairs
            if bound_high:
                goal = f"works_for(X, '{name}')"
                incremental = {
                    (a["X"], name) for a in maintained.ask(goal)
                }
            else:
                goal = f"works_for('{name}', Y)"
                incremental = {
                    (name, a["Y"]) for a in maintained.ask(goal)
                }
            checked += 1
            if not (cte == bottomup == topdown == incremental):
                mismatches.append(goal)
        # Churn: hire two employees into random departments, fire one.
        for _ in range(2):
            eno = 40_000 + round_index * 10 + len(hired)
            row = (eno, f"emp{eno}", 30_000, rng.choice(depts))
            hired.append(row)
            plain.assert_fact("empl", *row)
            maintained.assert_fact("empl", *row)
        if hired:
            victim = hired.pop(rng.randrange(len(hired)))
            plain.retract_fact("empl", *victim)
            maintained.retract_fact("empl", *victim)

    record = {
        "probes": checked,
        "churn_rounds": churn_rounds,
        "identical": not mismatches,
        "mismatches": mismatches[:5],
    }
    plain.close()
    maintained.close()
    return record


def bench_recursive_ask_many(
    depth: int, branching: int, staff: int, total: int
) -> dict:
    """Warm recursive shapes batch through the batch-seeded CTE."""
    org = generate_org(
        depth=depth, branching=branching, staff_per_dept=staff, seed=5
    )
    session = make_session(org)
    managers = {d.mgr for d in org.departments}
    names = sorted({e.nam for e in org.employees if e.eno in managers})
    goals = [f"works_for(X, {names[i % len(names)]})" for i in range(total)]

    serial_started = time.perf_counter()
    serial = [session.ask(goal) for goal in goals]  # also warms the shape
    serial_seconds = time.perf_counter() - serial_started

    before = session.plans.stats.snapshot()
    batched_started = time.perf_counter()
    batched = session.ask_many(goals)
    batched_seconds = time.perf_counter() - batched_started
    after = session.plans.stats.snapshot()

    identical = all(
        expected == got for expected, got in zip(serial, batched)
    )
    record = {
        "goals": total,
        "distinct_seeds": len(set(names[:total])) if total < len(names) else len(names),
        "serial_seconds": round(serial_seconds, 4),
        "batched_seconds": round(batched_seconds, 4),
        "speedup": round(serial_seconds / batched_seconds, 2)
        if batched_seconds
        else float("inf"),
        "recursive_batches": after["recursive_batches"]
        - before["recursive_batches"],
        "batched_goals": after["batched_asks"] - before["batched_asks"],
        "identical": identical,
    }
    session.close()
    return record


# -- pytest entry points (quick gates; run_all.py applies the strict ones) ------


@pytest.fixture(scope="module")
def chain_org():
    depth, staff, _, _, _ = QUICK_SIZES
    return make_chain_org(depth, staff)


def test_e15_cte_speedup_and_zero_commits(chain_org):
    _, _, iterations, max_levels, gate = QUICK_SIZES
    result = bench_chain_closure(chain_org, iterations, max_levels)
    print(
        f"\n[E15] {result['chain_depth']}-chain closure: "
        f"cte={result['cte_seconds']}s frontier={result['frontier_seconds']}s "
        f"speedup={result['speedup']}x commits={result['cte_commits']}"
    )
    assert result["identical"]
    assert result["speedup"] >= gate
    assert result["cte_commits"] == 0
    assert result["cte_sql_prints"] == 0
    # PR 7: tree-shaped chains may plan as the interval probe instead.
    assert result["planner_strategy"] in ("cte", "interval")


def test_e15_strategy_differential():
    depth, branching, staff, probes, rounds = QUICK_DIFF
    result = differential_check(depth, branching, staff, probes, rounds, seed=5)
    print(
        f"\n[E15] strategy differential: {result['probes']} probes over "
        f"{result['churn_rounds']} churn rounds, "
        f"identical={result['identical']}"
    )
    assert result["identical"], result["mismatches"]


def test_e15_recursive_ask_many_batches():
    depth, branching, staff, total = QUICK_BATCH
    result = bench_recursive_ask_many(depth, branching, staff, total)
    print(
        f"\n[E15] recursive ask_many: {result['goals']} goals, "
        f"{result['recursive_batches']} batch statement(s), "
        f"identical={result['identical']}"
    )
    assert result["recursive_batches"] >= 1
    assert result["batched_goals"] >= result["goals"] - 2
    assert result["identical"]
