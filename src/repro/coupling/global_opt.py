"""Global optimization: splitting goals between PROLOG and the DBMS.

Paper section 2 assigns "global optimize" two functions: decide which
parts of a DBCL expression can be evaluated using the internal PROLOG
database versus the external DBMS, and decide whether query results
should be stored for future reference.

:func:`classify_conjuncts` sorts the conjuncts of a goal by where their
evaluation must happen (reachability over the view call graph), and
:func:`plan_goal` produces an execution plan: one *external block* to be
metaevaluated, simplified, translated, and fetched, plus the *internal
remainder* to be resolved tuple-at-a-time over the fetched answers.

:class:`ResultCache` implements the storage decision with a simple,
inspectable policy (cache results up to a row bound, keyed by the
canonicalised DBCL predicate), which is what the recursion strategies and
the multiple-query optimizer build on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

import networkx as nx

from ..dbcl.predicate import DbclPredicate
from ..errors import CouplingError
from ..metaevaluate.recursion import view_call_graph
from ..prolog.knowledge_base import KnowledgeBase
from ..prolog.terms import (
    COMPARISON_PREDICATES,
    Atom,
    Struct,
    Term,
    Variable,
    conjuncts,
    goal_indicator,
    variables_of,
)
from ..schema.catalog import DatabaseSchema

Kind = str  # 'external' | 'internal' | 'comparison' | 'mixed'


def _is_database_indicator(schema: DatabaseSchema, indicator: tuple[str, int]) -> bool:
    name, arity = indicator
    return schema.has_relation(name) and schema.relation(name).arity == arity


def classify_conjuncts(
    kb: KnowledgeBase, schema: DatabaseSchema, goal: Term
) -> list[tuple[Term, Kind]]:
    """Label each conjunct of ``goal``.

    * ``external`` — bottoms out exclusively in database relations and
      comparisons: the metaevaluator can compile it away entirely;
    * ``internal`` — never reaches a database relation (pure expert-system
      knowledge such as the ``specialist`` facts of Example 4-1);
    * ``comparison`` — a builtin comparison, attachable to either side;
    * ``mixed`` — reaches both kinds of leaves; the caller must restructure
      (the paper's stepwise-evaluation extension handles these).
    """
    graph = view_call_graph(kb, schema)
    classified: list[tuple[Term, Kind]] = []
    for subgoal in conjuncts(goal):
        try:
            indicator = goal_indicator(subgoal)
        except ValueError:
            raise CouplingError(f"cannot classify non-callable goal {subgoal}")
        name, arity = indicator
        if arity == 2 and name in COMPARISON_PREDICATES:
            classified.append((subgoal, "comparison"))
            continue
        if _is_database_indicator(schema, indicator):
            classified.append((subgoal, "external"))
            continue
        reachable = {indicator}
        if graph.has_node(indicator):
            reachable |= set(nx.descendants(graph, indicator))
        db_leaves = {i for i in reachable if _is_database_indicator(schema, i)}
        defined = {i for i in reachable if kb.has_procedure(i)}
        plain_leaves = {
            i
            for i in reachable
            if i not in db_leaves
            and not kb.has_procedure(i)
            and not (i[1] == 2 and i[0] in COMPARISON_PREDICATES)
        }
        if db_leaves and not plain_leaves:
            # Distinguish "compiles fully to the database" from "also uses
            # internal facts": a view whose every non-database callee is
            # itself database-translatable is external.
            internal_fact_preds = {
                i for i in defined if not _reaches_database(graph, schema, i)
            }
            if internal_fact_preds - {indicator}:
                classified.append((subgoal, "mixed"))
            else:
                classified.append((subgoal, "external"))
        elif db_leaves:
            classified.append((subgoal, "mixed"))
        else:
            classified.append((subgoal, "internal"))
    return classified


def _reaches_database(
    graph: "nx.DiGraph", schema: DatabaseSchema, indicator: tuple[str, int]
) -> bool:
    if _is_database_indicator(schema, indicator):
        return True
    if not graph.has_node(indicator):
        return False
    return any(
        _is_database_indicator(schema, other)
        for other in nx.descendants(graph, indicator)
    )


@dataclass
class ExecutionPlan:
    """How a goal will be evaluated across the coupling boundary."""

    #: conjuncts shipped to the metaevaluator (order preserved)
    external: list[Term]
    #: conjuncts resolved in Prolog after the fetch (order preserved)
    internal: list[Term]
    #: variables shared between the two sides (must be fetched)
    interface_variables: list[Variable]
    #: target variables of the whole goal
    goal_variables: list[Variable]

    @property
    def is_pure_external(self) -> bool:
        return not self.internal

    @property
    def is_pure_internal(self) -> bool:
        return not self.external


def plan_goal(kb: KnowledgeBase, schema: DatabaseSchema, goal: Term) -> ExecutionPlan:
    """Split a conjunctive goal into external and internal parts.

    Comparisons join the external block when every variable they use is
    produced there (the DBMS can evaluate them); otherwise they stay
    internal.  Mixed conjuncts are rejected with guidance.
    """
    classified = classify_conjuncts(kb, schema, goal)
    for subgoal, kind in classified:
        if kind == "mixed":
            raise CouplingError(
                f"goal {subgoal} mixes database and internal knowledge; "
                "split the view or use repro.extensions.stepwise"
            )

    external = [g for g, kind in classified if kind == "external"]
    internal = [g for g, kind in classified if kind == "internal"]
    external_vars = {v for g in external for v in variables_of(g)}

    for subgoal, kind in classified:
        if kind != "comparison":
            continue
        used = set(variables_of(subgoal))
        if external and used <= external_vars:
            external.append(subgoal)
        else:
            internal.append(subgoal)

    goal_vars = [v for v in variables_of(goal) if not v.is_anonymous]
    internal_vars = {v for g in internal for v in variables_of(g)}
    interface = [
        v
        for v in goal_vars
        if v in external_vars and (v in internal_vars or not internal)
    ]
    # Variables shared between blocks but not in the answer still must
    # cross the interface.
    for variable in sorted(external_vars & internal_vars, key=str):
        if variable not in interface and not variable.is_anonymous:
            interface.append(variable)

    return ExecutionPlan(
        external=external,
        internal=internal,
        interface_variables=interface,
        goal_variables=goal_vars,
    )


@dataclass
class CachePolicy:
    """When is a query result worth storing? (paper section 2, function 2)"""

    max_rows: int = 10_000
    enabled: bool = True

    def should_store(self, row_count: int) -> bool:
        return self.enabled and row_count <= self.max_rows


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    stored: int = 0
    rejected: int = 0


class ResultCache:
    """Query-result store keyed by the canonicalised DBCL predicate.

    Canonical keys are invariant under variable renaming, so two goals
    that compile to isomorphic tableaux share one entry — the paper's
    motivation for storing intermediate results across related queries.
    """

    def __init__(self, policy: Optional[CachePolicy] = None):
        self.policy = policy if policy is not None else CachePolicy()
        self._entries: dict[tuple, list[tuple]] = {}
        self.stats = CacheStats()

    def lookup(self, predicate: DbclPredicate) -> Optional[list[tuple]]:
        entry = self._entries.get(predicate.canonical_key())
        if entry is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return entry

    def store(self, predicate: DbclPredicate, rows: Sequence[tuple]) -> bool:
        if not self.policy.should_store(len(rows)):
            self.stats.rejected += 1
            return False
        self._entries[predicate.canonical_key()] = list(rows)
        self.stats.stored += 1
        return True

    def invalidate(self) -> None:
        """Drop everything (call after base data changes)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)
