"""The coupled PROLOG–DBMS session (the whole of paper Figure 1).

:class:`PrologDbSession` is the public front door of this library.  It
owns the internal Prolog engine and knowledge base, the external SQLite
database, the metaevaluator, the local optimizer, and the global
optimizer, and it wires up the paper's ``metaevaluate/4`` amalgamated
predicate so expert-system programs can trigger database fetches from
inside Prolog clauses (the ``partner`` rule of Example 4-1).

Typical use::

    session = PrologDbSession()
    session.load_org(generate_org(depth=3, branching=2, staff_per_dept=4))
    session.consult(WORKS_DIR_FOR_SOURCE)
    answers = session.ask("works_dir_for(X, 'emp00001')")

``ask`` classifies the goal (internal / external / recursive), runs the
appropriate pipeline, and returns answer bindings as plain Python dicts.
``explain`` returns the full translation trace (DBCL, simplified DBCL,
SQL) without executing, which the examples and EXPERIMENTS.md use.

The ask hot path is *compile-once*: the first time a goal shape is seen
(constants abstracted to parameters), the session classifies it,
metaevaluates it, runs Algorithm 2, translates, and prints SQL — then
caches the whole artifact in a :class:`~repro.coupling.global_opt.PlanCache`.
Subsequent asks that differ only in constants bind parameters into the
prepared statement and execute.  Shapes whose simplification consulted a
concrete constant value (a marker reached a comparison, emptied the
plan, or vanished from the tableau) are *constant-sensitive*: they cache
exact-constant variants instead, so warm answers are always identical to
a fresh compilation.

Serving (concurrency + batching)
--------------------------------

The session is thread-safe.  Mutations — ``assert_fact``,
``retract_fact``, ``consult``, ``load_org``, and any ask that must
compile, merge segments, refresh a materialized view, run the engine, or
iterate a recursive closure — serialize on the knowledge base's write
lock.  Warm *pure-external* asks (a cached fully-compiled plan, no
pending internal segments) run concurrently under the read lock, each
thread executing on its own pooled read connection of the backend.

``ask_many`` is the set-oriented batch entry point: goals are grouped by
shape, and each warm fully-parameterized shape executes **once** per
batch — the rotating constants fold into an ``IN (VALUES …)`` variant of
the prepared statement, and result rows carry the constants they matched
so they demultiplex back into per-goal answers.  Cold and
constant-sensitive shapes fall back to the serial path (paper §7's
multiple-query optimization, applied to the prepared-plan hot path).
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional, Sequence, Union

from ..concurrency import LockedCounters

from ..dbcl.grammar import format_dbcl
from ..dbcl.predicate import DbclPredicate
from ..dbms.internal_db import assert_answers, term_to_value
from ..dbms.merge import SegmentMerger
from ..dbms.sqlite_backend import ExternalDatabase
from ..dbms.workload import OrgHierarchy, load_org
from ..cqa import (
    CqaStats,
    RelationViolations,
    ViolationDetector,
    certain_answers as cqa_certain_answers,
    peel_order,
    split_blocks,
)
from ..errors import (
    CouplingError,
    CqaError,
    DeadlineExceeded,
    ExecutionError,
    MetaevaluationError,
    ReproError,
    TransientBackendError,
)
from ..metaevaluate.recursion import (
    is_recursive_goal,
    recursive_indicators,
    view_call_graph,
)
from ..metaevaluate.translator import Metaevaluator
from ..observe import Tracer
from ..optimize.pipeline import SimplificationResult, SimplifyOptions, simplify
from ..prolog.engine import Engine
from ..prolog.knowledge_base import KnowledgeBase
from ..prolog.reader import parse_goal
from ..prolog.terms import (
    Atom,
    Clause,
    Number,
    Struct,
    Term,
    Variable,
    conjoin,
    conjuncts,
    goal_indicator,
    list_items,
    variables_of,
)
from ..prolog.unify import Substitution, unify
from ..schema.catalog import DatabaseSchema
from ..schema.constraints import ConstraintSet
from ..schema.empdep import empdep_constraints, empdep_schema
from ..sql.ast import SqlQuery
from ..sql.printer import print_sql
from ..sql.translate import certainty_suffix, translate
from .global_opt import (
    UNCACHEABLE,
    CachePolicy,
    CompiledPlan,
    ExecutionPlan,
    GoalShape,
    PlanCache,
    ResultCache,
    goal_shape,
    goal_with_markers,
    marker_columns,
    marker_for,
    marker_index,
    markers_in_comparisons,
    markers_in_rows,
    plan_goal,
)
from .recursion_exec import RecursionRun, TransitiveClosure

Value = Union[int, float, str, None]

#: Sentinel: the lock-free/read-locked fast path could not answer the
#: goal; the caller must re-run the full pipeline under the write lock.
_NEEDS_WRITE = object()


def _hit_rate(hits: int, misses: int) -> Optional[float]:
    """Hits as a fraction of lookups, or None before the first lookup."""
    total = hits + misses
    if not total:
        return None
    return round(hits / total, 4)


@dataclass
class CompilePhaseStats(LockedCounters):
    """Wall-clock breakdown of cold compilations, per pipeline phase.

    A cold ask pays classification (goal split over the view call graph),
    metaevaluation (Prolog → DBCL), optimization (Algorithm 2 plus the
    cost-based row order), translation (DBCL → SQL tree), and printing
    (tree → prepared text).  ``session.stats()["compile_phases"]``
    exposes the accumulated seconds per phase so a cost-model regression
    (say, the greedy join order suddenly dominating compile time) is
    observable instead of vanishing into one opaque cold-ask number.
    """

    cold_compilations: int = 0
    classify_seconds: float = 0.0
    metaevaluate_seconds: float = 0.0
    optimize_seconds: float = 0.0
    translate_seconds: float = 0.0
    print_seconds: float = 0.0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    _snapshot_fields = (
        "cold_compilations",
        "classify_seconds",
        "metaevaluate_seconds",
        "optimize_seconds",
        "translate_seconds",
        "print_seconds",
    )


@dataclass
class RecursionPlanStats(LockedCounters):
    """Observability for the cost-based recursion planner's decisions.

    Every planned recursive ask records which strategy the planner chose
    (per-strategy counters) plus the *reason string* of the most recent
    decision, so interval-vs-CTE routing is auditable in production via
    ``session.stats()["recursion_plans"]`` instead of requiring a
    debugger on :attr:`TransitiveClosure.last_plan`.
    """

    planned_asks: int = 0
    interval: int = 0
    cte: int = 0
    topdown: int = 0
    bottomup: int = 0
    other: int = 0
    last_strategy: str = ""
    last_reason: str = ""
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    _snapshot_fields = (
        "planned_asks",
        "interval",
        "cte",
        "topdown",
        "bottomup",
        "other",
    )

    def note(self, plan) -> None:
        """Record one :class:`~repro.coupling.recursion_exec.RecursionPlan`."""
        with self._lock:
            self.planned_asks += 1
            name = plan.strategy
            if name in ("interval", "cte", "topdown", "bottomup"):
                setattr(self, name, getattr(self, name) + 1)
            else:
                self.other += 1
            self.last_strategy = plan.strategy
            self.last_reason = plan.reason

    def snapshot(self) -> dict:
        with self._lock:
            data = {
                name: getattr(self, name) for name in self._snapshot_fields
            }
            data["last_strategy"] = self.last_strategy
            data["last_reason"] = self.last_reason
            return data


@dataclass
class TranslationTrace:
    """Everything the pipeline produced for one goal (``explain``)."""

    goal: Term
    dbcl: DbclPredicate
    simplification: SimplificationResult
    sql: SqlQuery

    @property
    def dbcl_text(self) -> str:
        return format_dbcl(self.dbcl)

    @property
    def optimized_dbcl_text(self) -> str:
        return format_dbcl(self.simplification.predicate)

    @property
    def sql_text(self) -> str:
        return print_sql(self.sql)


class PrologDbSession:
    """A tightly-coupled expert-system / relational-database session."""

    def __init__(
        self,
        schema: Optional[DatabaseSchema] = None,
        constraints: Optional[ConstraintSet] = None,
        database: Optional[ExternalDatabase] = None,
        optimize: bool = True,
        cache_policy: Optional[CachePolicy] = None,
        plan_cache: bool = True,
        storage_policy=None,
        tracing: bool = True,
        trace_ring: int = 1024,
        slow_query_seconds: float = 0.25,
        tracer=None,
        wall_clock=None,
    ):
        self.schema = schema if schema is not None else empdep_schema()
        self.constraints = (
            constraints
            if constraints is not None
            else empdep_constraints(self.schema)
        )
        self.database = (
            database
            if database is not None
            else ExternalDatabase(self.schema, constraints=self.constraints)
        )
        self.optimize = optimize
        self.kb = KnowledgeBase()
        self.engine = Engine(self.kb)
        self.metaevaluator = Metaevaluator(self.schema, self.kb)
        self.merger = SegmentMerger(self.kb, self.database)
        self.cache = ResultCache(cache_policy)
        self.plans = PlanCache()
        self.compile_phases = CompilePhaseStats()
        self.recursion_plans = RecursionPlanStats()
        #: Consistent query answering (ROADMAP E19): key-violation
        #: detection with per-generation probe caching, plus the
        #: counters ``stats()["cqa"]`` reports.
        self.cqa_stats = CqaStats()
        self.cqa_detector = ViolationDetector(
            self.database, self.constraints, stats=self.cqa_stats
        )
        #: Certain-answer sets from repair enumeration, keyed by
        #: (predicate canonical key, involved data generations) — any
        #: mutation of an involved relation changes the key.
        self._cqa_memo: dict[tuple, frozenset] = {}
        self._cqa_memo_lock = threading.Lock()
        #: Reachable-base-relation sets per (goal indicators, kb
        #: generation) — the call graph only changes with the kb, so a
        #: warm consistent ask skips the graph traversal entirely.
        self._cqa_relations_memo: dict[tuple, frozenset] = {}
        #: Per-ask tracing (ROADMAP E20).  ``tracing=False`` is the kill
        #: switch: ``Tracer.begin`` then returns ``None`` before any
        #: allocation and the backend execute observer is never installed.
        #: ``wall_clock`` injects the span timestamp provider (tests and
        #: seeded differentials pin it to a fake clock).
        self.tracer = (
            tracer
            if tracer is not None
            else Tracer(
                enabled=tracing,
                ring_size=trace_ring,
                slow_query_seconds=slow_query_seconds,
                wall_clock=wall_clock,
            )
        )
        self.tracer.attach(self.database)
        self._plan_caching = plan_cache
        self._closures: dict[tuple[str, int], TransitiveClosure] = {}
        self._closures_lock = threading.Lock()
        self._register_metaevaluate_builtin()
        # Any base-relation mutation (including engine-level assertz or
        # retract from inside a Prolog program) invalidates exactly the
        # cached results that could observe it.
        self.kb.add_listener(self._on_base_relation_change)
        # Imported here, not at module level: repro.materialize reaches
        # back into repro.coupling for the closure machinery.
        from ..materialize.manager import MaterializeManager

        #: The incremental view-maintenance subsystem (maintain-on-write).
        self.materialize = MaterializeManager(
            kb=self.kb,
            schema=self.schema,
            database=self.database,
            constraints=self.constraints,
            metaevaluator=self.metaevaluator,
            merger=self.merger,
            plans=self.plans if plan_cache else None,
            result_cache=self.cache,
            policy=storage_policy,
            optimize=optimize,
        )

    def _on_base_relation_change(self, kind, indicator, clauses) -> None:
        name, arity = indicator
        if self.schema.has_relation(name) and (
            self.schema.relation(name).arity == arity
        ):
            self.cache.invalidate_relation(name)

    # -- program loading ---------------------------------------------------------

    def consult(self, source: str) -> None:
        """Load Prolog clauses (views, rules, facts) into the session."""
        # The write lock makes load + cache invalidation atomic: no
        # concurrent reader observes new clauses with stale cached plans
        # or result rows.
        with self.kb.lock.write():
            clauses = self.kb.consult(source)
            with self._closures_lock:
                self._closures.clear()
            # Compiled plans key on KnowledgeBase.generation, which consult
            # advanced; the next sync drops them.  Clear eagerly anyway so the
            # cache never outlives a program change even in direct use.
            self.plans.invalidate()
            # Cached results track dependencies transitively (view names as
            # well as base relations), so invalidating each consulted head
            # also drops results for views defined *over* the changed ones.
            for name in {clause.indicator[0] for clause in clauses}:
                self.cache.invalidate_relation(name)
            self.materialize.on_consult([clause.indicator for clause in clauses])

    def load_org(self, org: OrgHierarchy) -> None:
        """Load a generated organisation into the external database."""
        # One generation bump for the whole load, however the loader (or
        # a change listener) touches the knowledge base.
        with self.kb.lock.write():
            with self.kb.bulk_update():
                relations = load_org(self.database, org)
            self.cache.invalidate(relations)
            self.materialize.on_load(relations)

    def warm(self, goals: Iterable[Union[str, Term]]) -> int:
        """Prime the plan cache: compile-and-ask each goal, answers discarded.

        The scale-out serving tier (ROADMAP E18) calls this on every
        worker after a snapshot refresh, so the first real request after
        a generation change pays a warm plan-cache hit instead of a cold
        compile.  A goal that fails to compile or execute is skipped —
        warmup must never take a worker down.  Returns how many goals
        warmed successfully.
        """
        warmed = 0
        for goal in goals:
            try:
                self.ask(goal)
            except ReproError:
                continue
            warmed += 1
        return warmed

    def program_snapshot(self) -> tuple[int, str]:
        """The in-memory program as ``(generation, source text)``.

        The payload a scale-out owner ships to read-only workers: every
        rule and non-base fact, rendered back to Prolog source, stamped
        with the knowledge base generation it serializes.  Base-relation
        facts are deliberately excluded — the external store already
        holds them (the serving tier merges internal segments before
        publishing), and shipping them would turn read-only workers
        into writers when their merge procedure fired.
        """
        from ..prolog.writer import program_to_string

        with self.kb.lock.read():
            clauses = []
            for indicator in list(self.kb.indicators()):
                name, arity = indicator
                if (
                    self.schema.has_relation(name)
                    and self.schema.relation(name).arity == arity
                ):
                    continue
                clauses.extend(self.kb.all_clauses(indicator))
            return self.kb.generation, program_to_string(clauses)

    @staticmethod
    def _fact_terms(values) -> tuple[Term, ...]:
        args: list[Term] = []
        for value in values:
            if isinstance(value, bool):
                args.append(Atom("true" if value else "false"))
            elif isinstance(value, (int, float)):
                args.append(Number(value))
            elif isinstance(value, str):
                args.append(Atom(value))
            else:
                raise TypeError(f"unsupported fact argument: {value!r}")
        return tuple(args)

    def assert_fact(self, functor: str, *values) -> None:
        """Add an internal fact (expert-system knowledge).

        Facts asserted under a *base relation* name form an internal
        database segment; the merge procedure (paper section 2) pushes
        them to the external DBMS before the next query over that
        relation.  The change listeners registered on the knowledge base
        invalidate affected cached results and — when materialized views
        depend on the relation — apply maintenance deltas instead of
        recomputing.
        """
        self.kb.assert_fact(functor, *values)

    def retract_fact(self, functor: str, *values) -> bool:
        """Remove a fact from the session's visible union of segments.

        The internal copy is retracted if present; for base relations the
        external tuple is removed as well, with materialized views
        maintained through delete deltas (DRed delete/re-derive for
        recursive views).  Returns True when something was removed.
        """
        args = self._fact_terms(values)
        clause = Clause(Struct(functor, args))
        # One write bracket for the internal retract *and* the external
        # delete: concurrent readers see the tuple everywhere or nowhere.
        with self.kb.lock.write():
            found = self.kb.retract(clause)
            if not (
                self.schema.has_relation(functor)
                and self.schema.relation(functor).arity == len(args)
            ):
                return found
            row = tuple(term_to_value(argument) for argument in args)
            if self.materialize.is_maintained(functor):
                if not found:
                    found = bool(self.materialize.external_delete(functor, row))
            else:
                removed = self.database.delete_row(functor, row)
                found = found or removed > 0
            self.cache.invalidate_relation(functor)
            return found

    def _merge_internal_segments(self, predicate: DbclPredicate) -> None:
        """Push internal facts for the predicate's relations to the DBMS.

        The paper's alternative storage strategy ("storing query results
        in the external database system, to keep a clean separation"):
        any base relation with internally asserted tuples is materialised
        externally so the generated SQL sees the union of both segments.
        """
        for tag in {row.tag for row in predicate.rows}:
            if not self.schema.has_relation(tag):
                continue
            relation = self.schema.relation(tag)
            if self.kb.fact_count((tag, relation.arity)):
                self.merger.materialise_internal(tag)

    # -- the paper's amalgamated metaevaluate/4 ------------------------------------

    def _register_metaevaluate_builtin(self) -> None:
        session = self

        def builtin_metaevaluate(engine, goal, subst, depth):
            """metaevaluate(Program, [Goal], Options, DBCL) — paper §4."""
            assert isinstance(goal, Struct)
            _program, goal_list, options, dbcl_out = goal.args
            goals = list_items(subst.apply(goal_list))
            if len(goals) != 1:
                raise CouplingError("metaevaluate/4 expects a one-goal list")
            inner = goals[0]
            use_optim = subst.apply(options) != Atom("no_optim")
            predicate, rows = session._fetch_view(inner, optimize=use_optim)
            from ..prolog.reader import parse_term

            if predicate is None:
                # All branches were fact branches: the answers are already
                # in the internal database from an earlier metaevaluation.
                dbcl_term: Term = Atom("already_evaluated")
            else:
                dbcl_term = parse_term(format_dbcl(predicate).rstrip(". \n"))
            extended = unify(dbcl_out, dbcl_term, subst)
            if extended is not None:
                yield extended

        self.engine.register_builtin("metaevaluate", 4, builtin_metaevaluate)

    def _phase(self, phase: str, started: float) -> float:
        """Accumulate one compile phase's wall clock; returns a new mark.

        Feeds both the session-wide :class:`CompilePhaseStats` and — when
        an ask span is open on this thread — that span's per-ask phase
        breakdown, so cold compiles are explainable from one trace record.
        """
        now = time.perf_counter()
        elapsed = now - started
        self.compile_phases.incr(f"{phase}_seconds", elapsed)
        span = self.tracer.current_span()
        if span is not None:
            span.phases[phase] = span.phases.get(phase, 0.0) + elapsed
        return now

    def _cost_ordered(self, predicate: DbclPredicate) -> DbclPredicate:
        """Rows reordered by the statistics-driven greedy join order.

        Applied between Algorithm 2 and SQL translation: the simplified
        tableau's rows are permuted so the most selective relation leads
        and each join extends the cheapest prefix (System R estimates
        over the backend's relation statistics).  Answer-preserving by
        construction — see :mod:`repro.optimize.costs` — and skipped
        when optimization is off or the backend has no statistics
        service, so ``explain`` traces and ``no_optim`` runs keep the
        paper's literal row order.
        """
        if not self.optimize or len(predicate.rows) <= 1:
            return predicate
        stats_of = getattr(self.database, "relation_statistics", None)
        if stats_of is None:
            return predicate
        from ..optimize.costs import order_rows

        try:
            return order_rows(predicate, stats_of)
        except Exception:  # noqa: BLE001 - cost ordering is advisory
            return predicate

    def _fetch_view(
        self, goal: Term, optimize: bool = True
    ) -> tuple[Optional[DbclPredicate], list[tuple]]:
        """Metaevaluate a single-view goal, execute it, assert the answers.

        A view that was metaevaluated before carries its previous answers
        as asserted facts; unfolding now yields extra *fact branches* with
        no database calls.  Those answers are already in the internal
        database, so only the rule branch is compiled.

        Repeated shapes take the prepared path: the rule branch's
        compilation is cached per goal shape (see the module docstring)
        and re-executed with bound parameters.
        """
        use_optim = bool(optimize and self.optimize)
        targets = [v for v in variables_of(goal) if not v.is_anonymous]
        shape: Optional[GoalShape] = None
        if self._plan_caching:
            self.plans.sync(self.kb)
            base = goal_shape(goal)
            if base is not None:
                shape = GoalShape(
                    key=("fetch", use_optim) + base.key,
                    constants=base.constants,
                )
                plan = self.plans.lookup(shape)
                if plan is UNCACHEABLE:
                    shape = None  # cold path, no recompilation attempt
                elif plan is not None:
                    return self._execute_fetch_plan(plan, shape, goal, targets)

        mark = time.perf_counter()
        self.compile_phases.incr("cold_compilations")
        name = self.metaevaluator._default_name(goal)
        branches = [
            branch
            for branch in self.metaevaluator.collect_branches(goal)
            if branch.dbcalls
        ]
        if not branches:
            return None, []  # everything already answered internally
        if len(branches) > 1:
            raise CouplingError(
                f"metaevaluate/4 on disjunctive view {name}; use "
                "ask_disjunctive instead"
            )
        predicate = self.metaevaluator.branch_to_dbcl(branches[0], name, targets)
        mark = self._phase("metaevaluate", mark)
        options = SimplifyOptions() if use_optim else SimplifyOptions.none()
        result = simplify(predicate, self.constraints, options)
        if result.is_empty:
            self._phase("optimize", mark)
            if shape is not None:
                self._compile_fetch_plan(
                    shape, goal, targets, name, options, None, result.original
                )
            return result.original, []
        final = result.predicate
        if use_optim:
            final = self._cost_ordered(final)
        mark = self._phase("optimize", mark)
        rows = self.cache.lookup(final)
        sql_text: Optional[str] = None
        if rows is None:
            self._merge_internal_segments(final)
            mark = time.perf_counter()
            sql = translate(final, distinct=True)
            mark = self._phase("translate", mark)
            if sql.is_empty:
                rows = []
            else:
                sql_text = self.database.prepare(sql)
                self._phase("print", mark)
                rows = self.database.execute_prepared(sql_text)
            self.cache.store(final, rows, self._result_dependencies(final, goal))
        assert_answers(self.kb, goal, final, targets, rows)
        if shape is not None:
            # Compile after asserting: the new answer facts advanced the KB
            # generation, and a plan stored before them would be dropped on
            # the next sync.  The plan stays valid — answer facts only add
            # fact branches, which the fetch path filters out by design.
            self._compile_fetch_plan(
                shape, goal, targets, name, options, final, result.original,
                sql_text,
            )
        return final, rows

    # -- query answering --------------------------------------------------------------

    def ask(
        self,
        goal: Union[str, Term],
        max_solutions: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> list[dict[str, Value]]:
        """Answer a goal, routing each part to the right evaluator.

        Thread-safe: warm pure-external asks (and fresh maintained-view
        hits) run concurrently under the knowledge base's read lock;
        everything that might mutate — compilation, segment merges, view
        refreshes, engine resolution, recursive closures — serializes on
        the write lock.

        ``deadline`` caps the ask's wall-clock budget in seconds: the
        backend's progress handler interrupts any statement still running
        at expiry and :class:`~repro.errors.DeadlineExceeded` surfaces
        with partial-work counters attached.  Transient backend failures
        that outlast the backend's own retry ladder — a long lock burst,
        a poisoned pooled connection — are retried here, bounded by the
        fault policy's ``max_ask_retries``; only a budget this generous
        failing turns into an error the caller sees.
        """
        if isinstance(goal, str):
            goal = parse_goal(goal)
        span = self.tracer.begin(goal)
        if span is None:  # tracing disabled, or attributed to an outer span
            with self.database.deadline(deadline):
                return self._ask_resilient(goal, max_solutions)
        try:
            with self.database.deadline(deadline):
                answers = self._ask_resilient(goal, max_solutions, span)
                if deadline is not None:
                    scope = self.database.current_deadline()
                    if scope is not None:
                        span.deadline_remaining = round(scope.remaining(), 6)
            span.answers = len(answers)
            return answers
        except Exception as error:
            span.error = f"{type(error).__name__}: {error}"
            raise
        finally:
            self.tracer.commit(span)

    def _ask_resilient(
        self, goal: Term, max_solutions: Optional[int], span=None
    ) -> list[dict[str, Value]]:
        """Retry transient failures around the whole ask pipeline."""
        policy = self.database.policy
        attempts = 0
        while True:
            try:
                return self._ask_once(goal, max_solutions, span)
            except TransientBackendError:
                attempts += 1
                if not policy.enabled or attempts > policy.max_ask_retries:
                    raise
                self.database.resilience.incr("ask_retries")
                pause = policy.ask_retry_pause * min(attempts, 8)
                scope = self.database.current_deadline()
                if scope is not None:
                    if scope.expired:
                        raise  # the next attempt could only time out
                    pause = scope.clamp(pause)
                time.sleep(pause)

    def _ask_once(
        self, goal: Term, max_solutions: Optional[int], span=None
    ) -> list[dict[str, Value]]:
        fast = self._ask_read_path(goal, max_solutions, span)
        if fast is not _NEEDS_WRITE:
            return fast
        with self.kb.lock.write():
            return self._ask_write_path(goal, max_solutions, span)

    def _ask_read_path(self, goal: Term, max_solutions: Optional[int],
                       span=None):
        """Answer under the read lock, or :data:`_NEEDS_WRITE`.

        Only evaluations that provably mutate nothing run here: a fresh
        maintained view, or a cached pure-external plan whose relations
        have no pending internal segments.  Plan-cache *stats* for misses
        are left to the write path (which repeats the lookup), so counts
        match the single-threaded accounting exactly.  The open span (if
        any) arrives as a parameter — the warm path is where the E20
        overhead budget is spent, and a thread-local read per ask is
        measurable there.
        """
        with self.kb.lock.read():
            status, maintained = self.materialize.try_answer(goal, max_solutions)
            if status == "hit":
                if span is not None:
                    span.plan_cache = "maintained"
                    span.plan_kind = "maintained"
                return maintained
            if status == "stale":
                return _NEEDS_WRITE
            if not self._plan_caching:
                return _NEEDS_WRITE
            mark = time.perf_counter() if span is not None else 0.0
            self.plans.sync(self.kb)
            shape = goal_shape(goal)
            if span is not None:
                # Inlined span.mark(): method-call frames on this branch
                # are paid on every warm ask (E20 overhead budget).
                now = time.perf_counter()
                span.phases["shape"] = now - mark
                mark = now
            if shape is None:
                return _NEEDS_WRITE
            entry = self.plans.entry_for(shape)
            if entry is None or entry.uncacheable:
                return _NEEDS_WRITE
            plan = entry.variants.get(entry.variant_key(shape.constants))
            if (
                plan is None
                or plan.kind != "external"
                or plan.internal_indices
            ):
                return _NEEDS_WRITE
            self.plans.stats.incr("hits")
            if span is not None:
                span.shape_key = shape.key
                span.plan_cache = "hit"
                span.plan_kind = plan.kind
                now = time.perf_counter()
                span.phases["plan_lookup"] = now - mark
            if plan.is_empty:
                return []
            bound = plan.bind(shape.constants, self.constraints)
            if bound is None:
                self.plans.stats.incr("bind_empties")
                return []
            if self._pending_merge(bound):
                return _NEEDS_WRITE  # merging segments mutates both stores
            # Same executor as the write path's warm branch; its internal
            # segment merge provably no-ops here (_pending_merge is false),
            # so nothing mutates under the read lock.
            try:
                rows = self._rows_for_plan(plan, shape, bound, goal)
            except TransientBackendError:
                raise  # the resilient ask driver retries whole attempts
            except ExecutionError:
                # Permanent warm-plan failure.  Recovery (evict the plan,
                # recompile cold) mutates the plan cache and runs the
                # cold pipeline: restart on the write side.
                return _NEEDS_WRITE
            if span is not None:
                mark = time.perf_counter()
            goal_vars = [v for v in variables_of(goal) if not v.is_anonymous]
            answers = self._rows_to_answers(
                bound, plan.fetch_targets, rows, goal_vars
            )
            if span is not None:
                span.phases["demux"] = time.perf_counter() - mark
            if max_solutions is not None:
                return answers[:max_solutions]
            return answers

    def _ask_write_path(
        self, goal: Term, max_solutions: Optional[int], span=None
    ) -> list[dict[str, Value]]:
        """The full pipeline (mutations allowed; caller holds write lock)."""
        if span is None:
            span = self.tracer.current_span()
        maintained = self.materialize.answer(goal, max_solutions)
        if maintained is not None:
            if span is not None:
                span.plan_cache = "maintained"
                span.plan_kind = "maintained"
            return maintained
        goal_vars = [v for v in variables_of(goal) if not v.is_anonymous]

        shape: Optional[GoalShape] = None
        if self._plan_caching:
            mark = time.perf_counter() if span is not None else 0.0
            self.plans.sync(self.kb)
            shape = goal_shape(goal)
            if span is not None:
                mark = span.mark("shape", mark)
                if shape is not None:
                    span.shape_key = shape.key
            if shape is not None:
                plan = self.plans.lookup(shape)
                if span is not None:
                    span.mark("plan_lookup", mark)
                if plan is UNCACHEABLE:
                    if span is not None:
                        span.plan_cache = "uncacheable"
                    shape = None  # cold path, no recompilation attempt
                elif plan is not None:
                    if span is not None:
                        span.plan_cache = "hit"
                        span.plan_kind = plan.kind
                    try:
                        return self._execute_plan(
                            plan, shape, goal, goal_vars, max_solutions
                        )
                    except TransientBackendError:
                        raise  # retried whole by the resilient driver
                    except ExecutionError:
                        # The warm plan failed *permanently* mid-execution
                        # (a prepared statement the backend no longer
                        # accepts).  Drop the shape's plans and fall
                        # through to exactly one cold recompilation.
                        self._invalidate_failed_plan(shape)

        answers, artifacts = self._ask_cold(goal, goal_vars, max_solutions)
        if span is not None:
            span.plan_cache = "miss"
            span.plan_kind = artifacts.get("kind")
        if shape is not None:
            self._try_compile(shape, goal, artifacts)
        return answers

    def _invalidate_failed_plan(self, shape: GoalShape) -> None:
        """Drop a warm plan that failed permanently at execution time.

        The prepared statement no longer matches backend reality (a
        dropped table, a schema drift the generation counter cannot see).
        Evicting the shape sends this ask down the cold pipeline, which
        recompiles against the current catalog and re-stores — one cold
        compile heals the shape for every later ask.  Result rows cached
        through the dead plan go too: they were fetched from the state
        the backend just disowned.
        """
        self.plans.evict(shape)
        self.cache.invalidate()
        self.database.resilience.incr("plan_invalidations")

    def _pending_merge(self, predicate: DbclPredicate) -> bool:
        """Would executing this predicate first need a segment merge?"""
        for tag in {row.tag for row in predicate.rows}:
            if not self.schema.has_relation(tag):
                continue
            relation = self.schema.relation(tag)
            if self.kb.fact_count((tag, relation.arity)):
                return True
        return False

    # -- consistent query answering (ROADMAP E19) -------------------------------------

    def ask_consistent(
        self,
        goal: Union[str, Term],
        max_solutions: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> list[dict[str, Value]]:
        """The goal's *certain* answers: tuples true in every repair.

        A repair keeps exactly one tuple of each primary-key-equal block
        of every base relation; certain answers are the intersection of
        the goal's answers over all repairs (consistent query answering).
        Three regimes, decided per ask:

        * **clean store** — one cached key-violation probe per involved
          relation shows no violating blocks; the ask delegates to the
          plain pipeline and returns byte-identical answers with zero
          additional statements (the probe itself is cached against the
          backend's per-relation data generation);
        * **rewritten** — the goal's attack graph is acyclic
          (Koutris–Wijsen), so a certainty condition is appended to the
          plain translated query and the whole rewriting executes as one
          prepared, parameterized statement cached in the plan cache
          under the shape's consistent-mode variant — warm consistent
          asks run at warm-ask speed;
        * **enumerated** — outside the rewritable class (self-joins, an
          attack cycle), answers are intersected over the block-wise
          repair space, bounded by
          :data:`~repro.cqa.repairs.MAX_REPAIRS` and memoized per data
          generation.

        Only pure-external, non-recursive conjunctive goals have repair
        semantics here; anything else raises
        :class:`~repro.errors.CqaError`.  ``deadline`` and transient
        retries behave exactly as in :meth:`ask`.
        """
        if isinstance(goal, str):
            goal = parse_goal(goal)
        span = self.tracer.begin(goal, kind="ask_consistent")
        if span is None:
            with self.database.deadline(deadline):
                return self._ask_consistent_resilient(goal, max_solutions, None)
        try:
            with self.database.deadline(deadline):
                answers = self._ask_consistent_resilient(
                    goal, max_solutions, span
                )
                if deadline is not None:
                    scope = self.database.current_deadline()
                    if scope is not None:
                        span.deadline_remaining = round(scope.remaining(), 6)
            span.answers = len(answers)
            return answers
        except Exception as error:
            span.error = f"{type(error).__name__}: {error}"
            raise
        finally:
            self.tracer.commit(span)

    def _ask_consistent_resilient(
        self, goal: Term, max_solutions: Optional[int], span=None
    ) -> list[dict[str, Value]]:
        """Retry transient failures around the whole consistent ask."""
        policy = self.database.policy
        attempts = 0
        while True:
            try:
                return self._ask_consistent_once(goal, max_solutions, span)
            except TransientBackendError:
                attempts += 1
                if not policy.enabled or attempts > policy.max_ask_retries:
                    raise
                self.database.resilience.incr("ask_retries")
                pause = policy.ask_retry_pause * min(attempts, 8)
                scope = self.database.current_deadline()
                if scope is not None:
                    if scope.expired:
                        raise
                    pause = scope.clamp(pause)
                time.sleep(pause)

    def _ask_consistent_once(
        self, goal: Term, max_solutions: Optional[int], span=None
    ) -> list[dict[str, Value]]:
        relations = self._relations_of_goal(goal)
        self._merge_pending_for(relations)
        dirty: dict[str, RelationViolations] = {}
        for name in sorted(relations):
            snapshot = self.cqa_detector.violations(name)
            if not snapshot.is_clean:
                dirty[name] = snapshot
        if not dirty:
            # Every repair of a clean store is the store itself: certain
            # answers coincide with plain answers, and the plain pipeline
            # (same span, same caches) answers without one extra
            # statement beyond the cached probes above.
            self.cqa_stats.incr("clean_fast_paths")
            if span is not None:
                span.cqa = {"mode": "clean_fast_path", "violating_blocks": 0}
            return self._ask_once(goal, max_solutions, span)
        with self.kb.lock.write():
            return self._ask_consistent_dirty(goal, dirty, max_solutions, span)

    def _merge_pending_for(self, relations: Iterable[str]) -> None:
        """Merge pending internal segments before violation probes.

        A fact asserted into a base relation can introduce (or resolve)
        a key violation; probing the pre-merge store would answer for
        data the subsequent execution never sees.
        """
        pending = [
            name
            for name in sorted(set(relations))
            if self.kb.fact_count((name, self.schema.relation(name).arity))
        ]
        if not pending:
            return
        with self.kb.lock.write():
            for name in pending:
                if self.kb.fact_count((name, self.schema.relation(name).arity)):
                    self.merger.materialise_internal(name)

    def _relations_of_goal(self, goal: Term) -> set[str]:
        """Base relations the goal can read, transitively through views."""
        import networkx as nx

        indicators = []
        for term in conjuncts(goal):
            try:
                indicators.append(goal_indicator(term))
            except ValueError:
                continue
        memo_key = (frozenset(indicators), self.kb.generation)
        cached = self._cqa_relations_memo.get(memo_key)
        if cached is not None:
            return set(cached)
        graph = (
            self.plans.graph(self.kb, self.schema)
            if self._plan_caching
            else view_call_graph(self.kb, self.schema)
        )
        relations: set[str] = set()
        for indicator in indicators:
            reachable = {indicator}
            if graph.has_node(indicator):
                reachable |= set(nx.descendants(graph, indicator))
            for name, arity in reachable:
                if (
                    self.schema.has_relation(name)
                    and self.schema.relation(name).arity == arity
                ):
                    relations.add(name)
        if len(self._cqa_relations_memo) >= 128:
            self._cqa_relations_memo.clear()
        self._cqa_relations_memo[memo_key] = frozenset(relations)
        return relations

    def _ask_consistent_dirty(
        self,
        goal: Term,
        dirty: dict[str, RelationViolations],
        max_solutions: Optional[int],
        span=None,
    ) -> list[dict[str, Value]]:
        """The certain-answer pipeline for a store with violations."""
        goal_vars = [v for v in variables_of(goal) if not v.is_anonymous]
        shape: Optional[GoalShape] = None
        if self._plan_caching:
            self.plans.sync(self.kb)
            base = goal_shape(goal)
            if base is not None:
                # The consistent-mode variant of the shape: same constants,
                # prefixed key, so plain and rewritten plans never collide.
                shape = GoalShape(
                    key=("cqa",) + base.key, constants=base.constants
                )
                cached = self.plans.lookup(shape)
                if cached is UNCACHEABLE:
                    shape = None
                elif cached is not None:
                    self.cqa_stats.incr("rewrite_cache_hits")
                    if span is not None:
                        span.shape_key = shape.key
                        span.plan_cache = "hit"
                        span.plan_kind = cached.kind
                    return self._execute_cqa_plan(
                        cached, shape.constants, goal_vars, dirty,
                        max_solutions, span,
                    )
        constants = shape.constants if shape is not None else ()
        try:
            material, plan = self._compile_cqa_plan(goal, shape)
        except CqaError:
            raise
        except Exception:
            if shape is not None:
                self.plans.mark_uncacheable(shape)
            raise
        if span is not None:
            span.plan_cache = "miss"
            span.plan_kind = plan.kind
            if shape is not None:
                span.shape_key = shape.key
        if shape is not None:
            self.plans.store(shape, material, plan)
        return self._execute_cqa_plan(
            plan, constants, goal_vars, dirty, max_solutions, span
        )

    def _compile_cqa_plan(
        self, goal: Term, shape: Optional[GoalShape]
    ) -> tuple[frozenset, CompiledPlan]:
        """Classify the goal and compile its consistent-mode plan."""
        if self._is_recursive(goal):
            raise CqaError(
                "consistent answers are not defined for recursive goals: "
                "neither the rewriting nor the repair enumeration covers "
                "them (ROADMAP E19 scope)"
            )
        graph = (
            self.plans.graph(self.kb, self.schema) if self._plan_caching else None
        )
        try:
            split = plan_goal(self.kb, self.schema, goal, graph=graph)
        except CouplingError as error:
            raise CqaError(
                f"goal mixes internal and external knowledge inside one "
                f"view; repairs only range over the external store: {error}"
            ) from error
        if not split.is_pure_external:
            raise CqaError(
                "consistent answers need a pure-external conjunctive goal; "
                "internal conjuncts have no repair semantics"
            )
        self.cqa_stats.incr("rewrite_compiles")
        external_goal = conjoin(split.external)
        interface = set(split.interface_variables)
        fetch_targets = tuple(
            v
            for v in variables_of(external_goal)
            if not v.is_anonymous and v in interface
        )
        options = SimplifyOptions() if self.optimize else SimplifyOptions.none()
        if (
            shape is not None
            and shape.constants
            and not self._constant_discriminating(
                [
                    goal_indicator(term)
                    for term in split.external
                    if isinstance(term, Struct)
                ]
            )
        ):
            plan = self._cqa_marker_plan(goal, shape, fetch_targets, options)
            if plan is not None:
                return frozenset(), plan
        # Exact-constant fallback: one plan per concrete constant tuple.
        predicate = self.metaevaluator.metaevaluate(
            external_goal, targets=list(fetch_targets)
        )
        result = simplify(predicate, self.constraints, options)
        material = (
            frozenset(range(shape.parameter_count)) if shape else frozenset()
        )
        if result.is_empty:
            # Empty under the integrity constraints — and every repair
            # satisfies them by construction, so certainly empty.
            return material, CompiledPlan(
                kind="cqa",
                is_empty=True,
                template=result.original,
                fetch_targets=fetch_targets,
            )
        final = self._cost_ordered(result.predicate)
        return material, self._finish_cqa_plan(
            final, {}, fetch_targets, (), {}, allow_empty=True
        )

    def _cqa_marker_plan(
        self,
        goal: Term,
        shape: GoalShape,
        fetch_targets: tuple[Variable, ...],
        options: SimplifyOptions,
    ) -> Optional[CompiledPlan]:
        """A fully-parameterized consistent plan, or None to fall back.

        One-shot version of :meth:`_parameterize`'s analysis: every
        constant becomes a marker, and any sign the compilation consulted
        a concrete value (witness fired, a marker vanished or emptied the
        plan, translation balked) abandons parameterization for the
        exact-constant path rather than iterating — rewriting compiles
        are expected to repeat, so the plan is parameterized eagerly on
        the first miss.
        """
        from ..dbcl.symbols import watch_marker_consultation
        from ..errors import TranslationError

        open_params = frozenset(range(shape.parameter_count))
        marker_goal = goal_with_markers(goal, frozenset())
        predicate_m = self.metaevaluator.metaevaluate(
            marker_goal, targets=list(fetch_targets)
        )
        param_cells = marker_columns(predicate_m)
        with watch_marker_consultation() as witness:
            result_m = simplify(predicate_m, self.constraints, options)
        if result_m.is_empty or witness.consulted:
            return None
        final_m = result_m.predicate
        vanished = (
            open_params
            - frozenset(markers_in_rows(final_m))
            - frozenset(markers_in_comparisons(final_m))
        )
        if vanished:
            return None
        final_m = self._cost_ordered(final_m)
        parameter_map = {str(marker_for(index)): index for index in open_params}
        try:
            with watch_marker_consultation() as translate_witness:
                plan = self._finish_cqa_plan(
                    final_m,
                    parameter_map,
                    fetch_targets,
                    tuple(sorted(open_params)),
                    {
                        index: param_cells.get(index, ())
                        for index in open_params
                    },
                    allow_empty=False,
                )
            if translate_witness.consulted:
                return None
        except TranslationError:
            return None
        return plan

    def _finish_cqa_plan(
        self,
        final: DbclPredicate,
        parameter_map: dict,
        fetch_targets: tuple[Variable, ...],
        open_params: tuple[int, ...],
        param_columns: dict,
        allow_empty: bool,
    ) -> CompiledPlan:
        """Decide rewriting vs. enumeration, build the compiled plan.

        ``kind="cqa"`` plans carry the full rewritten statement — the
        plain translated query with the certainty condition appended —
        while ``kind="cqa_enum"`` plans carry only the template for the
        repair enumerator.  The parameterized ``sql`` tree is stored as
        ``None`` in both: an ``IN (VALUES …)`` batch variant would let
        one goal's answer satisfy another goal's certainty condition,
        so consistent plans must never take the batch path.
        """
        from ..errors import TranslationError

        keys_of = {
            row.tag: self.cqa_detector.key_of(row.tag) for row in final.rows
        }
        order = peel_order(final, keys_of)
        if order is None:
            return CompiledPlan(
                kind="cqa_enum",
                template=final,
                open_params=tuple(open_params),
                param_columns=dict(param_columns),
                fetch_targets=tuple(fetch_targets),
            )
        sql = translate(final, distinct=True, parameters=parameter_map or None)
        if sql.is_empty:
            if not allow_empty:
                raise TranslationError(
                    "marker-free ground contradiction: replay via exact plan"
                )
            return CompiledPlan(
                kind="cqa",
                is_empty=True,
                template=final,
                fetch_targets=tuple(fetch_targets),
            )
        suffix, suffix_markers = certainty_suffix(
            final, order, parameters=parameter_map
        )
        plain = self.database.prepare(sql)
        connector = (
            " AND "
            if (sql.where or sql.batch_conditions or sql.extra_conditions)
            else " WHERE "
        )
        bind_order = tuple(sql.parameter_order()) + tuple(
            marker_index(marker) for marker in suffix_markers
        )
        return CompiledPlan(
            kind="cqa",
            template=final,
            sql_text=plain + connector + suffix,
            bind_order=bind_order,
            open_params=tuple(open_params),
            param_columns=dict(param_columns),
            fetch_targets=tuple(fetch_targets),
        )

    def _execute_cqa_plan(
        self,
        plan: CompiledPlan,
        constants: tuple,
        goal_vars: Sequence[Variable],
        dirty: dict[str, RelationViolations],
        max_solutions: Optional[int],
        span=None,
    ) -> list[dict[str, Value]]:
        """Run a consistent-mode plan against a store with violations."""
        cqa_info = {
            "mode": "rewritten" if plan.kind == "cqa" else "enumerated",
            "rewritable": plan.kind == "cqa",
            "dirty_relations": sorted(dirty),
            "violating_blocks": sum(v.block_count for v in dirty.values()),
        }
        if span is not None:
            span.cqa = cqa_info
        if plan.is_empty:
            self.cqa_stats.incr("rewritten_asks")
            return []
        bound = plan.bind(constants, self.constraints)
        if bound is None:
            self.plans.stats.incr("bind_empties")
            return []
        if plan.kind == "cqa":
            try:
                with self.database.fault_context("cqa_rewrite"):
                    rows = self.database.execute_prepared(
                        plan.sql_text, plan.bind_values(constants)
                    )
            except TransientBackendError:
                raise  # retried whole by the resilient driver
            except ExecutionError:
                # Degradation rung (extends the PR 6 ladder): the
                # rewriting statement failed permanently, so fall to
                # repair enumeration, which reads the store through
                # plain per-relation fetches instead.
                self.database.resilience.incr("degraded_answers")
                self.cqa_stats.incr("degraded")
                cqa_info["mode"] = "enumerated"
                cqa_info["degraded"] = True
                answers = self._enumerate_certain(bound, dirty, goal_vars)
            else:
                self.cqa_stats.incr("rewritten_asks")
                answers = self._rows_to_answers(
                    bound, plan.fetch_targets, rows, goal_vars
                )
        else:
            answers = self._enumerate_certain(bound, dirty, goal_vars)
        if max_solutions is not None:
            return answers[:max_solutions]
        return answers

    def _enumerate_certain(
        self,
        predicate: DbclPredicate,
        dirty: dict[str, RelationViolations],
        goal_vars: Sequence[Variable],
    ) -> list[dict[str, Value]]:
        """Intersect the goal's answers over every repair (memoized).

        Certain-answer rows never enter the :class:`ResultCache` — its
        canonical key is the predicate alone, and the *plain* executor
        stores rows under the same key with different (non-certain)
        contents — so enumeration results memoize here instead, keyed by
        predicate plus the data generations of every involved relation.
        """
        tags = sorted({row.tag for row in predicate.rows})
        generations = tuple(
            (tag, self.database.data_generation(tag)) for tag in tags
        )
        memo_key = (predicate.canonical_key(), generations)
        with self._cqa_memo_lock:
            certain = self._cqa_memo.get(memo_key)
        if certain is not None:
            self.cqa_stats.incr("memo_hits")
        else:
            fixed: dict[str, list] = {}
            blocks: dict[str, list] = {}
            for tag in tags:
                rows = [
                    tuple(row) for row in self.database.fetch_relation(tag)
                ]
                snapshot = dirty.get(tag)
                if snapshot is None or snapshot.is_clean:
                    fixed[tag] = list(dict.fromkeys(rows))
                    blocks[tag] = []
                    continue
                attributes = tuple(self.schema.relation(tag).attributes)
                key_positions = [
                    attributes.index(a) for a in snapshot.key
                ]
                fixed[tag], blocks[tag] = split_blocks(rows, key_positions)
            certain = cqa_certain_answers(
                predicate, fixed, blocks, stats=self.cqa_stats
            )
            with self._cqa_memo_lock:
                if len(self._cqa_memo) >= 256:
                    self._cqa_memo.clear()
                self._cqa_memo[memo_key] = certain
        self.cqa_stats.incr("fallback_asks")
        rows = sorted(certain, key=repr)
        return self._rows_to_answers(predicate, (), rows, goal_vars)

    def integrity_report(self) -> dict:
        """Per-relation key/FD violation counts with sample blocks.

        Key violations come from the detector's cached probes (so a
        clean relation re-reports for free); violations of the declared
        functional dependencies beyond the primary key are counted in
        Python over one deduplicated fetch per relation that declares
        any.  Diagnostic view — nothing here feeds the ask paths.
        """
        report: dict[str, dict] = {}
        for name in sorted(self.schema.relations):
            snapshot = self.cqa_detector.violations(name)
            attributes = tuple(self.schema.relation(name).attributes)
            entry: dict = {
                "key": list(snapshot.key),
                "key_violations": snapshot.block_count,
                "violating_rows": snapshot.violating_rows,
                "sample_blocks": [
                    {
                        "key": list(key_value),
                        "rows": [list(row) for row in block[:4]],
                    }
                    for key_value, block in list(
                        zip(snapshot.key_values, snapshot.blocks)
                    )[:3]
                ],
                "funcdeps": [],
            }
            rows: Optional[list[tuple]] = None
            for dependency in self.constraints.funcdeps_of(name):
                if rows is None:
                    rows = list(
                        dict.fromkeys(
                            tuple(row)
                            for row in self.database.fetch_relation(name)
                        )
                    )
                lhs_positions = [attributes.index(a) for a in dependency.lhs]
                rhs_positions = [attributes.index(a) for a in dependency.rhs]
                groups: dict[tuple, set] = {}
                for row in rows:
                    groups.setdefault(
                        tuple(row[i] for i in lhs_positions), set()
                    ).add(tuple(row[i] for i in rhs_positions))
                entry["funcdeps"].append(
                    {
                        "lhs": list(dependency.lhs),
                        "rhs": list(dependency.rhs),
                        "violations": sum(
                            1
                            for images in groups.values()
                            if len(images) > 1
                        ),
                    }
                )
            report[name] = entry
        return report

    # -- set-oriented batch serving ---------------------------------------------------

    def ask_many(
        self,
        goals: Iterable[Union[str, Term]],
        max_solutions: Optional[int] = None,
        deadline: Optional[float] = None,
        consistent: bool = False,
    ) -> list[list[dict[str, Value]]]:
        """Answer a batch of goals, one execution per warm goal shape.

        Goals are grouped by :func:`goal_shape`; each group whose shape
        has a warm fully-parameterized pure-external plan executes
        **once**: the members' constant tuples fold into an
        ``IN (VALUES …)`` parameter-batch variant of the prepared
        statement, and the fetched rows — widened with the constants they
        matched — demultiplex back into per-goal answer lists (paper §7:
        "process multiple database queries simultaneously").

        Cold shapes warm up through at most two serial asks (the lazy
        compiler parameterizes a shape on its second miss) and the
        remainder batches; constant-sensitive, mixed, recursive,
        engine-resolved, and unshapeable goals fall back to the serial
        path.  Per-goal answer lists come back in input order, each
        containing exactly the answers ``self.ask(goal)`` would return —
        the *set* is guaranteed identical (gated by the E14
        differentials); the order *within* one goal's answers follows
        the batched statement's row emission, which SQLite does not
        promise matches the serial statement's.

        ``deadline`` budgets the whole batch (one shared scope; see
        :meth:`ask`).  A group whose batched statement fails for any
        backend reason — transient or permanent — degrades to the serial
        path, where each member goal gets the full per-ask retry and
        plan-recovery treatment.

        ``consistent=True`` asks for *certain* answers (see
        :meth:`ask_consistent`).  When every relation any batch member
        can reach is violation-free, certain answers coincide with plain
        answers and the batch executes through the ordinary set-oriented
        machinery — warm consistent shapes batch at full speed.  A store
        with violations serializes: each goal runs through
        :meth:`ask_consistent`, whose certainty condition is inherently
        per-goal (folding it into an ``IN (VALUES …)`` batch would be
        unsound).
        """
        parsed = [
            parse_goal(goal) if isinstance(goal, str) else goal for goal in goals
        ]
        if consistent:
            reachable: set[str] = set()
            for goal in parsed:
                reachable |= self._relations_of_goal(goal)
            self._merge_pending_for(reachable)
            if self.cqa_detector.dirty_relations(sorted(reachable)):
                with self.database.deadline(deadline):
                    return [
                        self.ask_consistent(goal, max_solutions)
                        for goal in parsed
                    ]
            self.cqa_stats.incr("clean_fast_paths", len(parsed))
        answers: list[Optional[list[dict[str, Value]]]] = [None] * len(parsed)
        groups: dict[tuple, list[int]] = {}
        serial: list[int] = []
        shapes: list[Optional[GoalShape]] = []
        for position, goal in enumerate(parsed):
            shape = goal_shape(goal) if self._plan_caching else None
            shapes.append(shape)
            if shape is None or not shape.constants:
                serial.append(position)
            else:
                groups.setdefault(shape.key, []).append(position)
        with self.database.deadline(deadline):
            for members in groups.values():
                try:
                    self._ask_group(
                        parsed, shapes, members, answers, max_solutions
                    )
                except (CouplingError, DeadlineExceeded):
                    raise
                except ExecutionError:
                    # Batch rung failed: hand every member to the serial
                    # path (answers set mid-group are recomputed — ask is
                    # idempotent and the serial result is authoritative).
                    self.database.resilience.incr("degraded_answers")
                    for position in members:
                        answers[position] = None
                    serial.extend(members)
            for position in serial:
                answers[position] = self.ask(parsed[position], max_solutions)
        return [a if a is not None else [] for a in answers]

    def batch_executor(self, share: bool = True):
        """A multiple-query optimizer sharing this session's plan cache.

        The returned :class:`~repro.coupling.multi_query.BatchExecutor`
        prepares each common-core widened scan once (stored in the plan
        cache under a pseudo shape, invalidated with the knowledge base
        generation like every compiled plan) and re-executes prepared
        statements on later batches.
        """
        from .multi_query import BatchExecutor

        return BatchExecutor(
            self.database,
            self.constraints,
            optimize=self.optimize,
            share=share,
            plans=self.plans if self._plan_caching else None,
            kb=self.kb,
        )

    def _batchable_plan(self, shape: GoalShape):
        """The shared fully-parameterized plan for a shape, if it has one.

        ``None`` means "not yet": the caller keeps warming the shape
        serially while ``attempted`` is false, and falls back to the
        serial path once the shape is known constant-sensitive,
        uncacheable, or anything but pure-external.
        """
        self.plans.sync(self.kb)
        entry = self.plans.entry_for(shape)
        if entry is None or entry.uncacheable or not entry.attempted:
            return None
        if entry.material:
            return None  # constant-sensitive: exact variants only
        plan = entry.variants.get(())
        if (
            plan is None
            or plan.kind != "external"
            or plan.internal_indices
            or plan.is_empty
            or not plan.open_params
        ):
            return None
        return plan

    def _ask_group(
        self,
        parsed: list[Term],
        shapes: list[Optional[GoalShape]],
        members: list[int],
        answers: list,
        max_solutions: Optional[int],
    ) -> None:
        """Answer one same-shape group, batching once the shape is warm.

        Two batch forms exist: flat warm shapes fold their constants into
        an ``IN (VALUES …)`` variant of the prepared statement, and warm
        *recursive* single-bound shapes fold their seeds into a
        batch-seeded ``WITH RECURSIVE`` statement (one fixpoint run for
        the whole group).  Everything else answers serially.
        """
        pending = list(members)
        plan = recursive = None
        while pending:
            if len(pending) > 1:
                plan = self._batchable_plan(shapes[pending[0]])
                if plan is not None:
                    break
                recursive = self._recursive_batch_closure(
                    shapes[pending[0]], parsed[pending[0]]
                )
                if recursive is not None:
                    break
            position = pending.pop(0)
            answers[position] = self.ask(parsed[position], max_solutions)
        if not pending:
            return
        group_shapes = [shapes[position] for position in pending]
        group_goals = [parsed[position] for position in pending]
        # One *group* span covers the whole batched execution — a span
        # per member would cost more than the batch itself (~6µs/goal);
        # the tracer expands the group back to per-goal records on read.
        with self.tracer.group(len(pending)) as gspan:
            if plan is not None:
                batched = self._execute_batch(
                    plan, group_shapes, group_goals, max_solutions
                )
                batch_kind = "external"
            else:
                batched = self._execute_recursive_batch(
                    recursive, group_shapes, group_goals
                )
                batch_kind = "recursive"
            if batched is not None and gspan is not None:
                gspan.shape_key = group_shapes[0].key
                gspan.phases["batch"] = time.perf_counter() - gspan.t0
                self.tracer.commit_group(
                    gspan,
                    group_goals,
                    [len(result) for result in batched],
                    batch_kind,
                )
        if batched is None:
            for position in pending:
                answers[position] = self.ask(parsed[position], max_solutions)
            return
        for position, result in zip(pending, batched):
            answers[position] = result

    def _recursive_batch_closure(self, shape: GoalShape, goal: Term):
        """``(closure, bound_side, variable_name)`` for a batchable
        recursive shape, else ``None``.

        Batchable means: a single binary view call with exactly one
        constant argument, whose shape already holds a warm plan of kind
        ``recursive``, whose view is linearly recursive, and which is
        *not* maintained (maintained views answer from their
        :class:`IncrementalClosure` on the serial path — PR 3 semantics).
        """
        if shape is None or len(shape.constants) != 1:
            return None
        goal_list = conjuncts(goal)
        if len(goal_list) != 1 or not isinstance(goal_list[0], Struct):
            return None
        call = goal_list[0]
        if len(call.args) != 2:
            return None
        low_arg, high_arg = call.args
        if isinstance(low_arg, Atom) and isinstance(high_arg, Variable):
            bound, variable = "low", high_arg
        elif isinstance(high_arg, Atom) and isinstance(low_arg, Variable):
            bound, variable = "high", low_arg
        else:
            return None
        self.plans.sync(self.kb)
        entry = self.plans.entry_for(shape)
        if entry is None or entry.uncacheable:
            return None
        plan = entry.variants.get(entry.variant_key(shape.constants))
        if plan is None or plan.kind != "recursive":
            return None
        indicator = call.indicator
        if self.materialize.has_view(indicator):
            return None
        if indicator not in self.plans.recursive_indicators(self.kb, self.schema):
            return None
        try:
            closure = self.closure_for(indicator[0])
            # Only batch what the CTE can answer; a view whose pushdown
            # preparation fails keeps the serial frontier path.  The
            # first preparation metaevaluates the edge view, which reads
            # the knowledge base: read-locked.
            with self.kb.lock.read():
                closure.cte_queries()
        except Exception:  # noqa: BLE001 - fall back to serial asks
            return None
        return closure, bound, variable.name

    def _execute_recursive_batch(
        self,
        recursive,
        shapes: Sequence[GoalShape],
        goals: Sequence[Term],
    ) -> Optional[list[list[dict[str, Value]]]]:
        """One batch-seeded ``WITH RECURSIVE`` run for a same-shape group.

        The group's seed constants fold into the statement's
        ``IN (VALUES …)`` membership; fetched ``(root, node)`` rows
        demultiplex by root back to per-goal answer lists identical to
        serial :meth:`ask` (which sorts closure pairs, so ordering
        matches too).  Returns ``None`` to fall back to serial asks.
        """
        closure, bound, variable_name = recursive
        seeds = [shape.constants[0] for shape in shapes]
        distinct: dict = dict.fromkeys(seeds)
        if len({str(seed) for seed in distinct}) != len(distinct):
            return None  # affinity-coercible seed collision: serial
        with self.kb.lock.read():
            self.plans.sync(self.kb)
            entry = self.plans.entry_for(shapes[0])
            if entry is None or entry.uncacheable:
                return None  # a concurrent write invalidated the plan
            try:
                # Interval batch probe when the labeling serves (seed
                # intervals matched through one IN (VALUES …) CTE), the
                # batch-seeded WITH RECURSIVE otherwise.  Under the read
                # lock: freshening the labeling must not race a writer.
                text = closure.batch_probe_text(bound, len(distinct))
            except Exception:  # noqa: BLE001 - no batch form at all
                return None
            rows = self.database.execute_prepared(text, list(distinct))
        demux: dict = {seed: set() for seed in distinct}
        for root, node in rows:
            bucket = demux.get(root)
            if bucket is None:
                return None  # affinity coerced a seed: answer serially
            bucket.add(node)
        self.plans.stats.incr("batched_asks", len(goals))
        self.plans.stats.incr("recursive_batches")
        return [
            [{variable_name: node} for node in sorted(demux[seed])]
            for seed in seeds
        ]

    def _execute_batch(
        self,
        plan: CompiledPlan,
        shapes: Sequence[GoalShape],
        goals: Sequence[Term],
        max_solutions: Optional[int],
    ) -> Optional[list[list[dict[str, Value]]]]:
        """One prepared execution for a whole same-shape group, demuxed.

        Returns ``None`` to make the caller fall back to serial asks —
        when the plan has no batchable SQL form, a pending segment merge
        needs the write lock, the plan went stale under a concurrent
        write between warm-up and execution, a ``max_solutions`` cap is
        in force (the serial path defines which prefix of the answers is
        returned), or a fetched row's anchor values fail to demultiplex
        (SQLite affinity matched a constant Python equality cannot).
        """
        if max_solutions is not None:
            return None
        # Per-goal valuebound replay: members whose constants violate a
        # declared domain are provably empty and never reach the batch.
        keys: list[Optional[tuple]] = []
        distinct: dict[tuple, None] = {}
        for shape in shapes:
            if plan.bind_is_empty(shape.constants, self.constraints):
                self.plans.stats.incr("bind_empties")
                keys.append(None)
                continue
            key = tuple(shape.constants[i] for i in plan.open_params)
            keys.append(key)
            distinct[key] = None
        live = [key for key in keys if key is not None]
        if not live:
            return [[] for _ in goals]
        if len(live) < 2:
            return None  # a lone live member gains nothing from batching
        # Two *distinct* Python keys that SQLite affinity would coerce to
        # one value (30000 vs '30000') would share every fetched row's
        # anchor tuple, silently starving one member; textual collision is
        # a safe over-approximation of the coercion rules, so such
        # batches answer serially.
        if len({tuple(str(v) for v in key) for key in distinct}) != len(distinct):
            return None
        text = plan.batch_statement(self.database, len(distinct))
        if text is None:
            return None
        constants_by_key: dict[tuple, tuple] = {}
        for shape, key in zip(shapes, keys):
            if key is not None and key not in constants_by_key:
                constants_by_key[key] = shape.constants
        with self.kb.lock.read():
            if self._pending_merge(plan.template):
                return None
            self.plans.sync(self.kb)
            first = self.plans.entry_for(shapes[0])
            if first is None or first.variants.get(()) is not plan:
                return None  # a concurrent write invalidated the plan
            rows = self.database.execute_prepared(
                text,
                plan.batch_bind_values(
                    [constants_by_key[key] for key in distinct]
                ),
            )
        demux: dict[tuple, list[tuple]] = {key: [] for key in distinct}
        width = len(plan.open_params)
        for row in rows:
            bucket = demux.get(row[-width:])
            if bucket is None:
                # SQL equality matched where Python equality does not
                # (column affinity coerced the constant, e.g. TEXT '30000'
                # against an INTEGER column): demultiplexing would drop
                # the row, so answer this batch serially instead.
                return None
            bucket.append(row)
        self.plans.stats.incr("batched_asks", len(goals))
        self.plans.stats.incr("batch_executions")
        # Every member shares the shape, so target columns and answer
        # variable names are identical across the group: resolve them once
        # (mirroring _rows_to_answers) instead of per goal.
        names = [t.name for t in plan.template.target_symbols()]
        wanted = {
            v.name
            for v in variables_of(goals[0])
            if not v.is_anonymous
        }
        columns = [
            (column, name)
            for column, name in enumerate(names)
            if name in wanted
        ]
        results: list[list[dict[str, Value]]] = []
        for key in keys:
            if key is None:
                results.append([])
                continue
            answers: list[dict[str, Value]] = []
            seen: set[tuple] = set()
            for row in demux[key]:
                answer_key = tuple(row[column] for column, _ in columns)
                if answer_key not in seen:
                    seen.add(answer_key)
                    answers.append(
                        {name: row[column] for column, name in columns}
                    )
            results.append(answers)
        return results

    def _ask_cold(
        self,
        goal: Term,
        goal_vars: Sequence[Variable],
        max_solutions: Optional[int],
    ) -> tuple[list[dict[str, Value]], dict]:
        """The full classify→compile→execute pipeline (plan-cache miss)."""
        if self._is_recursive(goal):
            return self._ask_recursive(goal), {"kind": "recursive"}

        mark = time.perf_counter()
        self.compile_phases.incr("cold_compilations")
        graph = (
            self.plans.graph(self.kb, self.schema) if self._plan_caching else None
        )
        try:
            plan = plan_goal(self.kb, self.schema, goal, graph=graph)
        except CouplingError:
            # A "mixed" goal interleaves database and internal knowledge in
            # one view — the paper's programs handle these themselves by
            # calling metaevaluate/4 inside the rule (the partner example),
            # so ordinary Prolog resolution is the correct evaluator.
            return (
                self._answers_from_engine(goal, goal_vars, max_solutions),
                {"kind": "engine"},
            )
        if plan.is_pure_internal:
            return (
                self._answers_from_engine(goal, goal_vars, max_solutions),
                {"kind": "engine"},
            )

        mark = self._phase("classify", mark)
        external_goal = conjoin(plan.external)
        fetch_targets = [
            v
            for v in variables_of(external_goal)
            if not v.is_anonymous and v in set(plan.interface_variables)
        ]
        kind = "external" if plan.is_pure_external else "mixed"
        artifacts: dict = {
            "kind": kind,
            "plan": plan,
            "fetch_targets": fetch_targets,
            "final": None,
        }
        predicate = self.metaevaluator.metaevaluate(
            external_goal, targets=fetch_targets
        )
        mark = self._phase("metaevaluate", mark)
        options = SimplifyOptions() if self.optimize else SimplifyOptions.none()
        result = simplify(predicate, self.constraints, options)
        if result.is_empty:
            self._phase("optimize", mark)
            return [], artifacts
        final = self._cost_ordered(result.predicate)
        mark = self._phase("optimize", mark)
        artifacts["final"] = final
        rows = self.cache.lookup(final)
        if rows is None:
            self._merge_internal_segments(final)
            mark = time.perf_counter()
            sql = translate(final, distinct=True)
            mark = self._phase("translate", mark)
            if sql.is_empty:
                # A false ground comparison survived (simplification off):
                # provably empty, never sent to the DBMS.
                rows = []
            else:
                sql_text = self.database.prepare(sql)
                self._phase("print", mark)
                rows = self.database.execute_prepared(sql_text)
                artifacts["sql_text"] = sql_text
            self.cache.store(
                final, rows, self._result_dependencies(final, external_goal)
            )

        if plan.is_pure_external:
            answers = self._rows_to_answers(final, fetch_targets, rows, goal_vars)
            if max_solutions is not None:
                return answers[:max_solutions], artifacts
            return answers, artifacts

        # Mixed: assert the external answers under a fresh interface
        # predicate, then let Prolog combine them with internal knowledge.
        answers = self._combine_with_internal(
            final, fetch_targets, rows, plan.internal, goal_vars, max_solutions
        )
        return answers, artifacts

    def _combine_with_internal(
        self,
        final: DbclPredicate,
        fetch_targets: Sequence[Variable],
        rows: Sequence[tuple],
        internal_goals: Sequence[Term],
        goal_vars: Sequence[Variable],
        max_solutions: Optional[int],
    ) -> list[dict[str, Value]]:
        """Mixed-plan tail: stage fetched answers, resolve the remainder."""
        interface_name = self._interface_name(final)
        interface_goal = Struct(interface_name, tuple(fetch_targets))
        # Interface facts are derived bookkeeping, not program clauses:
        # they must not invalidate compiled plans (see KnowledgeBase
        # generation semantics).
        with self.kb.preserve_generation():
            self.kb.retract_all((interface_name, len(fetch_targets)))
            assert_answers(self.kb, interface_goal, final, fetch_targets, rows)
        rewritten = conjoin([interface_goal] + list(internal_goals))
        return self._answers_from_engine(rewritten, goal_vars, max_solutions)

    def _result_dependencies(
        self, predicate: DbclPredicate, goal: Optional[Term] = None
    ) -> frozenset:
        """What a cached result for ``predicate`` depends on, transitively.

        Row tags cover the base relations the *compiled* query reads, but
        a goal over views depends on the intermediate view definitions
        too: new clauses (or facts) for ``works_dir_for`` must drop a
        cached ``same_manager`` result even though the compiled tableau
        only mentions ``empl``/``dept``.  The view call graph supplies the
        names on the path plus any indirect base relations simplification
        may have reasoned away.
        """
        import networkx as nx

        relations = {row.tag for row in predicate.rows}
        if goal is None:
            return frozenset(relations)
        graph = (
            self.plans.graph(self.kb, self.schema)
            if self._plan_caching
            else view_call_graph(self.kb, self.schema)
        )
        for term in conjuncts(goal):
            try:
                indicator = goal_indicator(term)
            except ValueError:
                continue
            reachable = {indicator}
            if graph.has_node(indicator):
                reachable |= set(nx.descendants(graph, indicator))
            for name, arity in reachable:
                if (
                    self.schema.has_relation(name)
                    and self.schema.relation(name).arity == arity
                ) or self.kb.has_procedure((name, arity)):
                    relations.add(name)
        return frozenset(relations)

    @staticmethod
    def _interface_name(predicate: DbclPredicate) -> str:
        """A stable, collision-resistant name for an interface predicate.

        Derived from a digest of the canonical key so it is identical
        across runs (no dependence on Python hash randomization) and
        distinct for structurally different predicates.
        """
        digest = hashlib.blake2b(
            repr(predicate.canonical_key()).encode("utf-8"), digest_size=6
        ).hexdigest()
        return f"$ext_{digest}"

    # -- plan compilation --------------------------------------------------------------

    def _try_compile(self, shape: GoalShape, goal: Term, artifacts: dict) -> None:
        """Compile and store a reusable plan for the goal's shape.

        Never raises: a shape the machinery cannot compile (disjunctive
        views, unexpected structure) is marked uncacheable so the session
        does not retry on every ask.
        """
        # retain, not sync: a segment merge during the cold run advanced
        # the generation, but this shape's own cache slot (and its lazy
        # `attempted` progress) stays valid across its own side effects.
        self.plans.retain(shape, self.kb)
        try:
            self._compile_plan(shape, goal, artifacts)
        except Exception:
            self.plans.mark_uncacheable(shape)

    @staticmethod
    def _params_in_conjuncts(
        conjunct_list: Sequence[Term], selected: Sequence[int]
    ) -> frozenset:
        """Parameter indices occupied by the selected conjuncts.

        Mirrors :func:`goal_shape`'s traversal: constants are numbered
        across the whole conjunction; only those inside the selected
        conjunct positions are returned.
        """
        wanted = set(selected)
        found: set[int] = set()
        position = 0
        for index, conjunct in enumerate(conjunct_list):
            if not isinstance(conjunct, Struct):
                continue
            for argument in conjunct.args:
                if isinstance(argument, Variable):
                    continue
                if index in wanted:
                    found.add(position)
                position += 1
        return frozenset(found)

    def _compile_strategy(
        self, shape: GoalShape, relevant: frozenset
    ) -> Union[None, str, frozenset]:
        """How to build this shape's plan, given its cache history.

        * ``None`` — first encounter: store the cold compilation as a
          cheap exact-constant plan; defer the marker analysis until the
          shape proves it repeats (one-off goals never pay for it);
        * ``"exact"`` — parameterization already failed for this shape:
          add another exact variant without re-running the analysis;
        * a frozenset — run the marker analysis, seeded with the material
          set discovered previously (skips the discovery iterations when
          a partial-material shape compiles a new variant).
        """
        entry = self.plans.entry_for(shape)
        if entry is None or entry.uncacheable:
            return None
        if not entry.attempted:
            return frozenset()
        if entry.material == tuple(sorted(relevant)):
            return "exact"
        return frozenset(entry.material) & relevant

    def _exact_plan(
        self,
        kind: str,
        final: Optional[DbclPredicate],
        sql_text: Optional[str],
        fetch_targets: tuple[Variable, ...],
        internal_indices: tuple[int, ...],
        original: Optional[DbclPredicate] = None,
    ) -> CompiledPlan:
        """A plan replaying one cold compilation for its exact constants."""
        if final is None:
            # An empty fetch reports its pre-simplification predicate as
            # the trace; the ask path just answers [].
            return CompiledPlan(
                kind=kind,
                is_empty=True,
                template=original,
                fetch_targets=fetch_targets,
                internal_indices=internal_indices,
            )
        if sql_text is None:
            sql = translate(final, distinct=True)
            if sql.is_empty:
                # A false ground comparison survived into translation
                # (simplification off): replay the empty answer.
                return CompiledPlan(
                    kind=kind,
                    is_empty=True,
                    template=final,
                    fetch_targets=fetch_targets,
                    internal_indices=internal_indices,
                )
            sql_text = self.database.prepare(sql)
        return CompiledPlan(
            kind=kind,
            template=final,
            sql_text=sql_text,
            fetch_targets=fetch_targets,
            internal_indices=internal_indices,
        )

    def _compile_plan(self, shape: GoalShape, goal: Term, artifacts: dict) -> None:
        kind = artifacts["kind"]
        if kind in ("recursive", "engine"):
            self.plans.store(shape, (), CompiledPlan(kind=kind))
            return

        split: ExecutionPlan = artifacts["plan"]
        fetch_targets = tuple(artifacts["fetch_targets"])
        conjunct_list = conjuncts(goal)
        index_of = {id(term): i for i, term in enumerate(conjunct_list)}
        external_indices = [index_of[id(term)] for term in split.external]
        internal_indices = tuple(index_of[id(term)] for term in split.internal)
        # Constants inside internal conjuncts never reach the external
        # compilation, and the warm path re-reads internal conjuncts from
        # the live goal — so they are neither parameterized nor part of
        # the variant key, and rotating them reuses one plan.
        relevant = self._params_in_conjuncts(conjunct_list, external_indices)

        def store_exact(attempted: bool) -> None:
            plan = self._exact_plan(
                kind,
                artifacts["final"],
                artifacts.get("sql_text"),
                fetch_targets,
                internal_indices,
            )
            self.plans.store(shape, relevant, plan, attempted=attempted)

        strategy = self._compile_strategy(shape, relevant)
        if strategy is None:
            store_exact(attempted=False)
            return
        if strategy == "exact":
            store_exact(attempted=True)
            return

        options = SimplifyOptions() if self.optimize else SimplifyOptions.none()

        def build_external(marker_conjuncts: Sequence[Term]) -> Term:
            return conjoin([marker_conjuncts[i] for i in external_indices])

        def compile_external(external_m: Term) -> DbclPredicate:
            return self.metaevaluator.metaevaluate(
                external_m, targets=list(fetch_targets)
            )

        material, compiled = self._parameterize(
            shape,
            goal,
            build_external,
            compile_external,
            options,
            kind=kind,
            fetch_targets=fetch_targets,
            internal_indices=internal_indices,
            external_indicators=[
                goal_indicator(term)
                for term in split.external
                if isinstance(term, Struct)
            ],
            relevant=relevant,
            initial_material=strategy,
        )
        if compiled is None:
            # Constant-sensitive on every relevant position: cache the
            # cold compilation itself, keyed by the exact constants.
            store_exact(attempted=True)
            return
        self.plans.store(shape, material, compiled)

    def _compile_fetch_plan(
        self,
        shape: GoalShape,
        goal: Term,
        targets: Sequence[Variable],
        name: str,
        options: SimplifyOptions,
        final: Optional[DbclPredicate],
        original: Optional[DbclPredicate] = None,
        sql_text: Optional[str] = None,
    ) -> None:
        """Cache the compiled rule branch of a metaevaluate/4 fetch."""
        # retain, not sync: the assert_answers just above advanced the
        # generation, but this shape's own cache slot (and its lazy
        # `attempted` progress) stays valid across its own answer facts.
        self.plans.retain(shape, self.kb)
        try:
            fetch_targets = tuple(targets)
            relevant = frozenset(range(shape.parameter_count))

            def store_exact(attempted: bool) -> None:
                plan = self._exact_plan(
                    "fetch", final, sql_text, fetch_targets, (), original
                )
                self.plans.store(shape, relevant, plan, attempted=attempted)

            strategy = self._compile_strategy(shape, relevant)
            if strategy is None:
                store_exact(attempted=False)
                return
            if strategy == "exact":
                store_exact(attempted=True)
                return

            def compile_view(view_goal: Term) -> DbclPredicate:
                branches = [
                    branch
                    for branch in self.metaevaluator.collect_branches(view_goal)
                    if branch.dbcalls
                ]
                if len(branches) != 1:
                    raise CouplingError("view shape is not a single rule branch")
                return self.metaevaluator.branch_to_dbcl(
                    branches[0], name, list(fetch_targets)
                )

            indicators = [
                goal_indicator(term)
                for term in conjuncts(goal)
                if isinstance(term, Struct)
            ]
            material, compiled = self._parameterize(
                shape,
                goal,
                lambda marker_conjuncts: conjoin(list(marker_conjuncts)),
                compile_view,
                options,
                kind="fetch",
                fetch_targets=fetch_targets,
                internal_indices=(),
                external_indicators=indicators,
                relevant=relevant,
                initial_material=strategy,
                ignore_facts=True,
            )
            if compiled is None:
                store_exact(attempted=True)
                return
            self.plans.store(shape, material, compiled)
        except Exception:
            self.plans.mark_uncacheable(shape)

    def _parameterize(
        self,
        shape: GoalShape,
        goal: Term,
        build_external,
        compile_external,
        options: SimplifyOptions,
        kind: str,
        fetch_targets: tuple[Variable, ...],
        internal_indices: tuple[int, ...],
        external_indicators: Sequence[tuple[str, int]],
        relevant: Optional[frozenset] = None,
        initial_material: frozenset = frozenset(),
        ignore_facts: bool = False,
    ) -> tuple[frozenset, Optional[CompiledPlan]]:
        """Find the maximal parameterization of a shape, compile it.

        Starts with every constant abstracted to a marker and grows the
        *material* set (constants the compilation must see concretely)
        until the marker compilation is provably constant-insensitive:

        * Algorithm 2 never consulted a marker's *value* — every ordering
          decision about constants funnels through ``compare_values``,
          which a :func:`watch_marker_consultation` witness instruments;
          equality-only reasoning treats markers as distinct constants,
          which at worst under-simplifies (answer-preserving) or empties
          the marker plan (detected below);
        * the marker plan is non-empty (an empty marker plan means a
          constant interacted with the constraints);
        * every marker survives into the simplified predicate (a vanished
          marker means its restriction was reasoned away).

        Returns ``(material, plan)``; ``plan`` is None when every position
        is material — the caller falls back to exact-constant caching.
        Shapes whose reachable clauses pattern-match on constants in their
        heads cannot be parameterized at all (a marker would fail a head
        unification a concrete constant might pass).
        """
        from ..dbcl.symbols import watch_marker_consultation
        from ..errors import TranslationError

        all_params = (
            relevant
            if relevant is not None
            else frozenset(range(shape.parameter_count))
        )
        irrelevant = frozenset(range(shape.parameter_count)) - all_params
        if self._constant_discriminating(
            external_indicators, ignore_facts=ignore_facts
        ):
            return all_params, None

        material: frozenset = frozenset(initial_material) & all_params
        for _attempt in range(4):
            if all_params and material == all_params:
                return all_params, None
            # Irrelevant (internal-conjunct) constants keep their concrete
            # values: they never reach the compiled predicate anyway.
            marker_goal = goal_with_markers(goal, material | irrelevant)
            marker_conjuncts = conjuncts(marker_goal)
            external_m = build_external(marker_conjuncts)
            predicate_m = compile_external(external_m)
            param_cells = marker_columns(predicate_m)
            open_params = all_params - material
            with watch_marker_consultation() as witness:
                result_m = simplify(predicate_m, self.constraints, options)
            if result_m.is_empty:
                return all_params, None
            if witness.consulted:
                # A marker's value was reasoned about.  Attribute it to the
                # markers visible in comparisons (the only place ordering
                # reasoning reaches) and retry with those made concrete;
                # when the culprit is not attributable, give up entirely.
                culprits = (
                    frozenset(markers_in_comparisons(predicate_m))
                    | frozenset(markers_in_comparisons(result_m.predicate))
                ) & open_params
                if culprits:
                    material |= culprits
                    continue
                return all_params, None
            final_m = result_m.predicate
            vanished = (
                open_params
                - frozenset(markers_in_rows(final_m))
                - frozenset(markers_in_comparisons(final_m))
            )
            if vanished:
                material |= vanished
                continue
            if options != SimplifyOptions.none():
                # The same statistics-driven row order a cold compile
                # applies (cardinality estimates never consult a marker's
                # concrete value, so parameterization is unaffected).
                final_m = self._cost_ordered(final_m)
            parameter_map = {
                str(marker_for(index)): index for index in open_params
            }
            try:
                with watch_marker_consultation() as translate_witness:
                    sql = translate(
                        final_m, distinct=True, parameters=parameter_map
                    )
                if translate_witness.consulted:
                    return all_params, None
            except TranslationError:
                return all_params, None
            if sql.is_empty:
                # A marker-free ground comparison is false for every
                # constant choice; let the exact path replay the empty.
                return all_params, None
            plan = CompiledPlan(
                kind=kind,
                template=final_m,
                sql_text=self.database.prepare(sql),
                sql=sql,
                bind_order=sql.parameter_order(),
                open_params=tuple(sorted(open_params)),
                param_columns={
                    index: param_cells.get(index, ()) for index in open_params
                },
                fetch_targets=fetch_targets,
                internal_indices=internal_indices,
            )
            return material, plan
        return all_params, None

    def _constant_discriminating(
        self,
        indicators: Sequence[tuple[str, int]],
        ignore_facts: bool = False,
    ) -> bool:
        """Do reachable clauses pattern-match constants in their heads?

        Unfolding a goal whose argument is a parameter marker must take
        exactly the branches a concrete constant would; a clause head with
        a constant argument breaks that (the marker fails the unification
        some constants would pass), so such shapes stay unparameterized.

        ``ignore_facts`` skips bodyless clauses: the fetch path discards
        branches without database calls, so a fact matching one constant
        and not another never changes the compiled rule branch.
        """
        import networkx as nx

        graph = self.plans.graph(self.kb, self.schema)
        reachable: set[tuple[str, int]] = set()
        for indicator in indicators:
            reachable.add(indicator)
            if graph.has_node(indicator):
                reachable |= set(nx.descendants(graph, indicator))
        for indicator in reachable:
            for clause in self.kb.all_clauses(indicator):
                if ignore_facts and clause.is_fact:
                    continue
                head = clause.head
                if isinstance(head, Struct) and any(
                    not isinstance(argument, Variable) for argument in head.args
                ):
                    return True
        return False

    # -- plan execution ----------------------------------------------------------------

    def _execute_plan(
        self,
        plan: CompiledPlan,
        shape: GoalShape,
        goal: Term,
        goal_vars: Sequence[Variable],
        max_solutions: Optional[int],
    ) -> list[dict[str, Value]]:
        """Answer a goal through its cached plan (the warm path)."""
        if plan.kind == "recursive":
            return self._ask_recursive(goal)
        if plan.kind == "engine":
            return self._answers_from_engine(goal, goal_vars, max_solutions)
        if plan.is_empty:
            return []
        bound = plan.bind(shape.constants, self.constraints)
        if bound is None:
            self.plans.stats.incr("bind_empties")
            return []
        rows = self._rows_for_plan(plan, shape, bound, goal)
        # A segment merge inside _rows_for_plan retracts relation facts and
        # advances the KB generation; keep this shape's plan alive.
        self.plans.retain(shape, self.kb)
        if plan.kind == "external":
            answers = self._rows_to_answers(
                bound, plan.fetch_targets, rows, goal_vars
            )
            if max_solutions is not None:
                return answers[:max_solutions]
            return answers
        # The stored fetch targets carry compile-time ordinals; resolve
        # them to this goal's variables by name (the shape key guarantees
        # names match and are unambiguous) so the interface predicate
        # joins with the internal conjuncts.
        by_name = {v.name: v for v in variables_of(goal)}
        current_targets = [by_name[t.name] for t in plan.fetch_targets]
        conjunct_list = conjuncts(goal)
        internal_goals = [conjunct_list[i] for i in plan.internal_indices]
        return self._combine_with_internal(
            bound, current_targets, rows, internal_goals, goal_vars,
            max_solutions,
        )

    def _execute_fetch_plan(
        self,
        plan: CompiledPlan,
        shape: GoalShape,
        goal: Term,
        targets: Sequence[Variable],
    ) -> tuple[Optional[DbclPredicate], list[tuple]]:
        """The warm half of ``_fetch_view``."""
        if plan.is_empty:
            # The cold compile proved this exact-constant shape empty; it
            # stored the pre-simplification predicate for the trace.
            self.plans.stats.incr("bind_empties")
            return plan.template, []
        bound = plan.bind(shape.constants, self.constraints)
        if bound is None:
            self.plans.stats.incr("bind_empties")
            # Match the cold path's contract: a provably-empty fetch still
            # reports the (unsimplified) predicate it proved empty.  Re-run
            # the cold front half for the trace (no rows will be fetched).
            name = self.metaevaluator._default_name(goal)
            branches = [
                b
                for b in self.metaevaluator.collect_branches(goal)
                if b.dbcalls
            ]
            if not branches:
                return None, []
            predicate = self.metaevaluator.branch_to_dbcl(
                branches[0], name, list(targets)
            )
            return predicate, []
        rows = self._rows_for_plan(plan, shape, bound, goal)
        assert_answers(self.kb, goal, bound, targets, rows)
        # New answer facts (or a segment merge above) advanced the KB
        # generation; keep this shape's plan alive across the bump, as the
        # cold path does by recompiling after its own assert.
        self.plans.retain(shape, self.kb)
        return bound, rows

    def _rows_for_plan(
        self,
        plan: CompiledPlan,
        shape: GoalShape,
        bound: DbclPredicate,
        goal: Optional[Term] = None,
    ) -> list[tuple]:
        """Result rows for a bound plan: result cache, else prepared SQL."""
        rows = self.cache.lookup(bound)
        if rows is None:
            self._merge_internal_segments(bound)
            rows = self.database.execute_prepared(
                plan.sql_text, plan.bind_values(shape.constants)
            )
            self.cache.store(bound, rows, self._result_dependencies(bound, goal))
        return rows

    def _answers_from_engine(
        self,
        goal: Term,
        goal_vars: Sequence[Variable],
        max_solutions: Optional[int],
    ) -> list[dict[str, Value]]:
        def lenient(term: Term) -> Value:
            # Constants convert to plain values; anything else (an unbound
            # variable, a structured term such as a bound DBCL predicate)
            # is rendered as text so answers stay JSON-friendly.
            try:
                return term_to_value(term)
            except CouplingError:
                if isinstance(term, Variable):
                    return None
                from ..prolog.writer import term_to_string

                return term_to_string(term)

        answers = []
        wanted = set(goal_vars)
        for binding in self.engine.solve(goal, max_solutions=max_solutions):
            answers.append(
                {
                    variable.name: lenient(term)
                    for variable, term in binding.items()
                    if variable in wanted
                }
            )
        return answers

    def _rows_to_answers(
        self,
        predicate: DbclPredicate,
        targets: Sequence[Variable],
        rows: Sequence[tuple],
        goal_vars: Sequence[Variable],
    ) -> list[dict[str, Value]]:
        names = [t.name for t in predicate.target_symbols()]
        wanted = {v.name for v in goal_vars}
        answers = []
        seen: set[tuple] = set()
        for row in rows:
            answer = {
                name: value for name, value in zip(names, row) if name in wanted
            }
            key = tuple(sorted(answer.items()))
            if key not in seen:
                seen.add(key)
                answers.append(answer)
        return answers

    # -- recursion -----------------------------------------------------------------------

    def _is_recursive(self, goal: Term) -> bool:
        if self._plan_caching:
            return is_recursive_goal(
                self.kb,
                self.schema,
                goal,
                graph=self.plans.graph(self.kb, self.schema),
                recursive=self.plans.recursive_indicators(self.kb, self.schema),
            )
        return is_recursive_goal(self.kb, self.schema, goal)

    def closure_for(self, view_name: str) -> TransitiveClosure:
        """The (cached) transitive-closure executor for a recursive view."""
        indicator = (view_name, 2)
        with self._closures_lock:
            executor = self._closures.get(indicator)
            if executor is None:
                executor = TransitiveClosure(
                    self.kb,
                    self.schema,
                    self.constraints,
                    self.database,
                    indicator,
                    optimize=self.optimize,
                )
                self._closures[indicator] = executor
            return executor

    def _ask_recursive(self, goal: Term) -> list[dict[str, Value]]:
        goals = conjuncts(goal)
        if len(goals) != 1 or not isinstance(goals[0], Struct):
            raise CouplingError(
                "recursive goals must be a single view call; combine "
                "results in Prolog afterwards"
            )
        call = goals[0]
        indicator = call.indicator
        recursive = (
            self.plans.recursive_indicators(self.kb, self.schema)
            if self._plan_caching
            else recursive_indicators(self.kb, self.schema)
        )
        if indicator not in recursive:
            raise CouplingError(
                f"goal reaches recursion through {indicator}; call the "
                "recursive view directly"
            )
        low_arg, high_arg = call.args
        low = low_arg.name if isinstance(low_arg, Atom) else None
        high = high_arg.name if isinstance(high_arg, Atom) else None
        # Cost-based strategy choice: CTE pushdown for non-trivial edge
        # views, the prepared frontier loop below the statistics
        # threshold.  (Maintained views answered earlier, from their
        # IncrementalClosure, never reach this point.)
        closure = self.closure_for(indicator[0])
        try:
            try:
                run = closure.solve(low=low, high=high, strategy="plan")
            except (CouplingError, DeadlineExceeded):
                raise  # semantic errors and expired budgets are not rungs
            except Exception:  # noqa: BLE001 - any execution failure degrades
                run = self._ask_recursive_degraded(closure, low, high)
        finally:
            # The decision was made even when execution degraded or
            # failed — record it either way (observability satellite).
            if closure.last_plan is not None:
                self.recursion_plans.note(closure.last_plan)
                span = self.tracer.current_span()
                if span is not None:
                    span.note_recursion(
                        closure.last_plan, closure.interval_stats()
                    )
        answers = []
        for pair_low, pair_high in sorted(run.pairs):
            answer: dict[str, Value] = {}
            if isinstance(low_arg, Variable):
                answer[low_arg.name] = pair_low
            if isinstance(high_arg, Variable):
                answer[high_arg.name] = pair_high
            answers.append(answer)
        return answers

    def _ask_recursive_degraded(
        self, closure: TransitiveClosure, low: Optional[str], high: Optional[str]
    ) -> RecursionRun:
        """Step down the recursion ladder when the planned strategy fails.

        When the failed plan was the interval probe, the first rung down
        is the CTE pushdown (stale or failing labels must not cost the
        whole pushdown tier); then the prepared frontier loop on the
        bound side (``auto``); finally one flat edge fetch with the
        fixpoint in Python (``memory``) — the slowest strategy, but the
        one with the fewest backend dependencies.  Answers from any rung
        are identical (the E7 equivalence the tests pin); only the cost
        differs, which is why a stepped-down answer counts as
        *degraded*, not wrong.
        """
        rungs = ["auto", "memory"]
        plan = closure.last_plan
        if plan is not None and plan.strategy == "interval":
            rungs.insert(0, "cte")
        run = None
        for position, rung in enumerate(rungs):
            try:
                run = closure.solve(low=low, high=high, strategy=rung)
                break
            except (CouplingError, DeadlineExceeded):
                raise
            except Exception:  # noqa: BLE001 - try the next rung
                if position == len(rungs) - 1:
                    raise
        self.database.resilience.incr("degraded_answers")
        return run

    def solve_recursive(
        self,
        view_name: str,
        low: Optional[str] = None,
        high: Optional[str] = None,
        strategy: str = "auto",
        max_levels: int = 64,
    ) -> RecursionRun:
        """Direct access to the recursion strategies (benchmarks use this)."""
        # The setrel loop swaps a shared intermediate relation per level;
        # serialize against mutations and other closure runs.
        with self.kb.lock.write():
            closure = self.closure_for(view_name)
            run = closure.solve(
                low=low, high=high, strategy=strategy, max_levels=max_levels
            )
            if strategy == "plan" and closure.last_plan is not None:
                self.recursion_plans.note(closure.last_plan)
            return run

    def heal_materialized(self) -> int:
        """Rebuild quarantined materialized views now, not lazily.

        Quarantined views normally heal at the next write-side
        opportunity (any insert/delete touching their relations, or a
        write-path ask that needs them); this forces the attempt
        immediately.  Returns how many views remain quarantined — zero
        means fully healed.  Write-locked: healing refreshes views
        against the current visible union.
        """
        with self.kb.lock.write():
            return self.materialize.heal_all()

    # -- extensions (paper section 7) ------------------------------------------------------

    def ask_disjunctive(self, goal: Union[str, Term]) -> list[dict[str, Value]]:
        """Answer a goal over a disjunctive view via per-conjunct UNION."""
        from ..extensions.disjunction import translate_disjunctive

        if isinstance(goal, str):
            goal = parse_goal(goal)
        targets = [v for v in variables_of(goal) if not v.is_anonymous]
        options = SimplifyOptions() if self.optimize else SimplifyOptions.none()
        with self.kb.lock.read():
            translation = translate_disjunctive(
                self.metaevaluator, goal, self.constraints, targets=targets,
                options=options,
            )
            rows = self.database.execute(translation.union)
        live = [p for p in translation.simplified if p is not None]
        if not live:
            return []
        names = [t.name for t in live[0].target_symbols()]
        seen: set[tuple] = set()
        answers = []
        for row in rows:
            if row not in seen:
                seen.add(row)
                answers.append(dict(zip(names, row)))
        return answers

    def ask_with_negation(self, goal: Union[str, Term]) -> list[dict[str, Value]]:
        """Answer ``positive, not(view(...))`` via a NOT IN complement."""
        from ..extensions.negation import translate_with_negation

        if isinstance(goal, str):
            goal = parse_goal(goal)
        targets = [v for v in variables_of(goal) if not v.is_anonymous]
        options = SimplifyOptions() if self.optimize else SimplifyOptions.none()
        with self.kb.lock.read():
            translation = translate_with_negation(
                self.metaevaluator, goal, self.constraints, targets=targets,
                options=options,
            )
            rows = self.database.execute(translation.query)
        names = [item.label or item.column.attribute for item in translation.query.select]
        # Targets were projected in goal-variable order by the translator.
        target_names = [
            t.name
            for t in translation.positive.target_symbols()
            if t.name in {v.name for v in targets}
        ]
        answers = []
        seen: set[tuple] = set()
        for row in rows:
            if row not in seen:
                seen.add(row)
                answers.append(dict(zip(target_names, row)))
        return answers

    def ask_stepwise(self, goal: Union[str, Term]):
        """Tuple-substitution evaluation for mixed conjunctions."""
        from ..extensions.stepwise import StepwiseEvaluator

        options = SimplifyOptions() if self.optimize else SimplifyOptions.none()
        evaluator = StepwiseEvaluator(
            self.metaevaluator,
            self.engine,
            self.database,
            self.constraints,
            options=options,
        )
        # Tuple-substitution resolves through the engine (which programs
        # may mutate mid-proof): write side.
        with self.kb.lock.write():
            return evaluator.evaluate(goal)

    # -- inspection ------------------------------------------------------------------------

    def stats(self) -> dict:
        """One snapshot of every performance-relevant counter.

        Benchmarks, CI gates, and docs read this instead of poking at the
        knowledge base, plan cache, result cache, backend, and
        maintenance manager separately.  Each component contributes an
        *atomic* snapshot taken under its own lock, so no counter group
        is ever torn mid-update by a concurrent serving thread.
        """
        plan_stats = self.plans.stats.snapshot()
        cache_stats = self.cache.stats.snapshot()
        db_stats = self.database.stats.snapshot()
        phase_stats = self.compile_phases.snapshot()
        resilience = self.database.resilience.snapshot()
        resilience["breakers"] = self.database.breaker_states()
        observe = self.tracer.stats_snapshot()
        observe["hit_rates"] = {
            "plan_cache": _hit_rate(plan_stats["hits"], plan_stats["misses"]),
            "result_cache": _hit_rate(
                cache_stats["hits"], cache_stats["misses"]
            ),
        }
        return {
            "kb": {
                "generation": self.kb.generation,
                "clauses": len(self.kb),
            },
            "plan_cache": {"entries": len(self.plans), **plan_stats},
            "result_cache": {"entries": len(self.cache), **cache_stats},
            "database": db_stats,
            "compile_phases": phase_stats,
            "recursion_plans": self.recursion_plans.snapshot(),
            "materialize": self.materialize.stats_dict(),
            "resilience": resilience,
            "observe": observe,
            "cqa": self.cqa_stats.snapshot(),
        }

    def traces(self) -> list:
        """The resident trace spans as JSON-serializable dicts.

        One record per traced ``ask``/``ask_many`` goal (batched groups
        expand to their members), oldest resident first; at most the
        ring's ``trace_ring`` most recent goals are resident.
        """
        return self.tracer.traces()

    def slow_queries(self) -> list:
        """Full-detail records for asks over the slow-query threshold.

        Each record carries everything :meth:`traces` has plus the
        backend's ``EXPLAIN QUERY PLAN`` for the span's last statement,
        captured on demand when the threshold triggered.
        """
        return self.tracer.slow_queries()

    def on_span(self, callback) -> None:
        """Stream completed span dicts to an external sink (opt-in)."""
        self.tracer.on_span(callback)

    def export_trace(self, path) -> int:
        """Write resident traces plus observe metrics to ``path`` (JSON).

        Returns the number of trace records written.
        """
        return self.tracer.export(path, stats=self.stats()["observe"])

    def explain(self, goal: Union[str, Term]) -> TranslationTrace:
        """The full translation trace for an external goal (no execution)."""
        if isinstance(goal, str):
            goal = parse_goal(goal)
        targets = [v for v in variables_of(goal) if not v.is_anonymous]
        predicate = self.metaevaluator.metaevaluate(goal, targets=targets)
        options = SimplifyOptions() if self.optimize else SimplifyOptions.none()
        result = simplify(predicate, self.constraints, options)
        if result.is_empty:
            from ..sql.ast import empty_query

            sql = empty_query()
        else:
            sql = translate(result.predicate, distinct=True)
        return TranslationTrace(
            goal=goal, dbcl=predicate, simplification=result, sql=sql
        )

    def close(self) -> None:
        self.database.close()

    def __enter__(self) -> "PrologDbSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
