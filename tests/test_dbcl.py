"""Unit tests for the DBCL intermediate language."""

import pytest

from repro.dbcl import (
    STAR,
    Comparison,
    ConstSymbol,
    DbclPredicate,
    RelRow,
    TableauBuilder,
    TargetSymbol,
    VarSymbol,
    contains,
    equivalent,
    find_homomorphism,
    format_dbcl,
    is_variable_symbol,
    parse_dbcl,
    parse_symbol,
)
from repro.errors import DbclError, DbclSyntaxError
from repro.schema import empdep_schema


@pytest.fixture
def schema():
    return empdep_schema()


def works_dir_for_predicate(schema, salary_cap=40000):
    """The DBCL predicate of paper Example 3-3 (works_dir_for + query)."""
    b = TableauBuilder(schema, "works_dir_for")
    t_x = b.target("X")
    b.row("empl", eno=b.var("Eno", 1), nam=t_x, sal=b.var("Sal", 1), dno=b.var("D"))
    b.row("dept", dno=b.var("D"), fct=b.var("Fct", 2), mgr=b.var("M"))
    b.row("empl", eno=b.var("M"), nam="smiley", sal=b.var("Sal", 3), dno=b.var("Dno", 3))
    b.row("empl", eno=b.var("Eno", 4), nam=t_x, sal=b.var("S"), dno=b.var("Dno", 4))
    b.less(b.var("S"), salary_cap)
    return b.build()


class TestSymbols:
    def test_rendering(self):
        assert str(STAR) == "*"
        assert str(TargetSymbol("X")) == "t_X"
        assert str(VarSymbol("Eno", 1)) == "v_Eno1"
        assert str(VarSymbol("D")) == "v_D"
        assert str(ConstSymbol("smiley")) == "smiley"
        assert str(ConstSymbol(40000)) == "40000"

    def test_parse_symbol_roundtrip(self):
        for symbol in [
            STAR,
            TargetSymbol("X"),
            VarSymbol("Eno", 1),
            VarSymbol("D"),
            ConstSymbol("smiley"),
            ConstSymbol(40000),
            ConstSymbol(2.5),
        ]:
            assert parse_symbol(str(symbol)) == symbol

    def test_parse_symbol_classification(self):
        assert parse_symbol("*") == STAR
        assert parse_symbol("t_Nam") == TargetSymbol("Nam")
        assert parse_symbol("v_Sal12") == VarSymbol("Sal", 12)
        assert parse_symbol("jones") == ConstSymbol("jones")
        assert parse_symbol("123") == ConstSymbol(123)

    def test_is_variable_symbol(self):
        assert is_variable_symbol(TargetSymbol("X"))
        assert is_variable_symbol(VarSymbol("D"))
        assert not is_variable_symbol(ConstSymbol("a"))
        assert not is_variable_symbol(STAR)

    def test_invalid_symbols(self):
        with pytest.raises(DbclError):
            TargetSymbol("")
        with pytest.raises(DbclError):
            VarSymbol("X", -1)


class TestComparison:
    def test_mirrored(self):
        c = Comparison("less", VarSymbol("S"), ConstSymbol(40000))
        m = c.mirrored()
        assert m.op == "greater"
        assert m.left == ConstSymbol(40000)

    def test_negated(self):
        c = Comparison("less", VarSymbol("S"), ConstSymbol(40000))
        assert c.negated().op == "geq"

    def test_ground_evaluation(self):
        assert Comparison("less", ConstSymbol(1), ConstSymbol(2)).evaluate_ground()
        assert not Comparison("greater", ConstSymbol(1), ConstSymbol(2)).evaluate_ground()
        assert Comparison("neq", ConstSymbol("a"), ConstSymbol(1)).evaluate_ground()

    def test_ground_cross_type_order_sqlite_semantics(self):
        # SQLite sorts numbers before strings; ground evaluation matches.
        assert not Comparison("less", ConstSymbol("a"), ConstSymbol(1)).evaluate_ground()
        assert Comparison("less", ConstSymbol(1), ConstSymbol("a")).evaluate_ground()

    def test_star_rejected(self):
        with pytest.raises(DbclError):
            Comparison("less", STAR, ConstSymbol(1))

    def test_unknown_op_rejected(self):
        with pytest.raises(DbclError):
            Comparison("like", VarSymbol("X"), ConstSymbol(1))


class TestBuilderAndValidation:
    def test_example_3_3_shape(self, schema):
        predicate = works_dir_for_predicate(schema)
        assert len(predicate.rows) == 4
        assert len(predicate.comparisons) == 1
        assert predicate.target_symbols() == [TargetSymbol("X")]
        # t_X sits in the nam column.
        assert predicate.target_columns() == [schema.column_of("nam")]

    def test_auto_fill_fresh_vars(self, schema):
        b = TableauBuilder(schema, "q")
        b.row("empl", nam=b.target("X"))
        predicate = b.build()
        row = predicate.rows[0]
        assert row.cell(schema.column_of("eno")) == VarSymbol("Eno", 1)
        assert row.cell(schema.column_of("sal")) == VarSymbol("Sal", 1)
        assert row.cell(schema.column_of("fct")) == STAR

    def test_join_count_example_3_3(self, schema):
        predicate = works_dir_for_predicate(schema)
        # v_D joins rows 1-2, v_M joins rows 2-3, t_X joins rows 1-4: 3 joins.
        assert predicate.join_count() == 3

    def test_unknown_attribute_rejected(self, schema):
        b = TableauBuilder(schema, "q")
        with pytest.raises(DbclError):
            b.row("empl", fct="x")

    def test_unknown_relation_rejected(self, schema):
        from repro.errors import SchemaError

        b = TableauBuilder(schema, "q")
        with pytest.raises(SchemaError):
            b.row("nosuch")

    def test_star_in_covered_column_rejected(self, schema):
        width = schema.width
        entries = [STAR] * width
        row = RelRow("empl", tuple(entries))
        with pytest.raises(DbclError):
            DbclPredicate(schema, "q", [STAR] * width, [row])

    def test_value_in_uncovered_column_rejected(self, schema):
        entries = [ConstSymbol(1)] * schema.width  # fct/mgr not in empl
        with pytest.raises(DbclError):
            DbclPredicate(schema, "q", [STAR] * schema.width, [RelRow("empl", tuple(entries))])

    def test_target_must_occur_in_rows(self, schema):
        targetlist = [STAR] * schema.width
        targetlist[schema.column_of("nam")] = TargetSymbol("X")
        b = TableauBuilder(schema, "q")
        b.row("empl")  # no t_X anywhere
        rows = b.build().rows
        with pytest.raises(DbclError):
            DbclPredicate(schema, "q", targetlist, rows)

    def test_comparison_variable_must_occur(self, schema):
        b = TableauBuilder(schema, "q")
        b.row("empl", nam=b.target("X"))
        b.less(VarSymbol("Ghost"), 10)
        with pytest.raises(DbclError):
            b.build()

    def test_comparison_with_two_constants_allowed(self, schema):
        b = TableauBuilder(schema, "q")
        b.row("empl", nam=b.target("X"))
        b.less(1, 2)
        assert len(b.build().comparisons) == 1


class TestPredicateOperations:
    def test_occurrences_and_first(self, schema):
        predicate = works_dir_for_predicate(schema)
        occ = predicate.occurrences()
        t_x = TargetSymbol("X")
        assert [o.row for o in occ[t_x]] == [0, 3]
        first = predicate.first_occurrence(VarSymbol("M"))
        assert first.row == 1
        assert first.column == schema.column_of("mgr")

    def test_first_occurrence_missing_raises(self, schema):
        predicate = works_dir_for_predicate(schema)
        with pytest.raises(DbclError):
            predicate.first_occurrence(VarSymbol("Ghost"))

    def test_rename(self, schema):
        predicate = works_dir_for_predicate(schema)
        renamed = predicate.rename({VarSymbol("Eno", 4): VarSymbol("Eno", 1)})
        assert renamed.occurrence_count(VarSymbol("Eno", 1)) == 2
        assert not renamed.occurs_in_rows(VarSymbol("Eno", 4))

    def test_rename_affects_comparisons(self, schema):
        predicate = works_dir_for_predicate(schema)
        renamed = predicate.rename({VarSymbol("S"): VarSymbol("Sal", 1)})
        assert renamed.comparisons[0].left == VarSymbol("Sal", 1)

    def test_rename_target_rejected(self, schema):
        predicate = works_dir_for_predicate(schema)
        with pytest.raises(DbclError):
            predicate.rename({TargetSymbol("X"): VarSymbol("Y")})

    def test_drop_rows(self, schema):
        predicate = works_dir_for_predicate(schema)
        # Dropping row 2 (smiley) leaves v_M as a singleton but still valid.
        smaller = predicate.drop_rows([2])
        assert len(smaller.rows) == 3

    def test_dedupe_rows(self, schema):
        b = TableauBuilder(schema, "q")
        t = b.target("X")
        b.row("empl", eno=b.var("E"), nam=t, sal=b.var("S"), dno=b.var("D"))
        b.row("empl", eno=b.var("E"), nam=t, sal=b.var("S"), dno=b.var("D"))
        predicate = b.build()
        assert len(predicate.dedupe_rows().rows) == 1

    def test_dedupe_comparisons_mirrored(self, schema):
        b = TableauBuilder(schema, "q")
        b.row("empl", nam=b.target("X"), sal=b.var("S"))
        b.less(b.var("S"), 100)
        b.greater(100, b.var("S"))
        predicate = b.build()
        assert len(predicate.dedupe_comparisons().comparisons) == 1

    def test_fresh_var(self, schema):
        predicate = works_dir_for_predicate(schema)
        fresh = predicate.fresh_var("Sal")
        assert fresh not in predicate.occurrences()

    def test_equality_and_hash(self, schema):
        a = works_dir_for_predicate(schema)
        b = works_dir_for_predicate(schema)
        assert a == b
        assert hash(a) == hash(b)
        c = works_dir_for_predicate(schema, salary_cap=50000)
        assert a != c

    def test_canonical_key_invariant_under_renaming(self, schema):
        a = works_dir_for_predicate(schema)
        mapping = {
            VarSymbol("Eno", 1): VarSymbol("Zz", 7),
            VarSymbol("D"): VarSymbol("Qq", 3),
        }
        b = a.rename(mapping)
        assert a.canonical_key() == b.canonical_key()

    def test_canonical_key_differs_for_different_queries(self, schema):
        a = works_dir_for_predicate(schema)
        b = works_dir_for_predicate(schema, salary_cap=99999)
        assert a.canonical_key() != b.canonical_key()


class TestGrammar:
    PAPER_TEXT = """
    dbcl(
      [empdep, eno, nam, sal, dno, fct, mgr],
      [works_dir_for, *, t_X, *, *, *, *],
      [[empl, v_Eno1, t_X, v_Sal1, v_D, *, *],
       [dept, *, *, *, v_D, v_Fct2, v_M],
       [empl, v_M, smiley, v_Sal3, v_Dno3, *, *],
       [empl, v_Eno4, t_X, v_S, v_Dno4, *, *]],
      [[less, v_S, 40000]]).
    """

    def test_parse_paper_example(self, schema):
        predicate = parse_dbcl(self.PAPER_TEXT, schema)
        assert predicate.name == "works_dir_for"
        assert len(predicate.rows) == 4
        assert predicate.rows[2].cell(schema.column_of("nam")) == ConstSymbol("smiley")
        assert predicate.comparisons[0].op == "less"

    def test_parse_matches_builder(self, schema):
        parsed = parse_dbcl(self.PAPER_TEXT, schema)
        built = works_dir_for_predicate(schema)
        assert parsed.canonical_key() == built.canonical_key()

    def test_format_parse_roundtrip(self, schema):
        predicate = works_dir_for_predicate(schema)
        text = format_dbcl(predicate)
        reparsed = parse_dbcl(text, schema)
        assert reparsed == predicate

    def test_schema_mismatch_rejected(self, schema):
        bad = self.PAPER_TEXT.replace("empdep", "otherdb")
        with pytest.raises(DbclSyntaxError):
            parse_dbcl(bad, schema)

    def test_non_dbcl_term_rejected(self, schema):
        with pytest.raises(DbclSyntaxError):
            parse_dbcl("foo(bar).", schema)

    def test_bad_comparison_rejected(self, schema):
        text = self.PAPER_TEXT.replace("[less, v_S, 40000]", "[like, v_S, 40000]")
        with pytest.raises(DbclSyntaxError):
            parse_dbcl(text, schema)

    def test_quoted_constant_roundtrip(self, schema):
        b = TableauBuilder(schema, "q")
        b.row("empl", nam=b.target("X"), sal=b.var("S"))
        b.row("empl", nam="O'Brien")
        predicate = b.build()
        reparsed = parse_dbcl(format_dbcl(predicate), schema)
        assert reparsed == predicate


class TestContainment:
    def test_identity_homomorphism(self, schema):
        predicate = works_dir_for_predicate(schema)
        mapping = find_homomorphism(predicate, predicate)
        assert mapping is not None

    def test_redundant_row_maps_away(self, schema):
        # Two empl rows that are duplicates up to variable naming: the
        # 2-row tableau maps onto the 1-row one.
        b1 = TableauBuilder(schema, "q")
        t = b1.target("X")
        b1.row("empl", nam=t)
        b1.row("empl", nam=t)
        two = b1.build()
        one = two.drop_rows([1])
        assert find_homomorphism(two, one) is not None

    def test_constants_block_mapping(self, schema):
        b1 = TableauBuilder(schema, "q")
        b1.row("empl", nam=b1.target("X"), dno=1)
        with_const = b1.build()
        b2 = TableauBuilder(schema, "q")
        b2.row("empl", nam=b2.target("X"), dno=2)
        other_const = b2.build()
        assert find_homomorphism(with_const, other_const) is None

    def test_containment_direction(self, schema):
        # q_all: all employees; q_dept1: employees of department 1.
        b1 = TableauBuilder(schema, "q")
        b1.row("empl", nam=b1.target("X"))
        q_all = b1.build()
        b2 = TableauBuilder(schema, "q")
        b2.row("empl", nam=b2.target("X"), dno=1)
        q_dept1 = b2.build()
        assert contains(q_all, q_dept1)
        assert not contains(q_dept1, q_all)

    def test_equivalent_up_to_redundancy(self, schema):
        b1 = TableauBuilder(schema, "q")
        t = b1.target("X")
        b1.row("empl", nam=t)
        b1.row("empl", nam=t)
        two = b1.build()
        one = two.drop_rows([1])
        assert equivalent(two, one)

    def test_comparisons_respected(self, schema):
        b1 = TableauBuilder(schema, "q")
        b1.row("empl", nam=b1.target("X"), sal=b1.var("S"))
        plain = b1.build()
        b2 = TableauBuilder(schema, "q")
        b2.row("empl", nam=b2.target("X"), sal=b2.var("S"))
        b2.less(b2.var("S"), 40000)
        restricted = b2.build()
        # restricted ⊆ plain but not vice versa.
        assert contains(plain, restricted)
        assert not contains(restricted, plain)

    def test_frozen_symbols_fixed(self, schema):
        b1 = TableauBuilder(schema, "q")
        t = b1.target("X")
        b1.row("empl", nam=t, dno=b1.var("D", 1))
        b1.row("empl", nam=t, dno=b1.var("D", 2))
        predicate = b1.build()
        target = predicate.drop_rows([1])
        # Without freezing, v_D2 can map to v_D1.
        assert find_homomorphism(predicate, target) is not None
        # Freezing v_D2 forbids the collapse.
        assert (
            find_homomorphism(predicate, target, frozen=[VarSymbol("D", 2)]) is None
        )
