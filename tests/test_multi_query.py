"""Deeper unit tests for the multiple-query batch executor."""

import pytest

from repro.coupling import BatchExecutor
from repro.dbms import ExternalDatabase, generate_org, load_org
from repro.metaevaluate import Metaevaluator
from repro.prolog import KnowledgeBase, var
from repro.schema import (
    SAME_MANAGER_SOURCE,
    WORKS_DIR_FOR_SOURCE,
    empdep_constraints,
    empdep_schema,
)


@pytest.fixture(scope="module")
def env():
    schema = empdep_schema()
    constraints = empdep_constraints(schema)
    database = ExternalDatabase(schema)
    org = generate_org(depth=3, branching=2, staff_per_dept=4, seed=17)
    load_org(database, org)
    kb = KnowledgeBase()
    kb.consult(WORKS_DIR_FOR_SOURCE)
    kb.consult(SAME_MANAGER_SOURCE)
    evaluator = Metaevaluator(schema, kb)
    yield evaluator, constraints, database, org
    database.close()


class TestBatchShapes:
    def test_empty_batch(self, env):
        evaluator, constraints, database, org = env
        executor = BatchExecutor(database, constraints)
        answers, report = executor.execute([])
        assert answers == []
        assert report.batch_size == 0
        assert report.queries_issued == 0

    def test_single_query_batch(self, env):
        evaluator, constraints, database, org = env
        boss = org.root_manager_name()
        predicate = evaluator.metaevaluate(
            f"works_dir_for(X, {boss})", targets=[var("X")]
        )
        executor = BatchExecutor(database, constraints)
        answers, report = executor.execute([predicate])
        assert report.queries_issued == 1
        expected = {l for l, h in org.works_dir_for_pairs() if h == boss}
        assert {r[0] for r in answers[0]} == expected

    def test_heterogeneous_batch(self, env):
        """Shared cores, duplicates, empties, and singletons in one batch."""
        evaluator, constraints, database, org = env
        boss = org.root_manager_name()
        make = lambda goal: evaluator.metaevaluate(goal, targets=[var("X")])
        predicates = [
            make(f"empl(_, X, S, _), less(S, 30000)"),   # core group member
            make(f"empl(_, X, S, _), less(S, 60000)"),   # core group member
            make(f"works_dir_for(X, {boss})"),           # singleton
            make(f"works_dir_for(X, {boss})"),           # duplicate of above
            make(f"empl(_, X, S, _), less(S, 2000)"),    # provably empty
        ]
        executor = BatchExecutor(database, constraints)
        answers, report = executor.execute(predicates)
        assert report.batch_size == 5
        # 1 widened scan (group) + 1 singleton; empty never reaches the DBMS.
        assert report.queries_issued == 2
        assert answers[4] == []
        assert answers[2] == answers[3]
        low = {r[0] for r in answers[0]}
        mid = {r[0] for r in answers[1]}
        assert low <= mid
        assert low == {e.nam for e in org.employees if e.sal < 30000}
        assert mid == {e.nam for e in org.employees if e.sal < 60000}

    def test_comparisons_on_targets_shared(self, env):
        """Cores differing in a comparison on a *target* symbol share too."""
        evaluator, constraints, database, org = env
        names = sorted(e.nam for e in org.employees)[:3]
        make = lambda name: evaluator.metaevaluate(
            f"empl(E, X, S, D), neq(X, {name})", targets=[var("X")]
        )
        predicates = [make(name) for name in names]
        executor = BatchExecutor(database, constraints)
        answers, report = executor.execute(predicates)
        assert report.queries_issued == 1
        for name, rows in zip(names, answers):
            assert {r[0] for r in rows} == {
                e.nam for e in org.employees if e.nam != name
            }

    def test_unshared_mode_still_skips_empty(self, env):
        evaluator, constraints, database, org = env
        predicates = [
            evaluator.metaevaluate(
                "empl(_, X, S, _), less(S, 2000)", targets=[var("X")]
            )
        ]
        executor = BatchExecutor(database, constraints, share=False)
        answers, report = executor.execute(predicates)
        assert answers == [[]]
        assert report.queries_issued == 0

    def test_no_optimize_mode(self, env):
        evaluator, constraints, database, org = env
        boss = org.root_manager_name()
        predicate = evaluator.metaevaluate(
            f"same_manager(X, {boss})", targets=[var("X")]
        )
        plain = BatchExecutor(database, constraints, optimize=False)
        optimized = BatchExecutor(database, constraints, optimize=True)
        plain_answers, _ = plain.execute([predicate])
        optimized_answers, _ = optimized.execute([predicate])
        assert set(plain_answers[0]) == set(optimized_answers[0])


class TestNullComparisonSemantics:
    """Regression: client-side filtering must match SQL three-valued logic.

    The widened-scan filter applies each member's comparisons in Python;
    a NULL operand makes the comparison *unknown*, which rejects the row
    for every operator — crucially including ``neq``, where treating
    NULL as an ordinary value would wrongly keep the row.  It must also
    never reach :func:`compare_values`, which orders only non-NULL
    constants.
    """

    def test_null_rejects_every_operator(self):
        from repro.coupling.multi_query import _evaluate_comparison

        for op in ("eq", "neq", "less", "greater", "leq", "geq"):
            assert _evaluate_comparison(op, None, 5) is False
            assert _evaluate_comparison(op, "x", None) is False
            assert _evaluate_comparison(op, None, None) is False

    def test_null_never_reaches_compare_values(self, monkeypatch):
        import repro.coupling.multi_query as mq

        def explode(left, right):
            raise AssertionError("compare_values saw a NULL operand")

        monkeypatch.setattr(mq, "compare_values", explode)
        assert mq._evaluate_comparison("neq", None, "a") is False
        assert mq._evaluate_comparison("eq", None, None) is False

    def test_non_null_matches_backend(self, env):
        from repro.coupling.multi_query import _evaluate_comparison

        evaluator, constraints, database, org = env
        # The backend's answer for a neq restriction must equal the
        # client-side filter's verdict row by row.
        rows = database.execute("SELECT sal FROM empl")
        threshold = org.employees[0].sal
        backend = {
            r[0] for r in database.execute(
                f"SELECT sal FROM empl WHERE sal <> {threshold}"
            )
        }
        client = {
            sal for (sal,) in rows if _evaluate_comparison("neq", sal, threshold)
        }
        assert client == backend


class TestPreparedScanReuse:
    """The executor is rebuilt on the plan cache: widened scans prepare once."""

    def test_second_batch_reuses_statements(self, env):
        evaluator, constraints, database, org = env
        make = lambda t: evaluator.metaevaluate(
            f"empl(E, X, S, D), less(S, {t})", targets=[var("X")]
        )
        predicates = [make(t) for t in (30000, 50000, 70000)]
        executor = BatchExecutor(database, constraints)
        first_answers, first = executor.execute(predicates)
        second_answers, second = executor.execute(predicates)
        assert first.statements_reused == 0
        assert second.statements_reused >= 1
        assert first_answers == second_answers

    def test_plan_cache_backed_reuse_and_invalidation(self):
        from repro import PrologDbSession, generate_org
        from repro.prolog import var as mkvar
        from repro.schema import ALL_VIEWS_SOURCE

        org = generate_org(depth=3, branching=2, staff_per_dept=3, seed=7)
        session = PrologDbSession()
        session.load_org(org)
        session.consult(ALL_VIEWS_SOURCE)
        executor = session.batch_executor()
        predicates = [
            session.metaevaluator.metaevaluate(
                f"empl(E, X, S, D), less(S, {t})", targets=[mkvar("X")]
            )
            for t in (30000, 60000)
        ]
        executor.execute(predicates)
        prints_before = session.database.stats.snapshot()["sql_prints"]
        answers, report = executor.execute(predicates)
        assert report.statements_reused >= 1
        assert session.database.stats.snapshot()["sql_prints"] == prints_before
        # a knowledge-base change drops the prepared scans with the plans
        session.assert_fact("specialist", "someone", "thinking")
        answers_after, report_after = executor.execute(predicates)
        assert report_after.statements_reused == 0
        assert answers == answers_after
        session.close()
