"""Inference over integrity constraints.

Two procedures the optimizer needs:

* :func:`fd_closure` — the classical attribute-set closure under functional
  dependencies (Armstrong's axioms), used for key detection and for
  ``implies_funcdep`` tests (the paper notes in §3 that inference rules such
  as reflexivity "can be used for semantic query optimization").

* :func:`derive_refint` — the paper's **Algorithm 1** (§6.3), a chase-style
  derivation procedure for referential integrity constraints.  General
  inclusion-dependency implication is computationally hard (Casanova et
  al. 1982); the paper's structural restrictions (each attribute on at most
  one left-hand side; right-hand sides are keys) make derivation a
  deterministic walk: at each step at most one stored rule is applicable,
  and rule marking guarantees each rule is used at most once, so the
  procedure terminates in at most ``len(rules)`` steps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from ..errors import SchemaError
from .catalog import DatabaseSchema
from .constraints import FuncDep, RefInt


def fd_closure(attributes: set[str], funcdeps: Iterable[FuncDep]) -> frozenset[str]:
    """Closure of ``attributes`` under ``funcdeps`` (all within one relation).

    Standard fixpoint: add the RHS of every FD whose LHS is already covered.
    """
    closure = set(attributes)
    pending = list(funcdeps)
    changed = True
    while changed:
        changed = False
        remaining: list[FuncDep] = []
        for fd in pending:
            if set(fd.lhs) <= closure:
                before = len(closure)
                closure.update(fd.rhs)
                if len(closure) != before:
                    changed = True
            else:
                remaining.append(fd)
        pending = remaining
    return frozenset(closure)


def minimal_keys(
    relation_attributes: Sequence[str], funcdeps: Iterable[FuncDep]
) -> list[tuple[str, ...]]:
    """All minimal keys of a relation under the given FDs.

    Exponential in the worst case (the problem is), but relations in this
    setting have a handful of attributes; used by tests and the workload
    generator, not on any hot path.
    """
    from itertools import combinations

    attributes = list(relation_attributes)
    fds = list(funcdeps)
    all_set = set(attributes)
    keys: list[tuple[str, ...]] = []
    for size in range(1, len(attributes) + 1):
        for candidate in combinations(attributes, size):
            if any(set(key) <= set(candidate) for key in keys):
                continue
            if fd_closure(set(candidate), fds) >= all_set:
                keys.append(candidate)
    return keys


@dataclass(frozen=True, slots=True)
class RefIntHypothesis:
    """A hypothesized referential constraint ``(Ra, [A...]) ⊆ (Rb, [B...])``."""

    from_relation: str
    from_attributes: tuple[str, ...]
    to_relation: str
    to_attributes: tuple[str, ...]

    def __post_init__(self):
        if len(self.from_attributes) != len(self.to_attributes):
            raise SchemaError("hypothesis attribute lists must have equal length")


@dataclass(frozen=True, slots=True)
class RefIntDerivation:
    """The result of Algorithm 1: success flag plus the rule chain used."""

    success: bool
    chain: tuple[RefInt, ...] = ()

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.success


def _sorted_pairs(
    schema: DatabaseSchema, lhs: Sequence[str], rhs: Sequence[str]
) -> tuple[tuple[str, ...], tuple[str, ...]]:
    """Algorithm 1 step 2: sort both lists by ascending LHS attribute number."""
    pairs = sorted(zip(lhs, rhs), key=lambda p: schema.attribute_number(p[0]))
    if not pairs:
        return ((), ())
    left, right = zip(*pairs)
    return (tuple(left), tuple(right))


def _is_subsequence(needle: Sequence[str], haystack: Sequence[str]) -> bool:
    """Is ``needle`` a subsequence of ``haystack`` (order preserved)?"""
    iterator = iter(haystack)
    return all(item in iterator for item in needle)


def derive_refint(
    schema: DatabaseSchema,
    hypothesis: RefIntHypothesis,
    rules: Sequence[RefInt],
) -> RefIntDerivation:
    """Algorithm 1 (Chase-like Procedure for Referential Integrity).

    Decides whether ``hypothesis`` is derivable from the stored referential
    constraints.  Follows the paper's steps literally:

    1.  ``CURRENT`` starts as the hypothesis.
    2.  Sort the paired attribute lists by ascending attribute number of the
        left-hand side.
    3.  A stored rule RC is *applicable* if it starts at CURRENT's current
        relation and CURRENT's left-hand side is a subsequence of RC's
        left-hand side (sorted the same way).  If no unused rule applies,
        fail.
    4.  Replace CURRENT's left-hand side by the corresponding subset of RC's
        right-hand side (moving to RC's target relation).  If CURRENT's two
        sides now coincide, succeed; otherwise mark RC used and repeat.
    """
    current_relation = hypothesis.from_relation
    current_attrs, target_attrs = _sorted_pairs(
        schema, hypothesis.from_attributes, hypothesis.to_attributes
    )
    # Degenerate hypothesis: already at the target.
    if (
        current_relation == hypothesis.to_relation
        and current_attrs == target_attrs
    ):
        return RefIntDerivation(True, ())

    unused = list(rules)
    chain: list[RefInt] = []
    while True:
        applicable: Optional[RefInt] = None
        for rule in unused:
            if rule.from_relation != current_relation:
                continue
            rule_lhs, rule_rhs = _sorted_pairs(
                schema, rule.from_attributes, rule.to_attributes
            )
            if _is_subsequence(current_attrs, rule_lhs):
                applicable = rule
                break
        if applicable is None:
            return RefIntDerivation(False, tuple(chain))

        rule_lhs, rule_rhs = _sorted_pairs(
            schema, applicable.from_attributes, applicable.to_attributes
        )
        replacement = dict(zip(rule_lhs, rule_rhs))
        current_relation = applicable.to_relation
        current_attrs = tuple(replacement[attr] for attr in current_attrs)
        chain.append(applicable)
        unused.remove(applicable)  # step 4: mark RC "used"

        # Re-sort for the next round (attribute numbers changed relation).
        current_attrs, target_attrs = _sorted_pairs(
            schema, current_attrs, target_attrs
        )
        if (
            current_relation == hypothesis.to_relation
            and current_attrs == target_attrs
        ):
            return RefIntDerivation(True, tuple(chain))
        if not unused:
            return RefIntDerivation(False, tuple(chain))


def derivable_refint(
    schema: DatabaseSchema,
    from_relation: str,
    from_attributes: Sequence[str],
    to_relation: str,
    to_attributes: Sequence[str],
    rules: Sequence[RefInt],
) -> bool:
    """Convenience wrapper over :func:`derive_refint`."""
    hypothesis = RefIntHypothesis(
        from_relation, tuple(from_attributes), to_relation, tuple(to_attributes)
    )
    return derive_refint(schema, hypothesis, rules).success
