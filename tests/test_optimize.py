"""Tests for the local optimizer (paper section 6, Examples 6-1 and 6-2)."""

import pytest

from repro.dbcl import (
    Comparison,
    ConstSymbol,
    TableauBuilder,
    TargetSymbol,
    VarSymbol,
    parse_dbcl,
)
from repro.metaevaluate import Metaevaluator
from repro.optimize import (
    ABLATION_LEVELS,
    SimplifyOptions,
    analyse_comparisons,
    bound_assumptions,
    chase,
    check_constants,
    minimize,
    remove_dangling_rows,
    simplify,
)
from repro.prolog import KnowledgeBase, var
from repro.schema import (
    SAME_MANAGER_SOURCE,
    WORKS_DIR_FOR_SOURCE,
    empdep_constraints,
    empdep_schema,
)
from repro.sql import translate


@pytest.fixture
def schema():
    return empdep_schema()


@pytest.fixture
def constraints(schema):
    return empdep_constraints(schema)


@pytest.fixture
def evaluator(schema):
    kb = KnowledgeBase()
    kb.consult(WORKS_DIR_FOR_SOURCE)
    kb.consult(SAME_MANAGER_SOURCE)
    return Metaevaluator(schema, kb)


def works_dir_for_query(evaluator, cap=40000):
    return evaluator.metaevaluate(
        f"works_dir_for(X, smiley), empl(_, X, S, _), less(S, {cap})",
        name="works_dir_for",
        targets=[var("X")],
    )


def same_manager_query(evaluator):
    return evaluator.metaevaluate(
        "same_manager(X, jones)", name="same_manager", targets=[var("X")]
    )


class TestValueBounds:
    def test_constant_inside_domain_ok(self, schema, constraints):
        b = TableauBuilder(schema, "q")
        b.row("empl", nam=b.target("X"), sal=50000)
        assert check_constants(b.build(), constraints) is None

    def test_constant_outside_domain_detected(self, schema, constraints):
        b = TableauBuilder(schema, "q")
        b.row("empl", nam=b.target("X"), sal=5000)
        violation = check_constants(b.build(), constraints)
        assert violation is not None
        assert violation.attribute == "sal"
        assert "valuebound" in violation.describe()

    def test_assumptions_only_for_comparison_variables(
        self, schema, constraints, evaluator
    ):
        predicate = works_dir_for_query(evaluator)
        assumptions = bound_assumptions(predicate, constraints)
        # Only v_S participates in a comparison; it sits in empl.sal.
        assert len(assumptions) == 2
        ops = {a.op for a in assumptions}
        assert ops == {"geq", "leq"}

    def test_no_comparisons_no_assumptions(self, schema, constraints):
        b = TableauBuilder(schema, "q")
        b.row("empl", nam=b.target("X"))
        assert bound_assumptions(b.build(), constraints) == []


class TestInequalities:
    def _sym(self, name):
        return VarSymbol(name)

    def test_redundant_comparison_dropped(self):
        """less(S, 200000) is implied by sal <= 90000 (paper 6.1)."""
        s = self._sym("S")
        outcome = analyse_comparisons(
            [Comparison("less", s, ConstSymbol(200000))],
            assumptions=[
                Comparison("geq", s, ConstSymbol(10000)),
                Comparison("leq", s, ConstSymbol(90000)),
            ],
        )
        assert not outcome.contradiction
        assert outcome.comparisons == []

    def test_contradicting_comparison_detected(self):
        """less(S, 2000) contradicts sal >= 10000 (paper 6.1)."""
        s = self._sym("S")
        outcome = analyse_comparisons(
            [Comparison("less", s, ConstSymbol(2000))],
            assumptions=[
                Comparison("geq", s, ConstSymbol(10000)),
                Comparison("leq", s, ConstSymbol(90000)),
            ],
        )
        assert outcome.contradiction

    def test_useful_comparison_kept(self):
        s = self._sym("S")
        outcome = analyse_comparisons(
            [Comparison("less", s, ConstSymbol(40000))],
            assumptions=[
                Comparison("geq", s, ConstSymbol(10000)),
                Comparison("leq", s, ConstSymbol(90000)),
            ],
        )
        assert outcome.comparisons == [Comparison("less", s, ConstSymbol(40000))]

    def test_sharpening_neq_to_strict(self):
        """A >= B, B >= C, A neq C becomes A > C (paper 6.1)."""
        a, b, c = self._sym("A"), self._sym("B"), self._sym("C")
        outcome = analyse_comparisons(
            [
                Comparison("geq", a, b),
                Comparison("geq", b, c),
                Comparison("neq", a, c),
            ]
        )
        assert not outcome.contradiction
        assert Comparison("less", c, a) in outcome.comparisons
        assert all(o.op != "neq" for o in outcome.comparisons)

    def test_cycle_of_geq_becomes_equalities(self):
        """A >= B, B >= C, C >= A is A = B = C (paper 6.1)."""
        a, b, c = self._sym("A"), self._sym("B"), self._sym("C")
        outcome = analyse_comparisons(
            [
                Comparison("geq", a, b),
                Comparison("geq", b, c),
                Comparison("geq", c, a),
            ]
        )
        assert not outcome.contradiction
        # All three collapse to one representative; no comparisons remain.
        assert len(outcome.renamings) == 2
        assert outcome.comparisons == []

    def test_strict_cycle_contradiction(self):
        a, b = self._sym("A"), self._sym("B")
        outcome = analyse_comparisons(
            [Comparison("less", a, b), Comparison("leq", b, a)]
        )
        assert outcome.contradiction

    def test_equality_with_constant_propagates(self):
        a = self._sym("A")
        outcome = analyse_comparisons([Comparison("eq", a, ConstSymbol(7))])
        assert outcome.renamings == {a: ConstSymbol(7)}
        assert outcome.comparisons == []

    def test_neq_between_equated_symbols_contradiction(self):
        a, b = self._sym("A"), self._sym("B")
        outcome = analyse_comparisons(
            [
                Comparison("eq", a, b),
                Comparison("neq", a, b),
            ]
        )
        assert outcome.contradiction

    def test_duplicate_comparison_dropped_once(self):
        a = self._sym("A")
        c = Comparison("less", a, ConstSymbol(5))
        outcome = analyse_comparisons([c, c])
        assert outcome.comparisons == [c]

    def test_transitive_redundancy(self):
        a, b, c = self._sym("A"), self._sym("B"), self._sym("C")
        outcome = analyse_comparisons(
            [
                Comparison("less", a, b),
                Comparison("less", b, c),
                Comparison("less", a, c),  # implied
            ]
        )
        assert len(outcome.comparisons) == 2

    def test_ground_false_comparison(self):
        outcome = analyse_comparisons(
            [Comparison("less", ConstSymbol(5), ConstSymbol(3))]
        )
        assert outcome.contradiction

    def test_ground_true_comparison_removed(self):
        outcome = analyse_comparisons(
            [Comparison("less", ConstSymbol(3), ConstSymbol(5))]
        )
        assert outcome.comparisons == []

    def test_targets_never_renamed(self):
        t, v = TargetSymbol("X"), self._sym("V")
        outcome = analyse_comparisons([Comparison("eq", t, v)])
        assert outcome.renamings == {v: t}

    def test_two_targets_equal_residual(self):
        t1, t2 = TargetSymbol("X"), TargetSymbol("Y")
        outcome = analyse_comparisons([Comparison("eq", t1, t2)])
        assert outcome.renamings == {}
        assert Comparison("eq", t1, t2) in outcome.comparisons or Comparison(
            "eq", t2, t1
        ) in outcome.comparisons


class TestChase:
    def test_example_6_1(self, evaluator, constraints, schema):
        """FD chase shrinks the works_dir_for tableau from 4 rows to 3."""
        predicate = works_dir_for_query(evaluator)
        outcome = chase(predicate, constraints)
        assert not outcome.contradiction
        assert outcome.changed
        assert len(outcome.predicate.rows) == 3
        assert outcome.rows_removed == 1
        # The comparison was renamed along with the merged salary variable
        # (paper: "note the renaming in the Relcomparisons section").
        comparison = outcome.predicate.comparisons[0]
        sal_cell = outcome.predicate.rows[0].cell(schema.column_of("sal"))
        assert comparison.left == sal_cell
        # Expected final shape, up to variable naming.
        paper = parse_dbcl(
            """
            dbcl(
              [empdep, eno, nam, sal, dno, fct, mgr],
              [works_dir_for, *, t_X, *, *, *, *],
              [[empl, v_Eno1, t_X, v_Sal1, v_D, *, *],
               [dept, *, *, *, v_D, v_Fct2, v_M],
               [empl, v_M, smiley, v_Sal3, v_Eno3, *, *]],
              [[less, v_Sal1, 40000]]).
            """,
            schema,
        )
        assert outcome.predicate.canonical_key() == paper.canonical_key()

    def test_chase_contradiction_on_constants(self, schema, constraints):
        # Same nam implies same eno; conflicting eno constants contradict.
        b = TableauBuilder(schema, "q")
        b.row("empl", eno=1, nam="smiley", sal=b.var("S1"), dno=b.var("D1"))
        b.row("empl", eno=2, nam="smiley", sal=b.var("S2"), dno=b.var("D2"))
        b.row("empl", nam=b.target("X"))
        outcome = chase(b.build(), constraints)
        assert outcome.contradiction

    def test_chase_propagates_constants(self, schema, constraints):
        b = TableauBuilder(schema, "q")
        b.row("empl", eno=1, nam="smiley", sal=b.var("S1"), dno=b.var("D1"))
        b.row("empl", eno=1, nam=b.target("X"), sal=b.var("S2"), dno=7)
        outcome = chase(b.build(), constraints)
        assert not outcome.contradiction
        # eno = 1 forces sal/dno equal: S1 -> 7 via D1 = 7.
        row = outcome.predicate.rows[0]
        assert row.cell(schema.column_of("dno")) == ConstSymbol(7)

    def test_chase_idempotent(self, evaluator, constraints):
        predicate = works_dir_for_query(evaluator)
        once = chase(predicate, constraints)
        twice = chase(once.predicate, constraints)
        assert not twice.changed
        assert twice.predicate == once.predicate

    def test_chase_without_applicable_fds(self, schema, constraints):
        b = TableauBuilder(schema, "q")
        b.row("empl", nam=b.target("X"))
        b.row("dept", fct="sales")
        outcome = chase(b.build(), constraints)
        assert not outcome.changed


class TestRefint:
    def test_example_6_2_dangling_rows(self, schema, constraints):
        """Rows 3 then 2 of the chased same_manager tableau are deletable."""
        predicate = parse_dbcl(
            """
            dbcl(
              [empdep, eno, nam, sal, dno, fct, mgr],
              [same_manager, *, t_X, *, *, *, *],
              [[empl, v_Eno1, t_X, v_Sal1, v_D1, *, *],
               [dept, *, *, *, v_D1, v_Fct2, v_M1],
               [empl, v_M1, v_M, v_Sal3, v_Dno3, *, *],
               [empl, v_Eno4, jones, v_Sal4, v_D1, *, *]],
              [[neq, t_X, jones]]).
            """,
            schema,
        )
        outcome = remove_dangling_rows(predicate, constraints)
        assert outcome.removed_rows == 2
        assert [row.tag for row in outcome.predicate.rows] == ["empl", "empl"]
        assert outcome.deletions == [("empl", "dept"), ("dept", "empl")]

    def test_shared_variable_blocks_deletion(self, schema, constraints):
        # The dept row's mgr is used by a comparison: not dangling.
        predicate = parse_dbcl(
            """
            dbcl(
              [empdep, eno, nam, sal, dno, fct, mgr],
              [q, *, t_X, *, *, *, *],
              [[empl, v_Eno1, t_X, v_Sal1, v_D1, *, *],
               [dept, *, *, *, v_D1, v_Fct2, v_M1]],
              [[greater, v_M1, 100]]).
            """,
            schema,
        )
        outcome = remove_dangling_rows(predicate, constraints)
        assert outcome.removed_rows == 0

    def test_constant_blocks_deletion(self, schema, constraints):
        # dept row carries fct = 'sales': it restricts, never dangles.
        b = TableauBuilder(schema, "q")
        b.row("empl", nam=b.target("X"), dno=b.var("D"))
        b.row("dept", dno=b.var("D"), fct="sales")
        outcome = remove_dangling_rows(b.build(), constraints)
        assert outcome.removed_rows == 0

    def test_reflexive_refint_same_column(self, schema, constraints):
        # A same-column match needs only the reflexive X ⊆ X inclusion;
        # deletion coincides with row subsumption and is sound.
        b = TableauBuilder(schema, "q")
        s = b.var("S")
        b.row("empl", nam=b.target("X"), sal=s)
        b.row("empl", sal=s)
        outcome = remove_dangling_rows(b.build(), constraints)
        assert outcome.removed_rows == 1

    def test_restricting_row_not_deleted(self, schema, constraints):
        # The second row carries an extra constant: it restricts the
        # answer and must survive.
        b = TableauBuilder(schema, "q")
        s = b.var("S")
        b.row("empl", nam=b.target("X"), sal=s)
        b.row("empl", sal=s, dno=3)
        outcome = remove_dangling_rows(b.build(), constraints)
        assert outcome.removed_rows == 0

    def test_single_dangling_row(self, schema, constraints):
        # empl joined to dept through dno; dept row otherwise private.
        b = TableauBuilder(schema, "q")
        d = b.var("D")
        b.row("empl", nam=b.target("X"), dno=d)
        b.row("dept", dno=d)
        outcome = remove_dangling_rows(b.build(), constraints)
        assert outcome.removed_rows == 1
        assert outcome.predicate.rows[0].tag == "empl"

    def test_intra_row_constraint_blocks(self, schema, constraints):
        # A row with eno = mgr-style self-condition cannot be deleted.
        b = TableauBuilder(schema, "q")
        d = b.var("D")
        m = b.var("M")
        b.row("empl", nam=b.target("X"), dno=d)
        b.row("dept", dno=d, mgr=m)
        # Build a second dept row where dno and mgr share one symbol.
        b2 = TableauBuilder(schema, "q")
        d2 = b2.var("D")
        b2.row("empl", nam=b2.target("X"), dno=d2)
        b2.row("dept", dno=d2, mgr=d2)
        outcome = remove_dangling_rows(b2.build(), constraints)
        assert outcome.removed_rows == 0


class TestMinimize:
    def test_duplicate_row_removed(self, schema):
        b = TableauBuilder(schema, "q")
        t = b.target("X")
        b.row("empl", nam=t)
        b.row("empl", nam=t)
        outcome = minimize(b.build())
        assert outcome.removed_rows == 1

    def test_subsumed_row_removed(self, schema):
        # Row 2 (any employee in any department) is subsumed by row 1.
        b = TableauBuilder(schema, "q")
        t = b.target("X")
        b.row("empl", nam=t, dno=5)
        b.row("empl", nam=t)
        outcome = minimize(b.build())
        assert outcome.removed_rows == 1
        # The specific (constant-bearing) row must be the survivor.
        assert outcome.predicate.rows[0].cell(schema.column_of("dno")) == ConstSymbol(5)

    def test_joined_rows_kept(self, schema):
        b = TableauBuilder(schema, "q")
        d = b.var("D")
        b.row("empl", nam=b.target("X"), dno=d)
        b.row("dept", dno=d, fct="sales")
        outcome = minimize(b.build())
        assert outcome.removed_rows == 0

    def test_comparison_symbols_block_collapse(self, schema):
        b = TableauBuilder(schema, "q")
        t = b.target("X")
        s1, s2 = b.var("S", 1), b.var("S", 2)
        b.row("empl", nam=t, sal=s1)
        b.row("empl", nam=t, sal=s2)
        b.less(s1, s2)
        outcome = minimize(b.build())
        assert outcome.removed_rows == 0

    def test_minimize_idempotent(self, schema):
        b = TableauBuilder(schema, "q")
        t = b.target("X")
        b.row("empl", nam=t)
        b.row("empl", nam=t)
        once = minimize(b.build())
        twice = minimize(once.predicate)
        assert not twice.changed


class TestAlgorithmTwo:
    def test_example_6_2_full_pipeline(self, evaluator, constraints, schema):
        """Six-row same_manager collapses to two rows; 4 of 5 joins avoided."""
        predicate = same_manager_query(evaluator)
        direct_sql = translate(predicate)
        assert direct_sql.join_term_count == 5

        result = simplify(predicate, constraints)
        assert not result.is_empty
        assert result.rows_before == 6
        assert result.rows_after == 2
        optimized_sql = translate(result.predicate)
        assert optimized_sql.join_term_count == 1
        assert direct_sql.join_term_count - optimized_sql.join_term_count == 4

        paper_final = parse_dbcl(
            """
            dbcl(
              [empdep, eno, nam, sal, dno, fct, mgr],
              [same_manager, *, t_X, *, *, *, *],
              [[empl, v_Eno1, t_X, v_Sal1, v_D1, *, *],
               [empl, v_Eno4, jones, v_Sal4, v_D1, *, *]],
              [[neq, t_X, jones]]).
            """,
            schema,
        )
        assert result.predicate.canonical_key() == paper_final.canonical_key()

    def test_example_6_2_sql_shape(self, evaluator, constraints):
        """The final SQL matches the paper's 2-variable query."""
        result = simplify(same_manager_query(evaluator), constraints)
        query = translate(result.predicate)
        assert query.table_count == 2
        conditions = {str(c) for c in query.where}
        assert "(v1.dno = v2.dno)" in conditions
        assert "(v2.nam = 'jones')" in conditions
        assert "(v1.nam <> 'jones')" in conditions

    def test_contradiction_short_circuits(self, evaluator, constraints):
        predicate = works_dir_for_query(evaluator, cap=2000)
        result = simplify(predicate, constraints)
        assert result.is_empty
        assert "inequalities" in result.stage_log[-1]

    def test_redundant_bound_removed(self, evaluator, constraints):
        predicate = works_dir_for_query(evaluator, cap=200000)
        result = simplify(predicate, constraints)
        assert not result.is_empty
        assert len(result.predicate.comparisons) == 0

    def test_useful_bound_kept(self, evaluator, constraints):
        predicate = works_dir_for_query(evaluator, cap=40000)
        result = simplify(predicate, constraints)
        assert len(result.predicate.comparisons) == 1
        assert result.predicate.comparisons[0].op == "less"

    def test_out_of_domain_constant_empty(self, schema, constraints):
        b = TableauBuilder(schema, "q")
        b.row("empl", nam=b.target("X"), sal=5000)
        result = simplify(b.build(), constraints)
        assert result.is_empty
        assert "valuebound" in result.reason

    def test_no_optim_passthrough(self, evaluator, constraints):
        predicate = same_manager_query(evaluator)
        result = simplify(predicate, constraints, SimplifyOptions.none())
        assert result.predicate == predicate

    def test_simplify_idempotent(self, evaluator, constraints):
        predicate = same_manager_query(evaluator)
        once = simplify(predicate, constraints)
        twice = simplify(once.predicate, constraints)
        assert twice.predicate.canonical_key() == once.predicate.canonical_key()

    def test_ablation_levels_monotone(self, evaluator, constraints):
        """More stages never leave more rows (on this workload)."""
        predicate = same_manager_query(evaluator)
        counts = []
        for label in ["none", "bounds+ineq", "bounds+ineq+chase", "full"]:
            result = simplify(predicate, constraints, ABLATION_LEVELS[label])
            counts.append(result.rows_after)
        assert counts[0] >= counts[1] >= counts[2] >= counts[3]
        assert counts[0] == 6
        assert counts[-1] == 2

    def test_describe_mentions_counts(self, evaluator, constraints):
        result = simplify(same_manager_query(evaluator), constraints)
        text = result.describe()
        assert "rows 6 -> 2" in text
