"""Remaining coverage: writer helpers, dialect corners, builtin options."""

import pytest

from repro.coupling import PrologDbSession
from repro.dbms import generate_org
from repro.prolog import (
    KnowledgeBase,
    parse_program,
    program_to_string,
    var,
)
from repro.prolog.writer import goal_list_to_string
from repro.schema import SAME_MANAGER_SOURCE, WORKS_DIR_FOR_SOURCE
from repro.sql import QuelDialect, empty_query, get_dialect


class TestWriterHelpers:
    def test_program_roundtrip(self):
        source = "p(1).\nq(X) :- p(X), r(X, [a, b])."
        clauses = parse_program(source)
        rendered = program_to_string(clauses)
        assert program_to_string(parse_program(rendered)) == rendered

    def test_goal_list(self):
        clauses = parse_program("q(X) :- p(X), r(X).")
        assert goal_list_to_string(clauses[0].body_goals()) == "p(X), r(X)"


class TestDialectCorners:
    def test_quel_empty_query(self):
        assert "1 = 0" in QuelDialect().render(empty_query())

    def test_quel_rejects_not_in(self):
        from repro.errors import TranslationError
        from repro.sql import (
            ColumnRef,
            NotInCondition,
            SelectItem,
            SqlQuery,
            TableRef,
        )

        sub = SqlQuery(
            select=(SelectItem(ColumnRef("n1", "nam")),),
            from_tables=(TableRef("empl", "n1"),),
        )
        query = SqlQuery(
            select=(SelectItem(ColumnRef("v1", "nam")),),
            from_tables=(TableRef("empl", "v1"),),
            extra_conditions=(NotInCondition((ColumnRef("v1", "nam"),), sub),),
        )
        with pytest.raises(TranslationError):
            QuelDialect().render(query)

    def test_sql_dialect_oneline(self):
        from repro.sql import ColumnRef, SelectItem, SqlQuery, TableRef

        query = SqlQuery(
            select=(SelectItem(ColumnRef("v1", "nam")),),
            from_tables=(TableRef("empl", "v1"),),
        )
        assert get_dialect("sql").render(query, oneline=True) == (
            "SELECT v1.nam FROM empl v1"
        )


class TestMetaevaluateBuiltinOptions:
    @pytest.fixture
    def session(self):
        session = PrologDbSession()
        org = generate_org(depth=2, branching=2, staff_per_dept=4, seed=2)
        session.load_org(org)
        session.consult(WORKS_DIR_FOR_SOURCE)
        session.consult(SAME_MANAGER_SOURCE)
        return session, org

    def test_optim_option_simplifies_bound_term(self, session):
        s, org = session
        employee = org.employees[0].nam
        from repro.prolog import Struct, list_items

        for options, expected_rows in (("no_optim", 6), ("optim", 2)):
            solutions = s.engine.solve_all(
                f"metaevaluate(pr5, [same_manager(X, {employee})], {options}, DBCL)",
                limit=1,
            )
            dbcl_term = solutions[0][var("DBCL")]
            assert isinstance(dbcl_term, Struct)
            rows = list_items(dbcl_term.args[2])
            assert len(rows) == expected_rows, options

    def test_answers_identical_under_both_options(self, session):
        s, org = session
        employee = org.employees[0].nam
        s.engine.solve_all(
            f"metaevaluate(pr5, [same_manager(X, {employee})], optim, D)", limit=1
        )
        optim_facts = s.kb.fact_count(("same_manager", 2))
        s.kb.retract_all(("same_manager", 2))
        # Re-consult to restore the view rule dropped by retract_all.
        s.consult(SAME_MANAGER_SOURCE)
        s.engine.solve_all(
            f"metaevaluate(pr5, [same_manager(X, {employee})], no_optim, D)",
            limit=1,
        )
        plain_facts = s.kb.fact_count(("same_manager", 2))
        assert optim_facts == plain_facts


class TestStepwiseLimit:
    def test_max_solutions(self):
        session = PrologDbSession()
        org = generate_org(depth=2, branching=2, staff_per_dept=4, seed=4)
        session.load_org(org)
        session.consult(WORKS_DIR_FOR_SOURCE)
        from repro.extensions import StepwiseEvaluator
        from repro.optimize import SimplifyOptions

        evaluator = StepwiseEvaluator(
            session.metaevaluator,
            session.engine,
            session.database,
            session.constraints,
        )
        answers, stats = evaluator.evaluate(
            "empl(E, N, S, D)", max_solutions=3
        )
        assert len(answers) == 3
        session.close()


class TestAskLimit:
    def test_external_path_respects_limit(self):
        session = PrologDbSession()
        org = generate_org(depth=2, branching=2, staff_per_dept=4, seed=6)
        session.load_org(org)
        session.consult(WORKS_DIR_FOR_SOURCE)
        answers = session.ask("empl(E, N, S, D)", max_solutions=2)
        assert len(answers) == 2
        session.close()
