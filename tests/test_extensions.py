"""Tests for the section 7 extensions: disjunction, negation, stepwise."""

import pytest

from repro.coupling import PrologDbSession
from repro.dbms import generate_org
from repro.errors import UnsupportedFeatureError
from repro.extensions import (
    StepwiseEvaluator,
    split_negation,
    translate_disjunctive,
    translate_with_negation,
)
from repro.prolog import parse_goal, var
from repro.schema import WORKS_DIR_FOR_SOURCE
from repro.sql import print_sql, print_union


@pytest.fixture
def org():
    return generate_org(depth=2, branching=2, staff_per_dept=4, seed=23)


@pytest.fixture
def session(org):
    session = PrologDbSession()
    session.load_org(org)
    session.consult(WORKS_DIR_FOR_SOURCE)
    return session


class TestDisjunction:
    @pytest.fixture
    def disj_session(self, session):
        # A disjunctive view: well-paid people and department managers.
        session.consult(
            """
            notable(X) :- empl(_, X, S, _), geq(S, 70000).
            notable(X) :- dept(_, _, M), empl(M, X, _, _).
            """
        )
        return session

    def test_branches_translate_to_union(self, disj_session, org):
        translation = translate_disjunctive(
            disj_session.metaevaluator,
            "notable(X)",
            disj_session.constraints,
            targets=[var("X")],
        )
        assert len(translation.branches) == 2
        assert translation.live_branch_count == 2
        text = print_union(translation.union)
        assert "UNION" in text

    def test_union_answers_match_semantics(self, disj_session, org):
        answers = disj_session.ask_disjunctive("notable(X)")
        managers = {
            next(e.nam for e in org.employees if e.eno == d.mgr)
            for d in org.departments
        }
        wellpaid = {e.nam for e in org.employees if e.sal >= 70000}
        assert {a["X"] for a in answers} == managers | wellpaid

    def test_contradictory_branch_pruned(self, disj_session):
        disj_session.consult(
            """
            oddity(X) :- empl(_, X, S, _), less(S, 2000).
            oddity(X) :- dept(_, _, M), empl(M, X, _, _).
            """
        )
        translation = translate_disjunctive(
            disj_session.metaevaluator,
            "oddity(X)",
            disj_session.constraints,
            targets=[var("X")],
        )
        assert translation.pruned_branch_count == 1
        assert translation.live_branch_count == 1

    def test_explicit_semicolon_goal(self, disj_session, org):
        answers = disj_session.ask_disjunctive(
            "empl(_, X, S, _), geq(S, 70000) ; dept(_, _, M), empl(M, X, _, _)"
        )
        assert answers  # both branches contribute


class TestNegation:
    def test_split(self):
        positive, negated = split_negation(
            "empl(E, N, S, D), not(works_dir_for(N, smiley))"
        )
        assert len(positive) == 1
        assert len(negated) == 1

    def test_non_managers(self, session, org):
        """Employees who work directly for nobody... i.e. not under boss X."""
        boss = org.root_manager_name()
        answers = session.ask_with_negation(
            f"empl(E, N, S, D), not(works_dir_for(N, {boss}))"
        )
        under_boss = {l for l, h in org.works_dir_for_pairs() if h == boss}
        all_names = {e.nam for e in org.employees}
        assert {a["N"] for a in answers} == all_names - under_boss

    def test_not_in_rendering(self, session):
        from repro.extensions import translate_with_negation

        translation = translate_with_negation(
            session.metaevaluator,
            "empl(E, N, S, D), not(works_dir_for(N, smiley))",
            session.constraints,
            targets=[var("N")],
        )
        text = print_sql(translation.query)
        assert "NOT IN" in text

    def test_unsafe_negation_rejected(self, session):
        with pytest.raises(UnsupportedFeatureError):
            translate_with_negation(
                session.metaevaluator,
                "empl(E, N, S, D), not(works_dir_for(Z, smiley))",
                session.constraints,
            )

    def test_bare_negation_rejected(self, session):
        with pytest.raises(UnsupportedFeatureError):
            translate_with_negation(
                session.metaevaluator,
                "not(works_dir_for(N, smiley))",
                session.constraints,
            )

    def test_two_negations_rejected(self, session):
        with pytest.raises(UnsupportedFeatureError):
            translate_with_negation(
                session.metaevaluator,
                "empl(E, N, S, D), not(dept(D, F, M)), not(works_dir_for(N, x))",
                session.constraints,
            )

    def test_negation_with_fresh_inner_variables_rejected(self, session):
        # Fresh variables inside not(...) make the complement ambiguous.
        with pytest.raises(UnsupportedFeatureError):
            session.ask_with_negation(
                "empl(E, N, S, D), not((empl(E2, N, S2, D2), less(S2, 2000)))"
            )

    def test_negation_against_empty_side(self, session, org):
        # A contradictory negated view excludes nothing.
        session.consult("lowpaid(N) :- empl(_, N, S, _), less(S, 2000).")
        answers = session.ask_with_negation(
            "empl(E, N, S, D), not(lowpaid(N))"
        )
        assert {a["N"] for a in answers} == {e.nam for e in org.employees}


class TestStepwise:
    def test_matches_direct_evaluation(self, session, org):
        boss = org.root_manager_name()
        direct = session.ask(f"works_dir_for(X, {boss}), empl(_, X, S, _), less(S, 60000)")
        answers, stats = session.ask_stepwise(
            f"works_dir_for(X, {boss}), empl(_, X, S, _), less(S, 60000)"
        )
        assert {a["X"] for a in answers} == {a["X"] for a in direct}
        assert stats.queries_issued >= 1

    def test_mixed_internal_external(self, session, org):
        boss = org.root_manager_name()
        team = sorted(l for l, h in org.works_dir_for_pairs() if h == boss)
        session.assert_fact("specialist", team[0], "driving")
        answers, stats = session.ask_stepwise(
            f"works_dir_for(X, {boss}), specialist(X, driving)"
        )
        assert {a["X"] for a in answers} == {team[0]}
        assert stats.engine_calls >= 1

    def test_tuple_substitution_bounds_memory(self, session, org):
        # Live tuples never exceed the largest single partial result.
        answers, stats = session.ask_stepwise("empl(E, N, S, D), dept(D, F, M)")
        assert stats.max_live_tuples <= org.employee_count
        assert len(answers) == org.employee_count

    def test_cache_collapses_repeated_parameterisations(self, session, org):
        # Many employees share a department: the dept lookup per tuple
        # should hit the cache after the first occurrence.
        answers, stats = session.ask_stepwise("empl(E, N, S, D), dept(D, F, M)")
        assert stats.cache_hits > 0

    def test_ground_membership_check(self, session, org):
        employee = org.employees[0]
        answers, stats = session.ask_stepwise(
            f"empl({employee.eno}, {employee.nam}, S, D), "
            f"dept(D, F, M)"
        )
        assert len(answers) == 1
