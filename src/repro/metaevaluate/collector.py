"""Delayed execution and collection of database calls (paper section 4).

``metaevaluate`` must *simulate PROLOG's deduction procedure* without
executing database goals: view predicates are unfolded through their
clauses exactly as SLD resolution would, while goals addressing base
relations and comparison goals are **collected** instead of proven.  Each
complete derivation branch yields one conjunctive query — the set of
collected database calls and comparisons under the branch's substitution.

Non-recursive, purely conjunctive views produce exactly one branch;
disjunctive view definitions (several clauses) produce several (handled by
the extensions layer as DNF); recursion is detected through the call stack
and reported via :class:`RecursiveViewDetected` so the global optimizer can
choose an iteration strategy (paper section 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

from ..errors import MetaevaluationError, UnsupportedFeatureError
from ..prolog.knowledge_base import KnowledgeBase
from ..prolog.terms import (
    COMPARISON_PREDICATES,
    CUT,
    FAIL,
    TRUE,
    Atom,
    Struct,
    Term,
    Variable,
    conjuncts,
    goal_indicator,
    rename_apart,
    variables_of,
)
from ..prolog.unify import EMPTY_SUBSTITUTION, Substitution, unify
from ..schema.catalog import DatabaseSchema


class RecursiveViewDetected(MetaevaluationError):
    """Raised when unfolding re-enters a predicate already on the stack."""

    def __init__(self, indicator: tuple[str, int]):
        super().__init__(
            f"view {indicator[0]}/{indicator[1]} is recursive; "
            "use the recursion strategies of repro.coupling"
        )
        self.indicator = indicator


@dataclass
class CollectedQuery:
    """One derivation branch: collected calls under a final substitution."""

    dbcalls: list[Struct]
    comparisons: list[Struct]
    substitution: Substitution
    #: How many times each recursive indicator was unfolded on this branch.
    recursion_depths: dict[tuple[str, int], int] = field(default_factory=dict)

    def resolved_dbcalls(self) -> list[Struct]:
        """Database calls with the branch substitution applied.

        ``Substitution.apply`` is memoized per substitution node, so the
        repeated resolution the translator performs (per call here, then
        per target variable) costs one deep walk per distinct subterm.
        """
        return [self.substitution.apply(call) for call in self.dbcalls]  # type: ignore[misc]

    def resolved_comparisons(self) -> list[Struct]:
        return [self.substitution.apply(call) for call in self.comparisons]  # type: ignore[misc]


@dataclass(frozen=True)
class _ScopeExit:
    """Marker in the goal list: the unfolding of one call has finished.

    The ancestry stack must reflect the *call chain*, not the flat goal
    list — two sibling calls to the same view (``same_manager`` calls
    ``works_dir_for`` twice) are not recursion.  When a clause body is
    spliced into the goal list, a marker carrying the pre-call stack (and
    recursion-depth map) follows it, restoring the ancestry once the body
    has been fully unfolded.
    """

    stack: tuple[tuple[str, int], ...]


class GoalUnfolder:
    """Unfolds a goal into derivation branches, collecting database calls.

    Parameters
    ----------
    schema:
        Relations of ``schema`` (matched by name *and* arity) are database
        calls and are collected, never unfolded.
    kb:
        The internal knowledge base holding view definitions.
    recursion_budget:
        Maximum number of times any single recursive predicate may be
        unfolded on one branch.  ``None`` forbids recursion entirely
        (raising :class:`RecursiveViewDetected`), which is the behaviour of
        plain ``metaevaluate``; the recursion strategies pass a bound.
    extra_relations:
        Additional ``(name, arity) -> relation-name`` treated as database
        calls — used for intermediate relations created by ``setrel``.
    """

    def __init__(
        self,
        schema: DatabaseSchema,
        kb: KnowledgeBase,
        recursion_budget: Optional[int] = None,
        extra_relations: Optional[dict[tuple[str, int], str]] = None,
        max_branch_goals: int = 10_000,
    ):
        self.schema = schema
        self.kb = kb
        self.recursion_budget = recursion_budget
        self.extra_relations = dict(extra_relations or {})
        self.max_branch_goals = max_branch_goals

    # -- classification ----------------------------------------------------------

    def is_database_goal(self, goal: Term) -> bool:
        indicator = goal_indicator(goal)
        if indicator in self.extra_relations:
            return True
        name, arity = indicator
        if not self.schema.has_relation(name):
            return False
        return self.schema.relation(name).arity == arity

    def is_comparison_goal(self, goal: Term) -> bool:
        name, arity = goal_indicator(goal)
        return arity == 2 and name in COMPARISON_PREDICATES

    # -- unfolding ------------------------------------------------------------------

    def unfold(self, goal: Term) -> Iterator[CollectedQuery]:
        """All derivation branches for ``goal``."""
        yield from self._unfold_goals(
            conjuncts(goal), EMPTY_SUBSTITUTION, (), [], [], {}
        )

    def _unfold_goals(
        self,
        goals: list,
        subst: Substitution,
        stack: tuple[tuple[str, int], ...],
        dbcalls: list[Struct],
        comparisons: list[Struct],
        depths: dict[tuple[str, int], int],
    ) -> Iterator[CollectedQuery]:
        if len(dbcalls) + len(comparisons) > self.max_branch_goals:
            raise MetaevaluationError(
                f"branch exceeds {self.max_branch_goals} collected goals"
            )
        if not goals:
            yield CollectedQuery(
                list(dbcalls), list(comparisons), subst, dict(depths)
            )
            return

        goal, rest = goals[0], goals[1:]

        if isinstance(goal, _ScopeExit):
            # A call finished unfolding: restore its caller's ancestry.
            # Recursion depth counters are *not* restored — they report the
            # total number of recursive unfoldings along the branch.
            yield from self._unfold_goals(
                rest, subst, goal.stack, dbcalls, comparisons, depths
            )
            return

        goal = subst.walk(goal)

        if isinstance(goal, Variable):
            raise MetaevaluationError(f"unbound goal variable {goal}")

        if goal == TRUE or goal == CUT:
            # Cut has no effect on the *collection* semantics: the paper uses
            # it around metaevaluate itself, not inside view bodies.
            yield from self._unfold_goals(rest, subst, stack, dbcalls, comparisons, depths)
            return
        if goal == FAIL or goal == Atom("false"):
            return

        if isinstance(goal, Struct) and goal.functor == "," and goal.arity == 2:
            yield from self._unfold_goals(
                conjuncts(goal) + rest, subst, stack, dbcalls, comparisons, depths
            )
            return
        if isinstance(goal, Struct) and goal.functor == ";" and goal.arity == 2:
            left, right = goal.args
            yield from self._unfold_goals(
                [left] + rest, subst, stack, dbcalls, comparisons, depths
            )
            yield from self._unfold_goals(
                [right] + rest, subst, stack, dbcalls, comparisons, depths
            )
            return
        if isinstance(goal, Struct) and goal.functor == "not" and goal.arity == 1:
            raise UnsupportedFeatureError(
                "negation inside a metaevaluated goal is outside the "
                "conjunctive DBCL subset; see repro.extensions.negation"
            )

        if self.is_comparison_goal(goal):
            assert isinstance(goal, Struct)
            self._check_function_free(goal)
            comparisons.append(goal)
            yield from self._unfold_goals(rest, subst, stack, dbcalls, comparisons, depths)
            comparisons.pop()
            return

        if self.is_database_goal(goal):
            assert isinstance(goal, Struct)
            self._check_function_free(goal)
            dbcalls.append(goal)
            yield from self._unfold_goals(rest, subst, stack, dbcalls, comparisons, depths)
            dbcalls.pop()
            return

        # A view predicate: unfold through its clauses.
        indicator = goal_indicator(goal)
        clauses = self.kb.all_clauses(indicator)
        if not clauses:
            raise UnsupportedFeatureError(
                f"goal {indicator[0]}/{indicator[1]} is neither a database "
                "relation, a comparison, nor a defined view"
            )

        if indicator in stack:
            if self.recursion_budget is None:
                raise RecursiveViewDetected(indicator)
            if depths.get(indicator, 0) >= self.recursion_budget:
                return  # prune branches beyond the expansion bound
            depths = dict(depths)
            depths[indicator] = depths.get(indicator, 0) + 1

        inner_stack = stack + (indicator,)
        for clause in clauses:
            renamed = rename_apart(clause)
            unified = unify(goal, renamed.head, subst)
            if unified is None:
                continue
            yield from self._unfold_goals(
                renamed.body_goals() + [_ScopeExit(stack)] + rest,
                unified,
                inner_stack,
                dbcalls,
                comparisons,
                depths,
            )

    def _check_function_free(self, goal: Struct) -> None:
        for argument in goal.args:
            walked = argument
            if isinstance(walked, Struct):
                raise UnsupportedFeatureError(
                    f"embedded function symbol {walked.functor}/{walked.arity} "
                    f"in {goal.functor}: DBCL queries are function-free"
                )
