"""Builtin predicates for the Prolog engine.

Each builtin is a function ``(engine, goal, subst, depth) -> iterator of
substitutions``; yielding continues the proof with the extended
substitution.  The registry covers the control and data predicates the
paper's programs use: comparisons (``less/2`` …), ``not/1``, ``assert``/
``retract`` (the internal database), ``findall/3``, ``call/1``, ``is/2``
and structural inspection helpers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterator, Union

from ..errors import CutSignal, InstantiationError, PrologError
from .terms import (
    COMPARISON_PREDICATES,
    Atom,
    Clause,
    Number,
    PString,
    Struct,
    Term,
    Variable,
    conjuncts,
    is_constant,
    make_list,
    list_items,
)
from .unify import Substitution, unify

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .engine import Engine

BuiltinFunction = Callable[["Engine", Term, Substitution, int], Iterator[Substitution]]

ComparableValue = Union[int, float, str]


def _comparable_value(term: Term, predicate: str) -> ComparableValue:
    """Extract an orderable Python value from a ground term."""
    if isinstance(term, Number):
        return term.value
    if isinstance(term, Atom):
        return term.name
    if isinstance(term, PString):
        return term.value
    if isinstance(term, Variable):
        raise InstantiationError(f"{predicate}: argument {term} is unbound")
    raise PrologError(f"{predicate}: cannot compare non-constant term {term}")


def _values_comparable(left: ComparableValue, right: ComparableValue) -> bool:
    """Numbers compare with numbers, strings with strings."""
    left_numeric = isinstance(left, (int, float))
    right_numeric = isinstance(right, (int, float))
    return left_numeric == right_numeric


def _make_comparison(predicate: str) -> BuiltinFunction:
    def comparison(engine: "Engine", goal: Term, subst: Substitution, depth: int):
        assert isinstance(goal, Struct)
        left = subst.apply(goal.args[0])
        right = subst.apply(goal.args[1])
        if predicate == "eq":
            unified = unify(left, right, subst)
            if unified is not None:
                yield unified
            return
        if predicate == "neq":
            # Negation of unifiability on ground terms; on unbound terms we
            # follow the standard "not identical" reading used by the paper's
            # neq(X, Y) goals, which are ground by the time they run.
            if isinstance(left, Variable) or isinstance(right, Variable):
                raise InstantiationError("neq/2: arguments must be bound")
            if left != right:
                yield subst
            return
        a = _comparable_value(left, predicate)
        b = _comparable_value(right, predicate)
        if not _values_comparable(a, b):
            raise PrologError(
                f"{predicate}: cannot order {left} against {right}"
            )
        ok = {
            "less": a < b,
            "greater": a > b,
            "leq": a <= b,
            "geq": a >= b,
        }[predicate]
        if ok:
            yield subst

    comparison.__name__ = f"builtin_{predicate}"
    return comparison


def builtin_not(engine: "Engine", goal: Term, subst: Substitution, depth: int):
    """``not/1``: negation as failure."""
    assert isinstance(goal, Struct)
    inner = subst.apply(goal.args[0])
    try:
        for _ in engine.prove([inner], subst, depth + 1):
            return
    except CutSignal:
        return
    yield subst


def builtin_call(engine: "Engine", goal: Term, subst: Substitution, depth: int):
    """``call/1``: metacall, opaque to cut."""
    assert isinstance(goal, Struct)
    inner = subst.walk(goal.args[0])
    if isinstance(inner, Variable):
        raise InstantiationError("call/1: unbound goal")
    try:
        yield from engine.prove([inner], subst, depth + 1)
    except CutSignal:
        return


def builtin_findall(engine: "Engine", goal: Term, subst: Substitution, depth: int):
    """``findall(Template, Goal, List)``."""
    assert isinstance(goal, Struct)
    template, inner, out = goal.args
    collected: list[Term] = []
    for solution in engine.prove([subst.walk(inner)], subst, depth + 1):
        collected.append(solution.apply(template))
    unified = unify(out, make_list(collected), subst)
    if unified is not None:
        yield unified


def builtin_between(engine: "Engine", goal: Term, subst: Substitution, depth: int):
    """``between(Low, High, X)``: enumerate integers."""
    assert isinstance(goal, Struct)
    low = subst.apply(goal.args[0])
    high = subst.apply(goal.args[1])
    if not isinstance(low, Number) or not isinstance(high, Number):
        raise InstantiationError("between/3: bounds must be integers")
    for value in range(int(low.value), int(high.value) + 1):
        unified = unify(goal.args[2], Number(value), subst)
        if unified is not None:
            yield unified


def _evaluate_arith(term: Term, subst: Substitution) -> Union[int, float]:
    term = subst.walk(term)
    if isinstance(term, Number):
        return term.value
    if isinstance(term, Variable):
        raise InstantiationError(f"is/2: unbound variable {term}")
    if isinstance(term, Struct):
        if term.arity == 2:
            a = _evaluate_arith(term.args[0], subst)
            b = _evaluate_arith(term.args[1], subst)
            if term.functor == "+":
                return a + b
            if term.functor == "-":
                return a - b
            if term.functor == "*":
                return a * b
            if term.functor == "/":
                return a / b
            if term.functor == "mod":
                return a % b
        if term.arity == 1 and term.functor == "-":
            return -_evaluate_arith(term.args[0], subst)
    raise PrologError(f"is/2: cannot evaluate {term}")


def builtin_is(engine: "Engine", goal: Term, subst: Substitution, depth: int):
    """``X is Expr``: arithmetic evaluation."""
    assert isinstance(goal, Struct)
    value = _evaluate_arith(goal.args[1], subst)
    unified = unify(goal.args[0], Number(value), subst)
    if unified is not None:
        yield unified


def builtin_assertz(engine: "Engine", goal: Term, subst: Substitution, depth: int):
    assert isinstance(goal, Struct)
    yield from _do_assert(engine, goal, subst, front=False)


def builtin_asserta(engine: "Engine", goal: Term, subst: Substitution, depth: int):
    assert isinstance(goal, Struct)
    yield from _do_assert(engine, goal, subst, front=True)


def _clause_from_term(term: Term) -> Clause:
    if isinstance(term, Struct) and term.functor == ":-" and term.arity == 2:
        return Clause(term.args[0], term.args[1])
    return Clause(term)


def _do_assert(engine: "Engine", goal: Struct, subst: Substitution, front: bool):
    clause_term = subst.apply(goal.args[0])
    clause = _clause_from_term(clause_term)
    if front:
        engine.kb.asserta(clause)
    else:
        engine.kb.assertz(clause)
    yield subst


def builtin_retract(engine: "Engine", goal: Term, subst: Substitution, depth: int):
    assert isinstance(goal, Struct)
    clause = _clause_from_term(subst.apply(goal.args[0]))
    if engine.kb.retract(clause):
        yield subst


def builtin_var(engine: "Engine", goal: Term, subst: Substitution, depth: int):
    assert isinstance(goal, Struct)
    if isinstance(subst.walk(goal.args[0]), Variable):
        yield subst


def builtin_nonvar(engine: "Engine", goal: Term, subst: Substitution, depth: int):
    assert isinstance(goal, Struct)
    if not isinstance(subst.walk(goal.args[0]), Variable):
        yield subst


def builtin_atom(engine: "Engine", goal: Term, subst: Substitution, depth: int):
    assert isinstance(goal, Struct)
    if isinstance(subst.walk(goal.args[0]), Atom):
        yield subst


def builtin_number(engine: "Engine", goal: Term, subst: Substitution, depth: int):
    assert isinstance(goal, Struct)
    if isinstance(subst.walk(goal.args[0]), Number):
        yield subst


def builtin_ground(engine: "Engine", goal: Term, subst: Substitution, depth: int):
    assert isinstance(goal, Struct)
    from .terms import variables_of

    if not variables_of(subst.apply(goal.args[0])):
        yield subst


def builtin_member(engine: "Engine", goal: Term, subst: Substitution, depth: int):
    """``member(X, List)``, solving both directions over proper lists."""
    assert isinstance(goal, Struct)
    list_term = subst.apply(goal.args[1])
    try:
        items = list_items(list_term)
    except ValueError as exc:
        raise InstantiationError(f"member/2: {exc}") from exc
    for item in items:
        unified = unify(goal.args[0], item, subst)
        if unified is not None:
            yield unified


def builtin_length(engine: "Engine", goal: Term, subst: Substitution, depth: int):
    assert isinstance(goal, Struct)
    list_term = subst.apply(goal.args[0])
    try:
        items = list_items(list_term)
    except ValueError as exc:
        raise InstantiationError(f"length/2: {exc}") from exc
    unified = unify(goal.args[1], Number(len(items)), subst)
    if unified is not None:
        yield unified


#: The default builtin registry installed into every engine.
DEFAULT_BUILTINS: dict[tuple[str, int], BuiltinFunction] = {
    ("not", 1): builtin_not,
    ("call", 1): builtin_call,
    ("findall", 3): builtin_findall,
    ("between", 3): builtin_between,
    ("is", 2): builtin_is,
    ("assert", 1): builtin_assertz,
    ("assertz", 1): builtin_assertz,
    ("asserta", 1): builtin_asserta,
    ("retract", 1): builtin_retract,
    ("var", 1): builtin_var,
    ("nonvar", 1): builtin_nonvar,
    ("atom", 1): builtin_atom,
    ("number", 1): builtin_number,
    ("ground", 1): builtin_ground,
    ("member", 2): builtin_member,
    ("length", 2): builtin_length,
}
for _name in COMPARISON_PREDICATES:
    DEFAULT_BUILTINS[(_name, 2)] = _make_comparison(_name)
