"""Unit tests for the Prolog term representation."""

import pytest

from repro.prolog.terms import (
    EMPTY_LIST,
    TRUE,
    Atom,
    Clause,
    Number,
    PString,
    Struct,
    Variable,
    atom,
    clause_variables,
    conjoin,
    conjuncts,
    constant_value,
    disjuncts,
    fresh_var,
    goal_indicator,
    is_callable,
    is_constant,
    is_list,
    list_items,
    make_list,
    rename_apart,
    struct,
    subterms,
    term_size,
    var,
    variables_of,
)


pytestmark = pytest.mark.smoke


class TestConstruction:
    def test_atom_equality(self):
        assert Atom("empl") == Atom("empl")
        assert Atom("empl") != Atom("dept")

    def test_number_equality(self):
        assert Number(40000) == Number(40000)
        assert Number(1) != Number(1.5)

    def test_struct_builder(self):
        term = struct("empl", atom("e1"), var("X"))
        assert term.functor == "empl"
        assert term.arity == 2
        assert term.indicator == ("empl", 2)

    def test_variables_distinct_by_ordinal(self):
        assert var("X") != var("X", 1)
        assert var("X", 1) == Variable("X", 1)

    def test_fresh_vars_are_distinct(self):
        a = fresh_var("X")
        b = fresh_var("X")
        assert a != b

    def test_terms_hashable(self):
        seen = {atom("a"), struct("f", atom("a")), var("X"), Number(3)}
        assert len(seen) == 4

    def test_anonymous_variable_detection(self):
        assert Variable("_Anon1").is_anonymous
        assert not Variable("X").is_anonymous


class TestLists:
    def test_make_and_decompose(self):
        lst = make_list([atom("a"), atom("b")])
        assert is_list(lst)
        assert list_items(lst) == [atom("a"), atom("b")]

    def test_empty_list(self):
        assert is_list(EMPTY_LIST)
        assert list_items(EMPTY_LIST) == []

    def test_improper_list_rejected(self):
        improper = Struct(".", (atom("a"), atom("b")))
        assert not is_list(improper)
        with pytest.raises(ValueError):
            list_items(improper)

    def test_list_with_tail(self):
        lst = make_list([atom("a")], tail=var("T"))
        assert not is_list(lst)


class TestInspection:
    def test_is_constant(self):
        assert is_constant(atom("a"))
        assert is_constant(Number(1))
        assert is_constant(PString("s"))
        assert not is_constant(var("X"))
        assert not is_constant(struct("f", atom("a")))

    def test_constant_value(self):
        assert constant_value(atom("a")) == "a"
        assert constant_value(Number(3)) == 3
        assert constant_value(PString("s")) == "s"
        with pytest.raises(ValueError):
            constant_value(var("X"))

    def test_is_callable(self):
        assert is_callable(atom("a"))
        assert is_callable(struct("f", var("X")))
        assert not is_callable(Number(1))

    def test_goal_indicator(self):
        assert goal_indicator(atom("halt")) == ("halt", 0)
        assert goal_indicator(struct("empl", var("X"))) == ("empl", 1)
        with pytest.raises(ValueError):
            goal_indicator(Number(1))

    def test_variables_of_order_and_dedup(self):
        term = struct("f", var("X"), struct("g", var("Y"), var("X")))
        assert variables_of(term) == [var("X"), var("Y")]

    def test_term_size(self):
        assert term_size(atom("a")) == 1
        assert term_size(struct("f", atom("a"), atom("b"))) == 3

    def test_subterms_preorder(self):
        term = struct("f", atom("a"), struct("g", var("X")))
        listing = list(subterms(term))
        assert listing[0] == term
        assert atom("a") in listing
        assert var("X") in listing


class TestConjunctions:
    def test_conjuncts_flattening(self):
        term = struct(",", atom("a"), struct(",", atom("b"), atom("c")))
        assert conjuncts(term) == [atom("a"), atom("b"), atom("c")]

    def test_conjuncts_left_nested(self):
        term = struct(",", struct(",", atom("a"), atom("b")), atom("c"))
        assert conjuncts(term) == [atom("a"), atom("b"), atom("c")]

    def test_conjoin_roundtrip(self):
        goals = [atom("a"), atom("b"), atom("c")]
        assert conjuncts(conjoin(goals)) == goals

    def test_conjoin_empty_is_true(self):
        assert conjoin([]) == TRUE

    def test_conjoin_single(self):
        assert conjoin([atom("a")]) == atom("a")

    def test_disjuncts(self):
        term = struct(";", atom("a"), struct(";", atom("b"), atom("c")))
        assert disjuncts(term) == [atom("a"), atom("b"), atom("c")]


class TestClauses:
    def test_fact(self):
        clause = Clause(struct("empl", atom("e1")))
        assert clause.is_fact
        assert clause.body_goals() == []
        assert clause.indicator == ("empl", 1)

    def test_rule_body_goals(self):
        body = struct(",", struct("p", var("X")), struct("q", var("X")))
        clause = Clause(struct("r", var("X")), body)
        assert not clause.is_fact
        assert len(clause.body_goals()) == 2

    def test_clause_variables(self):
        clause = Clause(
            struct("r", var("X")),
            struct(",", struct("p", var("X")), struct("q", var("Y"))),
        )
        assert clause_variables(clause) == [var("X"), var("Y")]

    def test_rename_apart_fresh(self):
        clause = Clause(
            struct("r", var("X")),
            struct("p", var("X"), var("Y")),
        )
        renamed = rename_apart(clause)
        original_vars = set(clause_variables(clause))
        renamed_vars = set(clause_variables(renamed))
        assert original_vars.isdisjoint(renamed_vars)

    def test_rename_apart_preserves_sharing(self):
        clause = Clause(struct("r", var("X")), struct("p", var("X"), var("X")))
        renamed = rename_apart(clause)
        assert isinstance(renamed.body, Struct)
        head_var = renamed.head.args[0]
        assert renamed.body.args == (head_var, head_var)

    def test_rename_apart_twice_differs(self):
        clause = Clause(struct("r", var("X")))
        first = rename_apart(clause)
        second = rename_apart(clause)
        assert first.head != second.head
