"""Concrete-syntax rendering of SQL syntax trees (``sqlprint``).

Two layouts are provided: the paper's display format (uppercase keywords,
parenthesised conjuncts joined by AND, one clause per line) and a compact
single-line form for logs.  Dialect variations live in
:mod:`repro.sql.dialects`.
"""

from __future__ import annotations

from typing import Optional

from ..errors import TranslationError
from .ast import (
    Condition,
    InValuesCondition,
    NotInCondition,
    RecursiveQuery,
    SqlQuery,
    UnionQuery,
)


def _render_not_in(condition: NotInCondition, dialect: Optional[object]) -> str:
    columns = ", ".join(str(c) for c in condition.columns)
    if len(condition.columns) > 1:
        columns = f"({columns})"
    subquery = print_sql(condition.subquery, oneline=True, dialect=dialect)
    return f"{columns} NOT IN ({subquery})"


def _render_in_values(condition: InValuesCondition) -> str:
    """``(c1, c2) IN (VALUES (?, ?), …)`` — the parameter-batch membership.

    Every placeholder prints as ``?``; the bind order is the row-major
    walk of ``parameter_rows`` (see ``SqlQuery.parameter_order``).
    """
    columns = ", ".join(str(c) for c in condition.columns)
    if len(condition.columns) > 1:
        columns = f"({columns})"
    row = "(" + ", ".join("?" for _ in condition.columns) + ")"
    rows = ", ".join(row for _ in condition.parameter_rows)
    return f"{columns} IN (VALUES {rows})"


def print_sql(
    query: SqlQuery,
    oneline: bool = False,
    dialect: Optional[object] = None,
) -> str:
    """Render a query block as SQL text.

    ``dialect`` may override operator spelling and quoting (see
    :mod:`repro.sql.dialects`); ``None`` uses the paper's plain SQL.
    """
    if query.is_empty:
        # Never sent to a DBMS, but printable for traces: a query that is
        # syntactically valid and returns nothing.
        return "SELECT NULL WHERE 1 = 0"

    render_condition = (
        dialect.render_condition if dialect is not None else _default_condition
    )

    select_keyword = "SELECT DISTINCT" if query.distinct else "SELECT"
    select_clause = ", ".join(str(item) for item in query.select) or "*"
    from_clause = ", ".join(str(table) for table in query.from_tables)
    conjuncts = [render_condition(c) for c in query.where]
    conjuncts += [_render_in_values(c) for c in query.batch_conditions]
    conjuncts += [_render_not_in(c, dialect) for c in query.extra_conditions]

    if oneline:
        text = f"{select_keyword} {select_clause} FROM {from_clause}"
        if conjuncts:
            text += " WHERE " + " AND ".join(conjuncts)
        return text

    lines = [f"{select_keyword} {select_clause}", f"FROM {from_clause}"]
    if conjuncts:
        lines.append("WHERE " + " AND\n      ".join(conjuncts))
    return "\n".join(lines)


def _default_condition(condition: Condition) -> str:
    return str(condition)


def print_recursive(
    query: RecursiveQuery,
    oneline: bool = False,
    dialect: Optional[object] = None,
) -> str:
    """Render a ``WITH RECURSIVE`` statement.

    The component blocks print through :func:`print_sql`, so dialect
    condition overrides apply inside the CTE as well.  Bind-parameter
    order is base, then step, then final — exactly
    :meth:`RecursiveQuery.parameter_order`.
    """
    header = f"WITH RECURSIVE {query.name}({', '.join(query.columns)}) AS ("
    base = print_sql(query.base, oneline=True, dialect=dialect)
    step = print_sql(query.step, oneline=True, dialect=dialect)
    final = print_sql(query.final, oneline=True, dialect=dialect)
    union = "UNION ALL" if query.union_all else "UNION"
    if oneline:
        return f"{header}{base} {union} {step}) {final}"
    return "\n".join(
        [header, f"    {base}", f"    {union}", f"    {step}", f") {final}"]
    )


def print_union(union: UnionQuery, oneline: bool = False) -> str:
    """Render a UNION of blocks (disjunction extension)."""
    live = union.live_branches
    if not live:
        return "SELECT NULL WHERE 1 = 0"
    separator = " UNION " if oneline else "\nUNION\n"
    return separator.join(print_sql(branch, oneline=oneline) for branch in live)
