"""Functional-dependency chase over DBCL tableaux (paper section 6.2).

DBCL was designed tableau-like precisely so FDs can simplify it "using
variations of the chase process" (Aho–Sagiv–Ullman 1979).  The engine here
follows the fast congruence-closure formulation of Downey–Sethi–Tarjan
1980 that the paper cites, adapted — as the paper notes — from lossless-
join testing to query simplification:

* a union-find structure maintains equivalence classes of tableau symbols;
* for each FD ``R: X -> Y``, rows tagged ``R`` that agree (up to the
  current classes) on all ``X`` cells get their ``Y`` cells merged;
* merging two distinct constants is a **contradiction** (empty result);
* at the fixpoint, the derived renaming is applied and duplicate rows are
  *actively removed* (the paper's addition over the plain chase).

Cross-column care: symbols may appear in more than one tableau column
(``mgr`` joined with ``eno``), so classes live on symbols, never columns,
and renaming rewrites comparisons too (note the renaming in Example 6-1's
Relcomparisons).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..dbcl.predicate import DbclPredicate
from ..dbcl.symbols import (
    ConstSymbol,
    JoinableSymbol,
    TargetSymbol,
    VarSymbol,
    is_star,
)
from ..schema.constraints import ConstraintSet, FuncDep


@dataclass
class ChaseOutcome:
    """Result of one chase run."""

    predicate: DbclPredicate
    changed: bool = False
    contradiction: bool = False
    reason: str = ""
    renamings: dict[JoinableSymbol, JoinableSymbol] = field(default_factory=dict)
    rows_removed: int = 0


class _UnionFind:
    """Union-find over symbols with representative preference.

    Constants outrank targets outrank plain variables, so constant
    propagation and target preservation fall out of representative choice.
    Merging two distinct constants sets :attr:`contradiction`; merging two
    distinct target symbols is recorded separately (targets cannot be
    renamed — the pipeline keeps them apart and loses only optimization,
    never soundness).
    """

    def __init__(self):
        self._parent: dict[JoinableSymbol, JoinableSymbol] = {}
        self.contradiction: Optional[str] = None
        self.blocked_target_merges: list[tuple[TargetSymbol, TargetSymbol]] = []

    def find(self, symbol: JoinableSymbol) -> JoinableSymbol:
        root = symbol
        while self._parent.get(root, root) != root:
            root = self._parent[root]
        # Path compression.
        while self._parent.get(symbol, symbol) != root:
            symbol, self._parent[symbol] = self._parent[symbol], root
        return root

    @staticmethod
    def _rank(symbol: JoinableSymbol) -> int:
        if isinstance(symbol, ConstSymbol):
            return 2
        if isinstance(symbol, TargetSymbol):
            return 1
        return 0

    def union(self, a: JoinableSymbol, b: JoinableSymbol) -> bool:
        """Merge the classes of ``a`` and ``b``; True if anything changed."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        rank_a, rank_b = self._rank(ra), self._rank(rb)
        if rank_a == 2 and rank_b == 2:
            self.contradiction = f"chase equates constants {ra} and {rb}"
            return False
        if rank_a == 1 and rank_b == 1:
            self.blocked_target_merges.append((ra, rb))  # type: ignore[arg-type]
            return False
        if rank_a < rank_b or (rank_a == rank_b and str(ra) > str(rb)):
            ra, rb = rb, ra
        self._parent[rb] = ra
        return True


def chase(
    predicate: DbclPredicate,
    constraints: ConstraintSet,
    max_rounds: int = 1000,
) -> ChaseOutcome:
    """Run the FD chase to fixpoint and remove duplicate rows."""
    uf = _UnionFind()
    schema = predicate.schema

    funcdeps_by_tag: dict[str, list[FuncDep]] = {}
    for row in predicate.rows:
        if row.tag not in funcdeps_by_tag:
            funcdeps_by_tag[row.tag] = constraints.funcdeps_of(row.tag)

    def cell(row_index: int, attribute: str) -> JoinableSymbol:
        column = schema.column_of(attribute)
        entry = predicate.rows[row_index].entries[column]
        assert not is_star(entry)
        return uf.find(entry)  # type: ignore[arg-type]

    rows_by_tag: dict[str, list[int]] = {}
    for index, row in enumerate(predicate.rows):
        rows_by_tag.setdefault(row.tag, []).append(index)

    changed_any = False
    for _round in range(max_rounds):
        changed_this_round = False
        for tag, row_indices in rows_by_tag.items():
            for fd in funcdeps_by_tag.get(tag, ()):
                if fd.is_trivial:
                    continue
                # Group rows by their (canonicalised) LHS cells.
                groups: dict[tuple, list[int]] = {}
                for row_index in row_indices:
                    key = tuple(cell(row_index, a) for a in fd.lhs)
                    groups.setdefault(key, []).append(row_index)
                for group in groups.values():
                    if len(group) < 2:
                        continue
                    anchor = group[0]
                    for other in group[1:]:
                        for attribute in fd.rhs:
                            merged = uf.union(
                                cell(anchor, attribute), cell(other, attribute)
                            )
                            if uf.contradiction:
                                return ChaseOutcome(
                                    predicate,
                                    changed=changed_any,
                                    contradiction=True,
                                    reason=uf.contradiction,
                                )
                            changed_this_round = changed_this_round or merged
        if not changed_this_round:
            break
        changed_any = True

    # Build the renaming from the union-find classes.
    renamings: dict[JoinableSymbol, JoinableSymbol] = {}
    for symbol in predicate.occurrences():
        representative = uf.find(symbol)
        if representative != symbol and not isinstance(symbol, TargetSymbol):
            renamings[symbol] = representative

    if not renamings:
        return ChaseOutcome(predicate, changed=False)

    renamed = predicate.rename(renamings)
    deduped = renamed.dedupe_rows()
    rows_removed = len(renamed.rows) - len(deduped.rows)
    return ChaseOutcome(
        deduped.dedupe_comparisons(),
        changed=True,
        renamings=renamings,
        rows_removed=rows_removed,
    )
