"""Stepwise evaluation with tuple substitution (paper section 7).

When database references are interleaved with embedded Prolog predicates
that SQL cannot express, "several queries have to be issued, and the
interaction between their results must be evaluated in PROLOG".  The
naive approach materialises every partial result — which "may not even
fit in main memory" — so the paper proposes "a step-wise evaluation
process that evaluates the partial queries ... using what amounts to a
version of tuple substitution [Wong and Youssefi 1976]": trade extra
queries for bounded intermediate storage.

:class:`StepwiseEvaluator` walks the conjunction goal by goal, carrying a
set of partial bindings (tuples).  Database-translatable goals are
metaevaluated *per partial binding* with the bound values substituted as
constants (a result cache collapses duplicate parameterisations);
internal goals extend bindings through the Prolog engine.  Statistics
record the queries issued and the maximum number of live tuples, the
space/time trade-off the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from ..coupling.global_opt import ResultCache, classify_conjuncts
from ..dbms.internal_db import term_to_value, value_to_term
from ..dbms.sqlite_backend import ExternalDatabase
from ..errors import CouplingError
from ..metaevaluate.translator import Metaevaluator
from ..optimize.pipeline import SimplifyOptions, simplify
from ..prolog.engine import Engine
from ..prolog.reader import parse_goal
from ..prolog.terms import Term, Variable, conjuncts, variables_of
from ..prolog.unify import EMPTY_SUBSTITUTION, Substitution
from ..schema.constraints import ConstraintSet
from ..sql.translate import translate

Value = Union[int, float, str, None]


@dataclass
class StepwiseStats:
    """The space/time trade-off measurements."""

    queries_issued: int = 0
    cache_hits: int = 0
    max_live_tuples: int = 0
    engine_calls: int = 0

    def observe_tuples(self, count: int) -> None:
        self.max_live_tuples = max(self.max_live_tuples, count)


class StepwiseEvaluator:
    """Evaluates mixed conjunctions goal-by-goal with tuple substitution."""

    def __init__(
        self,
        metaevaluator: Metaevaluator,
        engine: Engine,
        database: ExternalDatabase,
        constraints: ConstraintSet,
        options: SimplifyOptions = SimplifyOptions(),
    ):
        self.metaevaluator = metaevaluator
        self.engine = engine
        self.database = database
        self.constraints = constraints
        self.options = options
        self.cache = ResultCache()

    def evaluate(
        self, goal: Union[Term, str], max_solutions: Optional[int] = None
    ) -> tuple[list[dict[str, Value]], StepwiseStats]:
        """All answers to ``goal`` plus evaluation statistics."""
        if isinstance(goal, str):
            goal = parse_goal(goal)
        stats = StepwiseStats()
        goal_vars = [v for v in variables_of(goal) if not v.is_anonymous]

        classified = classify_conjuncts(
            self.metaevaluator.kb, self.metaevaluator.schema, goal
        )
        substitutions: list[Substitution] = [EMPTY_SUBSTITUTION]
        for subgoal, kind in classified:
            if not substitutions:
                break
            if kind in ("external", "comparison"):
                substitutions = self._extend_external(subgoal, substitutions, stats)
            elif kind == "internal":
                substitutions = self._extend_internal(subgoal, substitutions, stats)
            else:
                raise CouplingError(
                    f"stepwise evaluation cannot handle {kind} goal {subgoal}"
                )
            stats.observe_tuples(len(substitutions))

        answers = []
        seen: set[tuple] = set()
        for subst in substitutions:
            answer = {}
            for variable in goal_vars:
                term = subst.apply(variable)
                if isinstance(term, Variable):
                    answer[variable.name] = None
                else:
                    answer[variable.name] = term_to_value(term)
            key = tuple(sorted(answer.items()))
            if key not in seen:
                seen.add(key)
                answers.append(answer)
            if max_solutions is not None and len(answers) >= max_solutions:
                break
        return answers, stats

    # -- goal extension --------------------------------------------------------------

    def _extend_external(
        self,
        subgoal: Term,
        substitutions: list[Substitution],
        stats: StepwiseStats,
    ) -> list[Substitution]:
        extended: list[Substitution] = []
        for subst in substitutions:
            instantiated = subst.apply(subgoal)
            free = [v for v in variables_of(instantiated) if not v.is_anonymous]
            if not free:
                # Fully ground: a membership test.
                if self._ground_holds(instantiated, stats):
                    extended.append(subst)
                continue
            predicate = self.metaevaluator.metaevaluate(
                instantiated, targets=free
            )
            result = simplify(predicate, self.constraints, self.options)
            if result.is_empty:
                continue
            rows = self.cache.lookup(result.predicate)
            if rows is None:
                rows = self.database.execute(
                    translate(result.predicate, distinct=True)
                )
                stats.queries_issued += 1
                self.cache.store(result.predicate, rows)
            else:
                stats.cache_hits += 1
            names = [t.name for t in result.predicate.target_symbols()]
            by_name = {v.name: v for v in free}
            for row in rows:
                candidate = subst
                for name, value in zip(names, row):
                    candidate = candidate.bind(by_name[name], value_to_term(value))
                extended.append(candidate)
        return extended

    def _ground_holds(self, instantiated: Term, stats: StepwiseStats) -> bool:
        from ..prolog.terms import COMPARISON_PREDICATES, goal_indicator

        name, arity = goal_indicator(instantiated)
        if arity == 2 and name in COMPARISON_PREDICATES:
            stats.engine_calls += 1
            return self.engine.succeeds(instantiated)
        predicate = self.metaevaluator.metaevaluate(instantiated, targets=[])
        result = simplify(predicate, self.constraints, self.options)
        if result.is_empty:
            return False
        rows = self.cache.lookup(result.predicate)
        if rows is None:
            rows = self.database.execute(
                translate(result.predicate, distinct=True)
            )
            stats.queries_issued += 1
            self.cache.store(result.predicate, rows)
        else:
            stats.cache_hits += 1
        return bool(rows)

    def _extend_internal(
        self,
        subgoal: Term,
        substitutions: list[Substitution],
        stats: StepwiseStats,
    ) -> list[Substitution]:
        extended: list[Substitution] = []
        for subst in substitutions:
            instantiated = subst.apply(subgoal)
            stats.engine_calls += 1
            for binding in self.engine.solve(instantiated):
                candidate = subst
                for variable, term in binding.items():
                    candidate = candidate.bind(variable, term)
                extended.append(candidate)
        return extended
