"""The query tracing and metrics layer (ROADMAP E20).

Covers the per-ask span lifecycle (phase timings, plan-cache outcome,
recursion strategy + reason, resilience events), the lock-striped trace
ring (wraparound, the 4-thread tear-freedom hammer), the disabled-tracer
zero-allocation guarantee, the injected wall-clock provider, the
slow-query log with its on-demand ``EXPLAIN QUERY PLAN``, the ``on_span``
callback / ``export_trace`` sinks, and the ``session.stats()`` JSON
round-trip normalization.
"""

import json
import threading

import pytest

import repro.observe.tracer as tracer_module
from repro.coupling import PrologDbSession
from repro.coupling.global_opt import CachePolicy, shape_digest
from repro.dbms import generate_org
from repro.observe import AskTrace, TraceRing, Tracer
from repro.resilience.faults import (
    FaultEvent,
    FaultInjectingBackend,
    FaultSchedule,
)
from repro.schema import ALL_VIEWS_SOURCE
from repro.schema.empdep import empdep_constraints, empdep_schema

pytestmark = pytest.mark.smoke


def answer_set(answers):
    return {frozenset(a.items()) for a in answers}


def make_session(**kwargs) -> PrologDbSession:
    session = PrologDbSession(**kwargs)
    session.load_org(generate_org(depth=2, branching=2, staff_per_dept=3, seed=13))
    session.consult(ALL_VIEWS_SOURCE)
    return session


@pytest.fixture()
def session():
    session = make_session()
    yield session
    session.close()


def an_employee(session) -> str:
    return session.database.execute("SELECT nam FROM empl LIMIT 1")[0][0]


# -- span lifecycle -----------------------------------------------------------------


class TestAskSpans:
    def test_every_ask_emits_one_trace(self, session):
        for _ in range(3):
            session.ask("works_dir_for(X, Y)")
        traces = session.traces()
        assert len(traces) == 3
        assert [t["span_id"] for t in traces] == [0, 1, 2]

    def test_cold_ask_records_compile_phases(self, session):
        session.ask("works_dir_for(X, Y)")
        record = session.traces()[0]
        assert record["plan_cache"] == "miss"
        assert record["plan_kind"] == "external"
        for phase in ("classify", "metaevaluate", "optimize", "translate"):
            assert record["phases_ms"][phase] >= 0.0
        assert record["statements"] >= 1
        assert record["sql"].startswith("SELECT")
        assert record["rows"] >= 1
        assert record["answers"] >= 1

    def test_warm_ask_records_hit_and_shape(self, session):
        name = an_employee(session)
        session.ask(f"works_dir_for(X, {name})")
        session.ask(f"works_dir_for(X, {name})")
        session.ask(f"works_dir_for(X, {name})")
        warm = session.traces()[-1]
        assert warm["plan_cache"] == "hit"
        assert warm["plan_kind"] == "external"
        assert warm["shape"] is not None
        assert "shape" in warm["phases_ms"]
        assert warm["duration_ms"] > 0.0

    def test_recursion_decision_in_trace(self, session):
        name = an_employee(session)
        session.ask(f"works_for({name}, X)")
        record = session.traces()[-1]
        assert record["plan_kind"] == "recursive"
        decision = record["recursion"]
        assert decision["strategy"] in (
            "interval", "cte", "topdown", "bottomup", "auto", "memory"
        )
        assert isinstance(decision["reason"], str) and decision["reason"]
        stats_strategy = session.stats()["recursion_plans"]["last_strategy"]
        assert decision["strategy"] == stats_strategy

    def test_deadline_remaining_recorded(self, session):
        session.ask("works_dir_for(X, Y)", deadline=30.0)
        record = session.traces()[-1]
        assert 0.0 < record["deadline_remaining"] <= 30.0

    def test_error_recorded_and_span_still_committed(self, session):
        with pytest.raises(Exception):
            # recursive views must be called alone: typed CouplingError
            session.ask("works_for(X, Y), works_dir_for(X, Z)")
        record = session.traces()[-1]
        assert "CouplingError" in record["error"]
        assert record["answers"] is None

    def test_batched_group_expands_to_member_records(self, session):
        names = [
            row[0]
            for row in session.database.execute("SELECT nam FROM empl LIMIT 4")
        ]
        goals = [f"works_dir_for(X, {name})" for name in names]
        session.ask_many(goals)  # warm-up: serial compiles
        serial = [session.ask(goal) for goal in goals]
        before = len([t for t in session.traces() if t["batched"]])
        batched = session.ask_many(goals)
        assert [answer_set(b) for b in batched] == [
            answer_set(s) for s in serial
        ]
        records = [t for t in session.traces() if t["batched"]]
        assert len(records) == before + len(goals)
        group = records[-len(goals):]
        # one record per member goal, consecutive span ids, shared batch
        assert [r["span_id"] for r in group] == list(
            range(group[0]["span_id"], group[0]["span_id"] + len(goals))
        )
        for record, goal, answers in zip(group, goals, batched):
            assert record["goal"] == goal
            assert record["answers"] == len(answers)
            assert record["batch_size"] == len(goals)
            assert record["plan_cache"] == "hit"

    def test_resilience_events_attributed_to_span(self):
        schema = empdep_schema()
        constraints = empdep_constraints(schema)
        database = FaultInjectingBackend(
            schema,
            constraints=constraints,
            schedule=FaultSchedule(
                [FaultEvent(at=2, kind="locked", burst=2)], latency=0.0
            ),
        )
        session = PrologDbSession(
            schema=schema,
            constraints=constraints,
            database=database,
            cache_policy=CachePolicy(enabled=False),
        )
        session.load_org(
            generate_org(depth=2, branching=2, staff_per_dept=3, seed=13)
        )
        session.consult(ALL_VIEWS_SOURCE)
        for _ in range(10):
            session.ask("works_dir_for(X, Y)")
        assert session.stats()["resilience"]["retries"] >= 1
        hit = [t for t in session.traces() if "resilience" in t]
        assert hit, "the retried ask's span should carry the events"
        assert any(r["resilience"].get("retries") for r in hit)
        session.close()


# -- the injected wall clock (satellite) --------------------------------------------


class TestWallClock:
    def test_fake_clock_stamps_spans(self):
        ticks = iter(range(1000, 2000))
        session = make_session(wall_clock=lambda: float(next(ticks)))
        session.ask("works_dir_for(X, Y)")
        session.ask("works_dir_for(X, Y)")
        stamps = [t["started_at"] for t in session.traces()]
        assert stamps == sorted(stamps)
        assert all(1000.0 <= s < 2000.0 for s in stamps)
        session.close()

    def test_default_clock_is_wall_time(self):
        import time

        tracer = Tracer()
        assert tracer.wall_clock is time.time


# -- the trace ring -----------------------------------------------------------------


class TestTraceRing:
    def test_wraparound_keeps_newest(self):
        session = make_session(trace_ring=8)
        for _ in range(20):
            session.ask("works_dir_for(X, Y)")
        traces = session.traces()
        assert len(traces) == 8
        assert [t["span_id"] for t in traces] == list(range(12, 20))
        assert session.stats()["observe"]["spans"] == 20
        session.close()

    def test_rejects_empty_ring(self):
        with pytest.raises(ValueError):
            TraceRing(0)

    def test_four_thread_hammer_never_tears(self, session):
        session.ask("works_dir_for(X, Y)")  # warm the shape first
        errors = []
        asks_per_thread = 50

        def hammer():
            try:
                for _ in range(asks_per_thread):
                    session.ask("works_dir_for(X, Y)")
            except Exception as error:  # noqa: BLE001 - surfaced below
                errors.append(error)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        total = 1 + 4 * asks_per_thread
        assert session.stats()["observe"]["spans"] == total
        traces = session.traces()
        ids = [t["span_id"] for t in traces]
        # monotonic, unique ids; nothing beyond what was allocated
        assert ids == sorted(ids)
        assert len(ids) == len(set(ids))
        assert max(ids) == total - 1
        # no partial spans: every resident record is complete
        for record in traces:
            assert record["plan_cache"] is not None
            assert record["answers"] is not None
            assert record["duration_ms"] >= 0.0
            json.dumps(record)


# -- the disabled tracer ------------------------------------------------------------


class TestDisabledTracer:
    def test_no_span_allocation_when_disabled(self, monkeypatch):
        allocations = []
        real_init = AskTrace.__init__

        def counting_init(self, *args, **kwargs):
            allocations.append(1)
            real_init(self, *args, **kwargs)

        monkeypatch.setattr(tracer_module.AskTrace, "__init__", counting_init)
        session = make_session(tracing=False)
        for _ in range(5):
            session.ask("works_dir_for(X, Y)")
        session.ask_many(["works_dir_for(X, Y)"] * 3)
        assert allocations == []
        assert session.traces() == []
        assert session.database.observer is None
        assert session.stats()["observe"]["enabled"] is False
        session.close()

    def test_enabled_tracer_installs_backend_observer(self, session):
        assert session.database.observer is not None


# -- slow-query log -----------------------------------------------------------------


class TestSlowQueryLog:
    def test_threshold_triggers_full_capture_with_explain(self):
        session = make_session(slow_query_seconds=0.0)
        session.ask("works_dir_for(X, Y)")
        slow = session.slow_queries()
        assert len(slow) == 1
        record = slow[0]
        assert record["slow"] is True
        assert record["sql"].startswith("SELECT")
        assert record["explain"], "EXPLAIN QUERY PLAN lines expected"
        assert any("empl" in line for line in record["explain"])
        assert session.stats()["observe"]["slow_queries"] == 1
        session.close()

    def test_fast_asks_stay_out_of_the_log(self, session):
        session.ask("works_dir_for(X, Y)")  # default threshold: 0.25 s
        assert session.slow_queries() == []


# -- export surface -----------------------------------------------------------------


class TestExportSurface:
    def test_stats_round_trips_through_json(self, session):
        name = an_employee(session)
        session.materialize.view("works_dir_for(X, Y)")
        session.ask("works_dir_for(X, Y)")
        session.ask(f"works_for({name}, X)")
        session.assert_fact("empl", 909, "emp00909", 27000, 1)
        session.ask("works_dir_for(X, Y)")
        stats = session.stats()
        restored = json.loads(json.dumps(stats))
        assert restored["materialize"]["views"] == stats["materialize"]["views"]
        assert restored["observe"]["spans"] == stats["observe"]["spans"]
        # every subsection is a plain dict after the normalization fix
        for name_, section in restored.items():
            assert isinstance(section, dict), name_

    def test_traces_round_trip_through_json(self, session):
        session.ask("works_dir_for(X, Y)")
        session.ask(f"works_for({an_employee(session)}, X)")
        restored = json.loads(json.dumps(session.traces()))
        assert len(restored) == 2

    def test_observe_stats_histograms(self, session):
        name = an_employee(session)
        for _ in range(5):
            session.ask(f"works_dir_for(X, {name})")
        observe = session.stats()["observe"]
        assert observe["spans"] == 5
        digest, histogram = next(iter(observe["histograms"].items()))
        assert histogram["count"] == 5
        assert 0.0 <= histogram["p50_ms"] <= histogram["p95_ms"]
        assert histogram["p95_ms"] <= histogram["p99_ms"]
        assert histogram["goal"] == f"works_dir_for(X, {name})"
        assert observe["hit_rates"]["plan_cache"] is not None

    def test_on_span_callback_streams_records(self, session):
        seen = []
        session.on_span(seen.append)
        session.ask("works_dir_for(X, Y)")
        session.ask("works_dir_for(X, Y)")
        assert len(seen) == 2
        assert seen[0]["span_id"] == 0
        assert seen[1]["plan_cache"] is not None

    def test_failing_callback_never_fails_the_ask(self, session):
        def explode(record):
            raise RuntimeError("sink down")

        session.on_span(explode)
        answers = session.ask("works_dir_for(X, Y)")
        assert answers
        assert session.stats()["observe"]["callback_errors"] == 1

    def test_export_trace_writes_json_file(self, session, tmp_path):
        session.ask("works_dir_for(X, Y)")
        session.ask("works_dir_for(X, Y)")
        path = tmp_path / "trace.json"
        written = session.export_trace(path)
        assert written == 2
        payload = json.loads(path.read_text())
        assert len(payload["traces"]) == 2
        assert payload["observe"]["spans"] == 2


# -- shape digests ------------------------------------------------------------------


class TestShapeDigest:
    def test_stable_and_distinct(self):
        key_a = (("c", "works_dir_for", ("v", "X", 0), ("p", 0)),)
        key_b = (("c", "works_for", ("v", "X", 0), ("p", 0)),)
        assert shape_digest(key_a) == shape_digest(key_a)
        assert shape_digest(key_a) != shape_digest(key_b)
        assert len(shape_digest(key_a)) == 12


# -- acceptance: one record explains a degraded ask ---------------------------------


class TestExplainability:
    def test_single_trace_record_explains_a_slow_recursive_ask(self):
        """ISSUE 8 acceptance: phase timings, plan-cache outcome,
        recursion strategy + reason, resilience events, and row counts
        all present in ONE ``session.traces()`` record."""
        session = make_session(slow_query_seconds=0.0)
        name = an_employee(session)
        session.ask(f"works_for({name}, X)")
        record = session.traces()[-1]
        assert record["phases_ms"], "phase timings present"
        assert record["plan_cache"] in ("hit", "miss")
        assert record["recursion"]["strategy"]
        assert record["recursion"]["reason"]
        assert isinstance(record["rows"], int)
        assert isinstance(record["answers"], int)
        assert record["slow"] is True
        # and the same record is in the slow log with full detail
        slow = session.slow_queries()[-1]
        assert slow["span_id"] == record["span_id"]
        session.close()
