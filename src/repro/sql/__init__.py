"""DBCL → SQL translation, syntax trees, printers, and dialects (paper §5)."""

from .ast import (
    ColumnRef,
    Condition,
    InValuesCondition,
    Literal,
    NotInCondition,
    Parameter,
    RecursiveQuery,
    SelectItem,
    SqlQuery,
    TableRef,
    UnionQuery,
    empty_query,
)
from .dialects import DIALECTS, QuelDialect, SqlDialect, SqliteDialect, get_dialect
from .printer import print_recursive, print_sql, print_union
from .translate import SqlTranslator, closure_cte, translate

__all__ = [
    "ColumnRef",
    "Condition",
    "Literal",
    "InValuesCondition",
    "NotInCondition",
    "Parameter",
    "SelectItem",
    "RecursiveQuery",
    "SqlQuery",
    "TableRef",
    "UnionQuery",
    "empty_query",
    "DIALECTS",
    "QuelDialect",
    "SqlDialect",
    "SqliteDialect",
    "get_dialect",
    "print_recursive",
    "print_sql",
    "print_union",
    "SqlTranslator",
    "closure_cte",
    "translate",
]
