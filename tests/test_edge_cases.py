"""Edge cases and failure injection across subsystems.

These tests exercise the error paths a production deployment hits:
malformed inputs, resource limits, backend failures, misconfigured
recursion, and boundary shapes the paper's examples never reach.
"""

import pytest

from repro.coupling import PrologDbSession, TransitiveClosure
from repro.coupling.recursion_exec import schema_with_intermediate
from repro.dbcl import (
    Comparison,
    ConstSymbol,
    TableauBuilder,
    TargetSymbol,
    VarSymbol,
    format_dbcl,
    parse_dbcl,
)
from repro.dbms import ExternalDatabase, generate_org
from repro.errors import (
    CouplingError,
    DbclError,
    ExecutionError,
    OptimizationError,
    RecursionLimitExceeded,
    SchemaError,
)
from repro.optimize import analyse_comparisons, simplify
from repro.prolog import Engine, KnowledgeBase, parse_goal, var
from repro.schema import (
    ALL_VIEWS_SOURCE,
    WORKS_DIR_FOR_SOURCE,
    empdep_constraints,
    empdep_schema,
)
from repro.sql import translate


@pytest.fixture
def schema():
    return empdep_schema()


@pytest.fixture
def constraints(schema):
    return empdep_constraints(schema)


class TestInequalityEdgeCases:
    def test_string_ordering_supported(self):
        a = VarSymbol("A")
        outcome = analyse_comparisons(
            [
                Comparison("less", a, ConstSymbol("mmm")),
                Comparison("less", a, ConstSymbol("zzz")),
            ]
        )
        # less(a, zzz) is implied by less(a, mmm): string constants order.
        assert outcome.comparisons == [Comparison("less", a, ConstSymbol("mmm"))]

    def test_string_contradiction(self):
        a = VarSymbol("A")
        outcome = analyse_comparisons(
            [
                Comparison("less", a, ConstSymbol("aaa")),
                Comparison("greater", a, ConstSymbol("zzz")),
            ]
        )
        assert outcome.contradiction

    def test_mixed_type_constants_order_like_sqlite(self):
        # SQLite sorts every number before every string, and the optimizer
        # must agree with the execution substrate: a < 5 implies a < "abc".
        a = VarSymbol("A")
        outcome = analyse_comparisons(
            [
                Comparison("less", a, ConstSymbol(5)),
                Comparison("less", a, ConstSymbol("abc")),
            ]
        )
        assert not outcome.contradiction
        assert outcome.comparisons == [Comparison("less", a, ConstSymbol(5))]

    def test_eq_chain_collapses_transitively(self):
        a, b, c = VarSymbol("A"), VarSymbol("B"), VarSymbol("C")
        outcome = analyse_comparisons(
            [Comparison("eq", a, b), Comparison("eq", b, c)]
        )
        assert len(outcome.renamings) == 2
        assert outcome.comparisons == []

    def test_equality_to_two_constants_contradiction(self):
        a = VarSymbol("A")
        outcome = analyse_comparisons(
            [
                Comparison("eq", a, ConstSymbol(1)),
                Comparison("eq", a, ConstSymbol(2)),
            ]
        )
        assert outcome.contradiction

    def test_neq_kept_when_unordered(self):
        a, b = VarSymbol("A"), VarSymbol("B")
        outcome = analyse_comparisons([Comparison("neq", a, b)])
        assert outcome.comparisons == [Comparison("neq", a, b)]

    def test_empty_input(self):
        outcome = analyse_comparisons([])
        assert not outcome.contradiction
        assert outcome.comparisons == []


class TestSimplifyEdgeCases:
    def test_single_row_predicate_stable(self, schema, constraints):
        b = TableauBuilder(schema, "q")
        b.row("empl", nam=b.target("X"))
        result = simplify(b.build(), constraints)
        assert not result.is_empty
        assert result.rows_after == 1

    def test_predicate_without_comparisons(self, schema, constraints):
        b = TableauBuilder(schema, "q")
        d = b.var("D")
        b.row("empl", nam=b.target("X"), dno=d)
        b.row("dept", dno=d, fct="sales")
        result = simplify(b.build(), constraints)
        assert result.rows_after == 2  # the constant blocks refint deletion

    def test_all_star_free_columns(self, schema, constraints):
        # dept-only query: no value bounds apply anywhere.
        b = TableauBuilder(schema, "q")
        b.row("dept", fct=b.target("F"))
        result = simplify(b.build(), constraints)
        assert result.rows_after == 1

    def test_iteration_guard(self, schema, constraints):
        from repro.optimize import SimplifyOptions

        b = TableauBuilder(schema, "q")
        b.row("empl", nam=b.target("X"))
        # max_iterations=0 must trip the convergence guard.
        with pytest.raises(OptimizationError):
            simplify(b.build(), constraints, SimplifyOptions(max_iterations=0))

    def test_constant_equality_propagates_into_rows(self, schema, constraints):
        b = TableauBuilder(schema, "q")
        s = b.var("S")
        b.row("empl", nam=b.target("X"), sal=s)
        b.compare("eq", s, 50000)
        result = simplify(b.build(), constraints)
        # The eq comparison becomes a constant in the tableau.
        sal_cell = result.predicate.rows[0].cell(schema.column_of("sal"))
        assert sal_cell == ConstSymbol(50000)
        assert result.predicate.comparisons == ()

    def test_out_of_bounds_equality_is_contradiction(self, schema, constraints):
        b = TableauBuilder(schema, "q")
        s = b.var("S")
        b.row("empl", nam=b.target("X"), sal=s)
        b.compare("eq", s, 5000)  # below the salary floor
        result = simplify(b.build(), constraints)
        assert result.is_empty


class TestBackendFailureInjection:
    def test_query_against_dropped_intermediate(self, schema):
        database = ExternalDatabase(schema)
        database.create_intermediate("intermediate", ["nam"])
        database.drop_intermediate("intermediate")
        with pytest.raises(ExecutionError):
            database.set_intermediate_rows("intermediate", [("x",)])

    def test_closed_database_raises(self, schema):
        database = ExternalDatabase(schema)
        database.close()
        with pytest.raises(Exception):
            database.execute("SELECT 1")

    def test_insert_into_unknown_relation(self, schema):
        database = ExternalDatabase(schema)
        with pytest.raises(SchemaError):
            database.insert_rows("nosuch", [(1,)])

    def test_row_count_unknown_relation(self, schema):
        database = ExternalDatabase(schema)
        with pytest.raises(Exception):
            database.row_count("nosuch")


class TestRecursionEdgeCases:
    @pytest.fixture
    def rec_session(self):
        session = PrologDbSession()
        org = generate_org(depth=2, branching=2, staff_per_dept=3, seed=0)
        session.load_org(org)
        session.consult(ALL_VIEWS_SOURCE)
        return session, org

    def test_max_levels_exceeded(self, rec_session):
        session, org = rec_session
        leaf = org.leaf_employee_name()
        with pytest.raises(RecursionLimitExceeded):
            session.solve_recursive(
                "works_for", low=leaf, strategy="bottomup", max_levels=1
            )

    def test_unknown_strategy(self, rec_session):
        session, org = rec_session
        with pytest.raises(CouplingError):
            session.solve_recursive("works_for", low="x", strategy="sideways")

    def test_nonlinear_view_rejected(self, schema, constraints):
        kb = KnowledgeBase()
        kb.consult(WORKS_DIR_FOR_SOURCE)
        kb.consult(
            """
            conn(X, Y) :- works_dir_for(X, Y).
            conn(X, Y) :- conn(X, Z), conn(Z, Y).
            """
        )
        database = ExternalDatabase(schema)
        with pytest.raises(CouplingError):
            TransitiveClosure(kb, schema, constraints, database, ("conn", 2))

    def test_ternary_view_rejected(self, schema, constraints):
        kb = KnowledgeBase()
        database = ExternalDatabase(schema)
        with pytest.raises(CouplingError):
            TransitiveClosure(kb, schema, constraints, database, ("t", 3))

    def test_missing_base_clause_rejected(self, schema, constraints):
        kb = KnowledgeBase()
        kb.consult(WORKS_DIR_FOR_SOURCE)
        kb.consult("w(X, Y) :- works_dir_for(X, M), w(M, Y).")
        database = ExternalDatabase(schema)
        with pytest.raises(CouplingError):
            TransitiveClosure(kb, schema, constraints, database, ("w", 2))

    def test_extended_schema_shares_column(self, schema):
        extended = schema_with_intermediate(schema, "nam")
        assert extended.has_relation("intermediate")
        assert extended.column_of("nam") == schema.column_of("nam")
        assert extended.width == schema.width  # no new global attribute

    def test_recursive_goal_with_conjunction_rejected(self, rec_session):
        session, org = rec_session
        boss = org.root_manager_name()
        with pytest.raises(CouplingError):
            session.ask(f"works_for(X, {boss}), empl(_, X, S, _)")

    def test_empty_answer_when_leaf_has_no_subordinates(self, rec_session):
        session, org = rec_session
        leaf = org.leaf_employee_name()
        run = session.solve_recursive("works_for", high=leaf)
        assert run.pairs == set()


class TestSessionEdgeCases:
    @pytest.fixture
    def session(self):
        session = PrologDbSession()
        org = generate_org(depth=2, branching=2, staff_per_dept=3, seed=1)
        session.load_org(org)
        session.consult(WORKS_DIR_FOR_SOURCE)
        return session, org

    def test_ask_with_no_answers(self, session):
        s, org = session
        answers = s.ask("works_dir_for(X, nobody_by_this_name)")
        assert answers == []

    def test_ask_ground_goal(self, session):
        s, org = session
        low, high = next(iter(org.works_dir_for_pairs()))
        answers = s.ask(f"works_dir_for({low}, {high})")
        assert answers == [{}]  # succeeds with no bindings

    def test_ask_ground_goal_false(self, session):
        s, org = session
        answers = s.ask("works_dir_for(nobody, nobody_else)")
        assert answers == []

    def test_context_manager(self):
        with PrologDbSession() as s:
            assert s.database is not None

    def test_reload_data_invalidates_cache(self, session):
        s, org = session
        boss = org.root_manager_name()
        s.ask(f"works_dir_for(X, {boss})")
        assert len(s.cache) > 0
        s.load_org(generate_org(depth=2, branching=2, staff_per_dept=3, seed=9))
        assert len(s.cache) == 0

    def test_explain_contradiction_has_empty_sql(self, session):
        s, org = session
        trace = s.explain("empl(E, N, S, D), less(S, 2000)")
        assert trace.simplification.is_empty
        assert trace.sql.is_empty

    def test_consulting_duplicate_view_makes_it_disjunctive(self, session):
        s, org = session
        s.consult(WORKS_DIR_FOR_SOURCE)  # now two identical clauses
        from repro.errors import MetaevaluationError

        with pytest.raises(MetaevaluationError):
            s.explain("works_dir_for(X, someone)")
        # ... but ask_disjunctive still answers it (identical branches).
        boss = org.root_manager_name()
        answers = s.ask_disjunctive(f"works_dir_for(X, {boss})")
        expected = {l for l, h in org.works_dir_for_pairs() if h == boss}
        assert {a["X"] for a in answers} == expected


class TestGrammarEdgeCases:
    def test_explicit_target_list_form(self, schema):
        # Two targets on the same column need the explicit list form.
        b = TableauBuilder(schema, "pair")
        x, y = b.target("X"), b.target("Y")
        m = b.var("M")
        b.row("empl", nam=x, dno=b.var("D"))
        b.row("dept", dno=b.var("D"), mgr=m)
        b.row("empl", eno=m, nam=y)
        predicate = b.build()
        text = format_dbcl(predicate)
        assert "[pair, t_X, t_Y]" in text
        reparsed = parse_dbcl(text, schema)
        assert reparsed.targets == predicate.targets

    def test_row_form_roundtrip_preserved(self, schema):
        b = TableauBuilder(schema, "q")
        b.row("empl", nam=b.target("X"))
        text = format_dbcl(b.build())
        assert "*, t_X, *, *, *, *" in text

    def test_negative_number_constant(self, schema):
        b = TableauBuilder(schema, "q")
        b.row("empl", nam=b.target("X"), sal=b.var("S"))
        b.less(-5, b.var("S"))
        reparsed = parse_dbcl(format_dbcl(b.build()), schema)
        assert reparsed.comparisons[0].left == ConstSymbol(-5)

    def test_float_constant_roundtrip(self, schema):
        b = TableauBuilder(schema, "q")
        b.row("empl", nam=b.target("X"), sal=b.var("S"))
        b.less(b.var("S"), 1.5)
        reparsed = parse_dbcl(format_dbcl(b.build()), schema)
        assert reparsed.comparisons[0].right == ConstSymbol(1.5)


class TestEngineEdgeCases:
    def test_deep_conjunction(self):
        engine = Engine()
        engine.kb.consult("p(0).")
        goal = ", ".join(["p(0)"] * 200)
        assert engine.succeeds(goal)

    def test_cut_inside_disjunction(self):
        kb = KnowledgeBase()
        kb.consult(
            """
            d(X) :- (p(X), ! ; q(X)).
            p(1). p(2). q(3).
            """
        )
        engine = Engine(kb)
        values = [a[var("X")].value for a in engine.solve_all("d(X)")]
        # The cut commits to the first p solution and kills the q branch.
        assert values == [1]

    def test_not_of_conjunction(self):
        kb = KnowledgeBase()
        kb.consult("p(1). q(2).")
        engine = Engine(kb)
        assert engine.succeeds("not((p(X), q(X)))")
        assert not engine.succeeds("not((p(1), q(2)))")

    def test_assert_during_solve_visible_later(self):
        engine = Engine()
        engine.solve_all("assertz(p(1)), assertz(p(2))")
        assert engine.count_solutions("p(X)") == 2

    def test_unbound_goal_variable_raises(self):
        engine = Engine()
        from repro.errors import PrologError

        with pytest.raises(PrologError):
            engine.solve_all("call(X)")
